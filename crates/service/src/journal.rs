//! Durable allocation state: an append-only NDJSON write-ahead journal
//! with snapshot compaction and deterministic crash recovery.
//!
//! ## Why a journal
//!
//! Until this module existed the daemon was memoryless: a restart dropped
//! every tenant's grants, queued jobs and the cluster's pool table. The
//! journal records every state-changing operation as one JSON line —
//! registrations (with their full pool/scheduler config), committed
//! grants, queue admissions, releases, cancels, `set_scheduler` /
//! `set_router` flips — so a restarted daemon can rebuild the sharded
//! registry, the admission queues and the [`crate::PlacementRouter`]
//! pool table exactly as they were.
//!
//! The journal logs **effects**, not requests: a grant record carries the
//! exact processors the allocator committed, so recovery never re-runs an
//! allocator (whose decision could differ once wall clocks restart) — it
//! re-*occupies*. That makes recovery a pure fold over the record stream,
//! deterministic by construction, and lets the recovery-equivalence tests
//! compare a recovered registry byte-for-byte against an uninterrupted
//! run cut at the same point.
//!
//! ## Ordering discipline
//!
//! Records are emitted **inside the owning shard lock** of the machine
//! they describe (see `AllocationService`): for any one machine, journal
//! order therefore equals mutation order, which is the only ordering
//! recovery needs — machines are independent apart from the router's
//! pool table, whose policy flips are last-writer-wins by design.
//! A global sequence number (assigned under the sink's append lock)
//! totally orders the file for the snapshot watermark protocol below.
//!
//! ## Snapshots and compaction
//!
//! The file sink appends to numbered segments (`wal-NNNNNN.ndjson`).
//! Once `snapshot_every` records accumulate, the service captures a full
//! image — occupancy, queues, clocks and the pool table — and installs
//! it as `snapshot.ndjson` (write-temp-then-rename, so a crash never
//! leaves a torn snapshot). Capture runs **concurrently with appends**:
//! the sink first rotates to a fresh segment (so every record in older
//! segments is already reflected in any capture that follows), then each
//! machine is photographed under its own shard lock together with the
//! sequence number of its last journaled record — its **watermark**.
//! Recovery replays only tail records *newer than the watermark* of
//! their machine, which makes the concurrent capture exact: a record
//! appended between rotation and capture is inside the snapshot *and*
//! the tail, and the watermark deduplicates it. Segments at or below the
//! snapshot's `covers` index are deleted after the rename.
//!
//! ## Torn tails
//!
//! `kill -9` can interrupt a line mid-write. Recovery ignores a final
//! line that lacks its trailing newline and fails to parse — by the
//! write-ahead discipline that record's effect was never acknowledged
//! past the fsync horizon — but a malformed line that *kept* its
//! newline was fully written, so anywhere (tail included) it is
//! treated as corruption and recovery refuses to start.
//!
//! ## Durability knobs
//!
//! [`FsyncPolicy`] trades throughput for the crash window: `EveryRecord`
//! fsyncs synchronously per record — no acknowledged-but-lost suffix
//! (what the CI crash-recovery harness runs); `Batched(n)` (the
//! default) is **group commit** — a background flusher thread fsyncs
//! whenever `n` unsynced records accumulate and on a 10 ms tick, off
//! the append path, bounding the loss window to roughly `n`
//! acknowledged operations; `Never` leaves flushing to the OS. The
//! `journal_overhead` benchmark (`BENCH_journal.json`) quantifies all
//! three against the no-journal baseline.

use crate::protocol::get_f64_opt;
use crate::protocol::{get_nodes, get_str, get_str_opt, get_u64, nodes_value, obj, str_value};
use crate::registry::ServiceError;
use commalloc_mesh::NodeId;
use commalloc_workload::CommPattern;
use serde::{Error, Map, Value};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One journaled, state-changing operation (or a full snapshot image).
/// The wire form is one JSON object per line with a `"rec"` discriminator
/// and the sink-assigned `"seq"`.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A machine registered, with its full registration config (the
    /// same string grammar `register` accepts on the wire).
    Register {
        /// Machine name.
        machine: String,
        /// Mesh spec (`"WxH"` / `"WxHxD"`).
        mesh: String,
        /// Allocator (2-D) / curve (3-D) spec; `None` = default.
        allocator: Option<String>,
        /// Selection strategy (3-D); `None` = Best Fit.
        strategy: Option<String>,
        /// Scheduling policy; `None` = FCFS.
        scheduler: Option<String>,
        /// Cluster pool joined at registration.
        pool: Option<String>,
    },
    /// A grant committed (immediately, from the queue, or by a policy
    /// switch): `job` now holds exactly `nodes`.
    Grant {
        /// Machine name.
        machine: String,
        /// Job identifier.
        job: u64,
        /// The committed processors, in rank order.
        nodes: Vec<NodeId>,
        /// The client's runtime estimate, if any (EASY's planning input).
        walltime: Option<f64>,
        /// Machine-clock time of the grant.
        start: f64,
        /// The communication pattern the job declared, if any. On the
        /// wire the field is present only when declared (absent = none),
        /// carrying the pattern's canonical name.
        pattern: Option<CommPattern>,
        /// Tenant the job is attributed to, if any. Present on the wire
        /// only when tagged, so untenanted grant logs keep their
        /// pre-tenant bytes.
        tenant: Option<String>,
    },
    /// A request entered the admission queue.
    Queue {
        /// Machine name.
        machine: String,
        /// Job identifier.
        job: u64,
        /// Processors requested.
        size: usize,
        /// The client's runtime estimate, if any.
        walltime: Option<f64>,
        /// Machine-clock time of the enqueue.
        enqueued_at: f64,
        /// The communication pattern the job declared, if any (present
        /// on the wire only when declared).
        pattern: Option<CommPattern>,
        /// Tenant the job is attributed to, if any (present on the wire
        /// only when tagged).
        tenant: Option<String>,
    },
    /// A running job released its processors.
    Release {
        /// Machine name.
        machine: String,
        /// Job identifier.
        job: u64,
    },
    /// A queued request was cancelled before it ever ran.
    Cancel {
        /// Machine name.
        machine: String,
        /// Job identifier.
        job: u64,
    },
    /// The machine's scheduling policy was switched at runtime.
    SetScheduler {
        /// Machine name.
        machine: String,
        /// Canonical name of the now-active policy.
        scheduler: String,
    },
    /// A pool's routing policy was switched at runtime.
    SetRouter {
        /// Pool name.
        pool: String,
        /// Canonical name of the now-active routing policy.
        policy: String,
    },
    /// A tenant was configured (created or reconfigured). Carries the
    /// *resulting* absolute configuration, so replay is last-writer-wins
    /// regardless of which fields the original request spelled out.
    SetTenant {
        /// Tenant name.
        tenant: String,
        /// Fair-share weight (finite, positive).
        weight: f64,
        /// Node-second quota; `None` = unlimited.
        quota: Option<f64>,
        /// In-flight wire request cap; `None` = uncapped.
        max_in_flight: Option<u64>,
    },
    /// The machine's fair-share admission layer was toggled.
    SetFairShare {
        /// Machine name.
        machine: String,
        /// Whether the layer is now on.
        enabled: bool,
    },
    /// A full state image; the log before it is redundant.
    Snapshot(SnapshotImage),
}

/// A compacted image of the whole service: every machine plus the pool
/// table. Replaces all records in segments `<= covers`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotImage {
    /// How many times this journal has been recovered from (0 for a
    /// journal that has only ever run one daemon incarnation).
    pub epoch: u64,
    /// Highest WAL segment index fully reflected in this image; those
    /// segments are pruned once the image is durably installed.
    pub covers: u64,
    /// Every registered machine, photographed under its shard lock.
    pub machines: Vec<MachineImage>,
    /// Every pool: members and active routing policy.
    pub pools: Vec<PoolImage>,
    /// Every configured tenant: configuration plus cumulative
    /// consumption. Rendered only when non-empty, so tenant-free
    /// snapshots keep their pre-tenant bytes. Outstanding commitments
    /// are *not* captured — recovery recomputes them exactly from the
    /// restored running and queued jobs.
    pub tenants: Vec<TenantImage>,
}

/// One machine's image inside a [`SnapshotImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineImage {
    /// Machine name.
    pub machine: String,
    /// Mesh spec, re-registerable (`"WxH"` / `"WxHxD"`).
    pub mesh: String,
    /// Allocator / curve spec (always present in images — derived from
    /// the live backing, so defaults are made explicit).
    pub allocator: String,
    /// Selection strategy spec (3-D machines only).
    pub strategy: Option<String>,
    /// Scheduling-policy name.
    pub scheduler: String,
    /// Journal watermark: the sequence number of the last record of this
    /// machine reflected in the image. Tail records with `seq` at or
    /// below it are skipped during recovery.
    pub seq: u64,
    /// The virtual clock, when the machine runs in virtual time (replay
    /// harnesses); `None` for wall-clock machines, whose clock restarts.
    pub clock: Option<f64>,
    /// Whether the fair-share admission layer is on (rendered only when
    /// true, keeping pre-tenant snapshot bytes).
    pub fair_share: bool,
    /// Running jobs in **grant order** (the order the running vector
    /// evolved in — EASY's tie-breaking state, so it must survive).
    pub running: Vec<RunningImage>,
    /// Queued requests in queue order.
    pub queue: Vec<QueuedImage>,
}

/// One running job inside a [`MachineImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunningImage {
    /// Job identifier.
    pub job: u64,
    /// The processors the job holds, in rank order.
    pub nodes: Vec<NodeId>,
    /// The client's runtime estimate, if any.
    pub walltime: Option<f64>,
    /// Machine-clock time the job started.
    pub start: f64,
    /// The communication pattern the job declared, if any.
    pub pattern: Option<CommPattern>,
    /// Tenant the job is attributed to, if any (present on the wire
    /// only when tagged).
    pub tenant: Option<String>,
}

/// One queued request inside a [`MachineImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedImage {
    /// Job identifier.
    pub job: u64,
    /// Processors requested.
    pub size: usize,
    /// The client's runtime estimate, if any.
    pub walltime: Option<f64>,
    /// Machine-clock time of the enqueue.
    pub enqueued_at: f64,
    /// The communication pattern the job declared, if any.
    pub pattern: Option<CommPattern>,
    /// Tenant the job is attributed to, if any (present on the wire
    /// only when tagged).
    pub tenant: Option<String>,
}

/// One configured tenant inside a [`SnapshotImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantImage {
    /// Tenant name.
    pub tenant: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Node-second quota; `None` = unlimited.
    pub quota: Option<f64>,
    /// In-flight wire request cap; `None` = uncapped.
    pub max_in_flight: Option<u64>,
    /// Cumulative node-seconds of finished holds.
    pub consumed: f64,
}

/// One pool inside a [`SnapshotImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct PoolImage {
    /// Pool name.
    pub pool: String,
    /// Member machines, sorted.
    pub members: Vec<String>,
    /// Canonical name of the active routing policy.
    pub policy: String,
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// JSON string escaping identical to the workspace serde shim's, so the
/// fast record path and the [`Value`]-tree path emit the same bytes.
fn write_json_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_str_opt(out: &mut String, s: &Option<String>) {
    match s {
        Some(s) => write_json_str(out, s),
        None => out.push_str("null"),
    }
}

/// Float rendering identical to the shim's (`{}` = shortest round-trip
/// form; non-finite values render as `null`, as real serde_json does).
fn write_json_f64(out: &mut String, f: f64) {
    use std::fmt::Write as _;
    if f.is_finite() {
        let _ = write!(out, "{f}");
    } else {
        out.push_str("null");
    }
}

fn write_json_f64_opt(out: &mut String, f: &Option<f64>) {
    match f {
        Some(f) => write_json_f64(out, *f),
        None => out.push_str("null"),
    }
}

fn opt_str_value(s: &Option<String>) -> Value {
    match s {
        Some(s) => str_value(s),
        None => Value::Null,
    }
}

fn opt_f64_value(f: &Option<f64>) -> Value {
    match f {
        Some(f) => Value::Float(*f),
        None => Value::Null,
    }
}

fn get_f64(v: &Value, key: &str) -> Result<f64, Error> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| Error::msg(format!("missing or non-numeric field {key:?}")))
}

/// Reads an optional `"pattern"` field (absent or null = no pattern;
/// present = the canonical pattern name, refusing unknown names).
fn get_pattern_opt(v: &Value) -> Result<Option<CommPattern>, Error> {
    match get_str_opt(v, "pattern")? {
        None => Ok(None),
        Some(s) => CommPattern::parse(&s)
            .map(Some)
            .ok_or_else(|| Error::msg(format!("unknown communication pattern {s:?}"))),
    }
}

/// Appends the optional `"pattern"` entry to a record's value tree —
/// present only when declared, so unpatterned records keep their
/// pre-pattern wire form byte-for-byte.
fn push_pattern_entry(entries: &mut Vec<(&'static str, Value)>, pattern: &Option<CommPattern>) {
    if let Some(p) = pattern {
        entries.push(("pattern", str_value(p.name())));
    }
}

/// Appends the optional `"tenant"` entry — present only when tagged, so
/// untenanted records keep their pre-tenant wire form byte-for-byte.
fn push_tenant_entry(entries: &mut Vec<(&'static str, Value)>, tenant: &Option<String>) {
    if let Some(t) = tenant {
        entries.push(("tenant", str_value(t)));
    }
}

/// Appends the optional hand-written `"tenant"` suffix to a fast-path
/// line (must emit exactly what [`push_tenant_entry`] renders).
fn write_tenant_suffix(out: &mut String, tenant: &Option<String>) {
    if let Some(t) = tenant {
        out.push_str(",\"tenant\":");
        write_json_str(out, t);
    }
}

impl MachineImage {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("machine", str_value(&self.machine)),
            ("mesh", str_value(&self.mesh)),
            ("allocator", str_value(&self.allocator)),
            ("strategy", opt_str_value(&self.strategy)),
            ("scheduler", str_value(&self.scheduler)),
            ("seq", Value::UInt(self.seq)),
            ("clock", opt_f64_value(&self.clock)),
        ];
        // Present only when on: pre-tenant images keep their bytes.
        if self.fair_share {
            entries.push(("fair_share", Value::Bool(true)));
        }
        entries.push((
            "running",
            Value::Array(
                self.running
                    .iter()
                    .map(|r| {
                        let mut entries = vec![
                            ("job", Value::UInt(r.job)),
                            ("nodes", nodes_value(&r.nodes)),
                            ("walltime", opt_f64_value(&r.walltime)),
                            ("start", Value::Float(r.start)),
                        ];
                        push_pattern_entry(&mut entries, &r.pattern);
                        push_tenant_entry(&mut entries, &r.tenant);
                        obj(entries)
                    })
                    .collect(),
            ),
        ));
        entries.push((
            "queue",
            Value::Array(
                self.queue
                    .iter()
                    .map(|q| {
                        let mut entries = vec![
                            ("job", Value::UInt(q.job)),
                            ("size", Value::UInt(q.size as u64)),
                            ("walltime", opt_f64_value(&q.walltime)),
                            ("enqueued_at", Value::Float(q.enqueued_at)),
                        ];
                        push_pattern_entry(&mut entries, &q.pattern);
                        push_tenant_entry(&mut entries, &q.tenant);
                        obj(entries)
                    })
                    .collect(),
            ),
        ));
        obj(entries)
    }

    fn from_value(v: &Value) -> Result<MachineImage, Error> {
        let running = v
            .get("running")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("missing \"running\" array"))?
            .iter()
            .map(|r| {
                Ok(RunningImage {
                    job: get_u64(r, "job")?,
                    nodes: get_nodes(r, "nodes")?,
                    walltime: get_f64_opt(r, "walltime")?,
                    start: get_f64(r, "start")?,
                    pattern: get_pattern_opt(r)?,
                    tenant: get_str_opt(r, "tenant")?,
                })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        let queue = v
            .get("queue")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("missing \"queue\" array"))?
            .iter()
            .map(|q| {
                Ok(QueuedImage {
                    job: get_u64(q, "job")?,
                    size: get_u64(q, "size")? as usize,
                    walltime: get_f64_opt(q, "walltime")?,
                    enqueued_at: get_f64(q, "enqueued_at")?,
                    pattern: get_pattern_opt(q)?,
                    tenant: get_str_opt(q, "tenant")?,
                })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(MachineImage {
            machine: get_str(v, "machine")?,
            mesh: get_str(v, "mesh")?,
            allocator: get_str(v, "allocator")?,
            strategy: get_str_opt(v, "strategy")?,
            scheduler: get_str(v, "scheduler")?,
            seq: get_u64(v, "seq")?,
            clock: get_f64_opt(v, "clock")?,
            fair_share: v
                .get("fair_share")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            running,
            queue,
        })
    }
}

impl SnapshotImage {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("epoch", Value::UInt(self.epoch)),
            ("covers", Value::UInt(self.covers)),
            (
                "machines",
                Value::Array(self.machines.iter().map(MachineImage::to_value).collect()),
            ),
            (
                "pools",
                Value::Array(
                    self.pools
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("pool", str_value(&p.pool)),
                                (
                                    "members",
                                    Value::Array(p.members.iter().map(|m| str_value(m)).collect()),
                                ),
                                ("policy", str_value(&p.policy)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        // Present only when a tenant is configured: tenant-free
        // snapshots keep their pre-tenant bytes.
        if !self.tenants.is_empty() {
            entries.push((
                "tenants",
                Value::Array(
                    self.tenants
                        .iter()
                        .map(|t| {
                            let mut entries = vec![
                                ("tenant", str_value(&t.tenant)),
                                ("weight", Value::Float(t.weight)),
                            ];
                            if let Some(q) = t.quota {
                                entries.push(("quota", Value::Float(q)));
                            }
                            if let Some(cap) = t.max_in_flight {
                                entries.push(("max_in_flight", Value::UInt(cap)));
                            }
                            entries.push(("consumed", Value::Float(t.consumed)));
                            obj(entries)
                        })
                        .collect(),
                ),
            ));
        }
        obj(entries)
    }

    fn from_value(v: &Value) -> Result<SnapshotImage, Error> {
        let machines = v
            .get("machines")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("missing \"machines\" array"))?
            .iter()
            .map(MachineImage::from_value)
            .collect::<Result<Vec<_>, Error>>()?;
        let pools = v
            .get("pools")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::msg("missing \"pools\" array"))?
            .iter()
            .map(|p| {
                let members = p
                    .get("members")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"members\" array"))?
                    .iter()
                    .map(|m| {
                        m.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| Error::msg("non-string pool member"))
                    })
                    .collect::<Result<Vec<_>, Error>>()?;
                Ok(PoolImage {
                    pool: get_str(p, "pool")?,
                    members,
                    policy: get_str(p, "policy")?,
                })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        let tenants = match v.get("tenants").and_then(Value::as_array) {
            None => Vec::new(),
            Some(rows) => rows
                .iter()
                .map(|t| {
                    Ok(TenantImage {
                        tenant: get_str(t, "tenant")?,
                        weight: get_f64(t, "weight")?,
                        quota: get_f64_opt(t, "quota")?,
                        max_in_flight: match t.get("max_in_flight") {
                            None | Some(Value::Null) => None,
                            Some(cap) => Some(
                                cap.as_u64()
                                    .ok_or_else(|| Error::msg("non-integer \"max_in_flight\""))?,
                            ),
                        },
                        consumed: get_f64(t, "consumed")?,
                    })
                })
                .collect::<Result<Vec<_>, Error>>()?,
        };
        Ok(SnapshotImage {
            epoch: get_u64(v, "epoch")?,
            covers: get_u64(v, "covers")?,
            machines,
            pools,
            tenants,
        })
    }
}

impl JournalRecord {
    /// Renders the record with its assigned sequence number as its wire
    /// value.
    pub fn to_value(&self, seq: u64) -> Value {
        let mut entries = vec![("seq", Value::UInt(seq))];
        match self {
            JournalRecord::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
                pool,
            } => {
                entries.push(("rec", str_value("register")));
                entries.push(("machine", str_value(machine)));
                entries.push(("mesh", str_value(mesh)));
                entries.push(("allocator", opt_str_value(allocator)));
                entries.push(("strategy", opt_str_value(strategy)));
                entries.push(("scheduler", opt_str_value(scheduler)));
                entries.push(("pool", opt_str_value(pool)));
            }
            JournalRecord::Grant {
                machine,
                job,
                nodes,
                walltime,
                start,
                pattern,
                tenant,
            } => {
                entries.push(("rec", str_value("grant")));
                entries.push(("machine", str_value(machine)));
                entries.push(("job", Value::UInt(*job)));
                entries.push(("nodes", nodes_value(nodes)));
                entries.push(("walltime", opt_f64_value(walltime)));
                entries.push(("start", Value::Float(*start)));
                push_pattern_entry(&mut entries, pattern);
                push_tenant_entry(&mut entries, tenant);
            }
            JournalRecord::Queue {
                machine,
                job,
                size,
                walltime,
                enqueued_at,
                pattern,
                tenant,
            } => {
                entries.push(("rec", str_value("queue")));
                entries.push(("machine", str_value(machine)));
                entries.push(("job", Value::UInt(*job)));
                entries.push(("size", Value::UInt(*size as u64)));
                entries.push(("walltime", opt_f64_value(walltime)));
                entries.push(("enqueued_at", Value::Float(*enqueued_at)));
                push_pattern_entry(&mut entries, pattern);
                push_tenant_entry(&mut entries, tenant);
            }
            JournalRecord::Release { machine, job } => {
                entries.push(("rec", str_value("release")));
                entries.push(("machine", str_value(machine)));
                entries.push(("job", Value::UInt(*job)));
            }
            JournalRecord::Cancel { machine, job } => {
                entries.push(("rec", str_value("cancel")));
                entries.push(("machine", str_value(machine)));
                entries.push(("job", Value::UInt(*job)));
            }
            JournalRecord::SetScheduler { machine, scheduler } => {
                entries.push(("rec", str_value("set_scheduler")));
                entries.push(("machine", str_value(machine)));
                entries.push(("scheduler", str_value(scheduler)));
            }
            JournalRecord::SetRouter { pool, policy } => {
                entries.push(("rec", str_value("set_router")));
                entries.push(("pool", str_value(pool)));
                entries.push(("policy", str_value(policy)));
            }
            JournalRecord::SetTenant {
                tenant,
                weight,
                quota,
                max_in_flight,
            } => {
                entries.push(("rec", str_value("set_tenant")));
                entries.push(("tenant", str_value(tenant)));
                entries.push(("weight", Value::Float(*weight)));
                if let Some(q) = quota {
                    entries.push(("quota", Value::Float(*q)));
                }
                if let Some(cap) = max_in_flight {
                    entries.push(("max_in_flight", Value::UInt(*cap)));
                }
            }
            JournalRecord::SetFairShare { machine, enabled } => {
                entries.push(("rec", str_value("set_fair_share")));
                entries.push(("machine", str_value(machine)));
                entries.push(("enabled", Value::Bool(*enabled)));
            }
            JournalRecord::Snapshot(image) => {
                entries.push(("rec", str_value("snapshot")));
                if let Value::Object(m) = image.to_value() {
                    let mut out = Map::new();
                    for (k, v) in entries {
                        out.insert(k.to_string(), v);
                    }
                    for (k, v) in m.iter() {
                        out.insert(k.clone(), v.clone());
                    }
                    return Value::Object(out);
                }
                unreachable!("snapshot images render as objects");
            }
        }
        obj(entries)
    }

    /// Parses a record and its sequence number from a wire value.
    pub fn from_value(v: &Value) -> Result<(u64, JournalRecord), Error> {
        let seq = get_u64(v, "seq")?;
        let rec = get_str(v, "rec")?;
        let record = match rec.as_str() {
            "register" => JournalRecord::Register {
                machine: get_str(v, "machine")?,
                mesh: get_str(v, "mesh")?,
                allocator: get_str_opt(v, "allocator")?,
                strategy: get_str_opt(v, "strategy")?,
                scheduler: get_str_opt(v, "scheduler")?,
                pool: get_str_opt(v, "pool")?,
            },
            "grant" => JournalRecord::Grant {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
                nodes: get_nodes(v, "nodes")?,
                walltime: get_f64_opt(v, "walltime")?,
                start: get_f64(v, "start")?,
                pattern: get_pattern_opt(v)?,
                tenant: get_str_opt(v, "tenant")?,
            },
            "queue" => JournalRecord::Queue {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
                size: get_u64(v, "size")? as usize,
                walltime: get_f64_opt(v, "walltime")?,
                enqueued_at: get_f64(v, "enqueued_at")?,
                pattern: get_pattern_opt(v)?,
                tenant: get_str_opt(v, "tenant")?,
            },
            "release" => JournalRecord::Release {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
            },
            "cancel" => JournalRecord::Cancel {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
            },
            "set_scheduler" => JournalRecord::SetScheduler {
                machine: get_str(v, "machine")?,
                scheduler: get_str(v, "scheduler")?,
            },
            "set_router" => JournalRecord::SetRouter {
                pool: get_str(v, "pool")?,
                policy: get_str(v, "policy")?,
            },
            "set_tenant" => JournalRecord::SetTenant {
                tenant: get_str(v, "tenant")?,
                weight: get_f64(v, "weight")?,
                quota: get_f64_opt(v, "quota")?,
                max_in_flight: match v.get("max_in_flight") {
                    None | Some(Value::Null) => None,
                    Some(cap) => Some(
                        cap.as_u64()
                            .ok_or_else(|| Error::msg("non-integer \"max_in_flight\""))?,
                    ),
                },
            },
            "set_fair_share" => JournalRecord::SetFairShare {
                machine: get_str(v, "machine")?,
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
            },
            "snapshot" => JournalRecord::Snapshot(SnapshotImage::from_value(v)?),
            other => return Err(Error::msg(format!("unknown record kind {other:?}"))),
        };
        Ok((seq, record))
    }

    /// Renders the record as one wire line (no trailing newline).
    ///
    /// Per-operation records take a hand-written fast path (the sink
    /// appends one of these per grant, so a [`Value`]-tree build per
    /// record would dominate the journaling cost); snapshots — rare and
    /// large — go through the tree. The round-trip property tests pin
    /// both paths to parse back identically.
    pub fn to_line(&self, seq: u64) -> String {
        let mut out = String::with_capacity(96);
        self.write_line(seq, &mut out);
        out
    }

    /// Appends the wire line to `out` (no trailing newline).
    pub fn write_line(&self, seq: u64, out: &mut String) {
        use std::fmt::Write as _;
        let base = out.len();
        let _ = write!(out, "{{\"seq\":{seq},");
        match self {
            JournalRecord::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
                pool,
            } => {
                out.push_str("\"rec\":\"register\",\"machine\":");
                write_json_str(out, machine);
                out.push_str(",\"mesh\":");
                write_json_str(out, mesh);
                out.push_str(",\"allocator\":");
                write_json_str_opt(out, allocator);
                out.push_str(",\"strategy\":");
                write_json_str_opt(out, strategy);
                out.push_str(",\"scheduler\":");
                write_json_str_opt(out, scheduler);
                out.push_str(",\"pool\":");
                write_json_str_opt(out, pool);
                out.push('}');
            }
            JournalRecord::Grant {
                machine,
                job,
                nodes,
                walltime,
                start,
                pattern,
                tenant,
            } => {
                out.push_str("\"rec\":\"grant\",\"machine\":");
                write_json_str(out, machine);
                let _ = write!(out, ",\"job\":{job},\"nodes\":[");
                for (i, node) in nodes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", node.0);
                }
                out.push_str("],\"walltime\":");
                write_json_f64_opt(out, walltime);
                out.push_str(",\"start\":");
                write_json_f64(out, *start);
                if let Some(p) = pattern {
                    out.push_str(",\"pattern\":");
                    write_json_str(out, p.name());
                }
                write_tenant_suffix(out, tenant);
                out.push('}');
            }
            JournalRecord::Queue {
                machine,
                job,
                size,
                walltime,
                enqueued_at,
                pattern,
                tenant,
            } => {
                out.push_str("\"rec\":\"queue\",\"machine\":");
                write_json_str(out, machine);
                let _ = write!(out, ",\"job\":{job},\"size\":{size},\"walltime\":");
                write_json_f64_opt(out, walltime);
                out.push_str(",\"enqueued_at\":");
                write_json_f64(out, *enqueued_at);
                if let Some(p) = pattern {
                    out.push_str(",\"pattern\":");
                    write_json_str(out, p.name());
                }
                write_tenant_suffix(out, tenant);
                out.push('}');
            }
            JournalRecord::Release { machine, job } => {
                out.push_str("\"rec\":\"release\",\"machine\":");
                write_json_str(out, machine);
                let _ = write!(out, ",\"job\":{job}}}");
            }
            JournalRecord::Cancel { machine, job } => {
                out.push_str("\"rec\":\"cancel\",\"machine\":");
                write_json_str(out, machine);
                let _ = write!(out, ",\"job\":{job}}}");
            }
            JournalRecord::SetScheduler { machine, scheduler } => {
                out.push_str("\"rec\":\"set_scheduler\",\"machine\":");
                write_json_str(out, machine);
                out.push_str(",\"scheduler\":");
                write_json_str(out, scheduler);
                out.push('}');
            }
            JournalRecord::SetRouter { pool, policy } => {
                out.push_str("\"rec\":\"set_router\",\"pool\":");
                write_json_str(out, pool);
                out.push_str(",\"policy\":");
                write_json_str(out, policy);
                out.push('}');
            }
            JournalRecord::SetTenant {
                tenant,
                weight,
                quota,
                max_in_flight,
            } => {
                out.push_str("\"rec\":\"set_tenant\",\"tenant\":");
                write_json_str(out, tenant);
                out.push_str(",\"weight\":");
                write_json_f64(out, *weight);
                if let Some(q) = quota {
                    out.push_str(",\"quota\":");
                    write_json_f64(out, *q);
                }
                if let Some(cap) = max_in_flight {
                    let _ = write!(out, ",\"max_in_flight\":{cap}");
                }
                out.push('}');
            }
            JournalRecord::SetFairShare { machine, enabled } => {
                out.push_str("\"rec\":\"set_fair_share\",\"machine\":");
                write_json_str(out, machine);
                let _ = write!(out, ",\"enabled\":{enabled}}}");
            }
            JournalRecord::Snapshot(_) => {
                // Cold path: rebuild through the tree for the whole
                // record (drop the hand-written prefix first).
                out.truncate(base);
                out.push_str(
                    &serde_json::to_string(&self.to_value(seq))
                        .expect("value rendering is infallible"),
                );
            }
        }
    }

    /// Parses a `(seq, record)` pair from one wire line.
    pub fn from_line(line: &str) -> Result<(u64, JournalRecord), Error> {
        let value: Value = serde_json::from_str(line)?;
        JournalRecord::from_value(&value)
    }

    /// The machine this record belongs to, for watermark gating (`None`
    /// for router records and snapshots, which are not machine-scoped).
    pub fn machine(&self) -> Option<&str> {
        match self {
            JournalRecord::Register { machine, .. }
            | JournalRecord::Grant { machine, .. }
            | JournalRecord::Queue { machine, .. }
            | JournalRecord::Release { machine, .. }
            | JournalRecord::Cancel { machine, .. }
            | JournalRecord::SetScheduler { machine, .. }
            | JournalRecord::SetFairShare { machine, .. } => Some(machine),
            JournalRecord::SetRouter { .. }
            | JournalRecord::SetTenant { .. }
            | JournalRecord::Snapshot(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where journal records go. The default implementation is a no-op (the
/// in-process service and every test harness that does not opt into
/// durability pay nothing); the file sink below appends NDJSON with
/// fsync batching.
pub trait JournalSink: Send + Sync {
    /// Appends one record, returning its assigned global sequence number
    /// (0 from non-durable sinks). Called while the shard lock of the
    /// record's machine is held, so per-machine journal order equals
    /// mutation order.
    fn append(&self, record: &JournalRecord) -> u64 {
        let _ = record;
        0
    }

    /// [`JournalSink::append`], additionally reporting how long the
    /// append *blocked* on an fsync, in microseconds — the flight
    /// recorder's `fsync_wait` stage. 0 whenever the sink acknowledges
    /// before the disk syncs (group commit's background flushes are by
    /// design not part of any request's latency).
    fn append_timed(&self, record: &JournalRecord) -> (u64, u64) {
        (self.append(record), 0)
    }

    /// True for sinks that actually persist records; gates whether
    /// machine entries pay the record-composition cost at all.
    fn durable(&self) -> bool {
        false
    }

    /// The recovery epoch this sink's journal runs under (0 for
    /// non-durable sinks and never-recovered journals).
    fn epoch(&self) -> u64 {
        0
    }

    /// True when enough records accumulated since the last snapshot that
    /// the owner should capture and install a fresh one.
    fn snapshot_due(&self) -> bool {
        false
    }

    /// Rotates to a fresh WAL segment and returns the index of the
    /// now-closed one — everything in segments up to and including it
    /// will be reflected by any capture that starts afterwards.
    fn begin_snapshot(&self) -> u64 {
        0
    }

    /// Durably installs a snapshot record (write-temp-then-rename) and
    /// prunes the segments it covers.
    fn install_snapshot(&self, snapshot: &JournalRecord) -> io::Result<()> {
        let _ = snapshot;
        Ok(())
    }

    /// Operational counters for the `journal_stats` protocol op; `None`
    /// from non-durable sinks.
    fn stats_value(&self) -> Option<Value> {
        None
    }
}

/// The do-nothing sink: journaling disabled.
#[derive(Debug, Default)]
pub struct NoopJournal;

impl JournalSink for NoopJournal {}

/// When the file sink flushes and `fsync`s. Appends go through a
/// buffered writer; a "sync point" flushes the buffer to the OS and
/// calls `fsync`, so the policy bounds **acknowledged-but-lost** records
/// on `kill -9` (between sync points, records live in the buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record, synchronously: no acknowledged
    /// operation can be lost (what the CI crash-recovery harness runs).
    EveryRecord,
    /// **Group commit**: a background flusher thread fsyncs whenever
    /// `n` unsynced records accumulate (and on a 10 ms tick), off the
    /// append path — appenders never wait on the disk. Acknowledged
    /// records become durable within roughly one flush cycle; the
    /// crash-loss window is `n` records plus whatever arrives during
    /// one in-flight fsync.
    Batched(u64),
    /// Never explicitly; the OS writes the buffer out when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parses `"every"`, `"never"` or a positive batch size.
    pub fn parse(spec: &str) -> Option<FsyncPolicy> {
        match spec.trim().to_ascii_lowercase().as_str() {
            "every" | "1" => Some(FsyncPolicy::EveryRecord),
            "never" | "0" => Some(FsyncPolicy::Never),
            n => n
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 1)
                .map(FsyncPolicy::Batched),
        }
    }

    /// Canonical rendering (accepted back by [`FsyncPolicy::parse`]).
    pub fn name(&self) -> String {
        match self {
            FsyncPolicy::EveryRecord => "every".to_string(),
            FsyncPolicy::Batched(n) => n.to_string(),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// Configuration of a [`FileJournal`].
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
    /// Records between snapshot captures.
    pub snapshot_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            // Group commit of 512: one fsync amortises over enough
            // records that journaled grant throughput stays within the
            // bench's regression gate, while the crash-loss window stays
            // a few milliseconds of traffic at loadgen rates.
            fsync: FsyncPolicy::Batched(512),
            snapshot_every: 100_000,
        }
    }
}

/// Name of the installed snapshot file inside the journal directory.
const SNAPSHOT_FILE: &str = "snapshot.ndjson";

fn segment_name(index: u64) -> String {
    format!("wal-{index:06}.ndjson")
}

fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".ndjson")?
        .parse()
        .ok()
}

struct FileJournalInner {
    file: io::BufWriter<File>,
    /// Reused line buffer: one record render per append, no allocation.
    line: String,
    segment: u64,
    seq: u64,
    unsynced: u64,
    appended: u64,
    bytes: u64,
    snapshots_installed: u64,
}

impl FileJournalInner {
    /// Flushes the buffered writer to the OS and fsyncs the segment.
    /// Write failures abort the process (see [`journal_fail`]).
    fn sync(&mut self) {
        if let Err(e) = self.file.flush() {
            journal_fail("flush", &e);
        }
        if let Err(e) = self.file.get_ref().sync_data() {
            journal_fail("fsync", &e);
        }
        self.unsynced = 0;
    }
}

/// The durable sink: appends NDJSON records to numbered WAL segments
/// inside a journal directory, syncing per [`FsyncPolicy`] — for the
/// group-commit policy, via a background flusher thread that fsyncs off
/// the append path.
///
/// Append failures are **fail-stop**: a write-ahead log that silently
/// drops records is worse than a dead daemon, so write-path I/O errors
/// abort the process (see [`journal_fail`] for why not a panic).
pub struct FileJournal {
    dir: PathBuf,
    config: JournalConfig,
    epoch: u64,
    inner: Arc<Mutex<FileJournalInner>>,
    /// Records since the last snapshot install — an atomic mirror kept
    /// outside the append mutex so `snapshot_due` (polled on every
    /// request, including pure reads) never contends with appenders.
    since_snapshot: AtomicU64,
    /// Wakes the group-commit flusher early when the unsynced count
    /// crosses the batch threshold.
    sync_signal: Arc<Condvar>,
    stop: Arc<AtomicBool>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// Fail-stop for journal write failures. A panic is not enough: the
/// server's worker threads run requests under `catch_unwind`, which
/// would swallow an append panic (leaving the sink and shard locks
/// poisoned but the daemon alive), and a flusher panic would kill only
/// the flusher thread and silently downgrade `Batched` to `Never` —
/// either way the daemon keeps acknowledging operations that are never
/// persisted again. Take the whole process down instead.
fn journal_fail(what: &str, error: &io::Error) -> ! {
    eprintln!("commalloc-service: journal {what} failed ({error}); aborting (fail-stop)");
    std::process::abort();
}

/// The group-commit flusher: flush the buffer under the lock (cheap),
/// then fsync a duplicated handle **outside** it, so appenders are
/// never blocked behind the disk.
fn run_flusher(
    inner: Arc<Mutex<FileJournalInner>>,
    signal: Arc<Condvar>,
    stop: Arc<AtomicBool>,
    batch: u64,
) {
    let tick = std::time::Duration::from_millis(10);
    loop {
        let mut guard = inner.lock().expect("journal sink poisoned");
        if guard.unsynced < batch && !stop.load(Ordering::SeqCst) {
            let (g, _) = signal
                .wait_timeout(guard, tick)
                .expect("journal sink poisoned");
            guard = g;
        }
        if guard.unsynced > 0 {
            if let Err(e) = guard.file.flush() {
                journal_fail("flush", &e);
            }
            guard.unsynced = 0;
            let file = guard.file.get_ref().try_clone();
            drop(guard);
            match file {
                Ok(file) => {
                    if let Err(e) = file.sync_data() {
                        journal_fail("fsync", &e);
                    }
                }
                Err(e) => journal_fail("handle duplication", &e),
            }
        } else if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

impl FileJournal {
    /// Opens (creating) the journal directory and starts a fresh segment
    /// after any existing ones. `epoch` and `first_seq` come from
    /// recovery ([`read_journal_dir`]); a brand-new journal passes 0.
    pub fn create(
        dir: &Path,
        config: JournalConfig,
        epoch: u64,
        first_segment: u64,
        first_seq: u64,
    ) -> io::Result<FileJournal> {
        fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(segment_name(first_segment)))?;
        let inner = Arc::new(Mutex::new(FileJournalInner {
            file: io::BufWriter::new(file),
            line: String::with_capacity(128),
            segment: first_segment,
            seq: first_seq,
            unsynced: 0,
            appended: 0,
            bytes: 0,
            snapshots_installed: 0,
        }));
        let sync_signal = Arc::new(Condvar::new());
        let stop = Arc::new(AtomicBool::new(false));
        let flusher = match config.fsync {
            FsyncPolicy::Batched(n) => {
                let (inner, signal, stop) = (
                    Arc::clone(&inner),
                    Arc::clone(&sync_signal),
                    Arc::clone(&stop),
                );
                Some(
                    std::thread::Builder::new()
                        .name("commalloc-journal-flush".to_string())
                        .spawn(move || run_flusher(inner, signal, stop, n.max(1)))
                        .expect("spawn journal flusher"),
                )
            }
            FsyncPolicy::EveryRecord | FsyncPolicy::Never => None,
        };
        Ok(FileJournal {
            dir: dir.to_path_buf(),
            config,
            epoch,
            inner,
            since_snapshot: AtomicU64::new(0),
            sync_signal,
            stop,
            flusher,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn prune_segments(&self, covers: u64) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(index) = entry.file_name().to_str().and_then(segment_index) {
                if index <= covers {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(())
    }
}

impl Drop for FileJournal {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sync_signal.notify_all();
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
        // A clean exit leaves nothing buffered or unsynced.
        if let Ok(mut inner) = self.inner.lock() {
            let _ = inner.file.flush();
            let _ = inner.file.get_ref().sync_data();
        }
    }
}

impl JournalSink for FileJournal {
    fn durable(&self) -> bool {
        true
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn append(&self, record: &JournalRecord) -> u64 {
        self.append_timed(record).0
    }

    fn append_timed(&self, record: &JournalRecord) -> (u64, u64) {
        let mut guard = self.inner.lock().expect("journal sink poisoned");
        let inner = &mut *guard;
        inner.seq += 1;
        let seq = inner.seq;
        inner.line.clear();
        record.write_line(seq, &mut inner.line);
        inner.line.push('\n');
        if let Err(e) = inner.file.write_all(inner.line.as_bytes()) {
            // Fail-stop: refusing to run without the WAL (an abort, not
            // a panic, which the server's workers would swallow).
            journal_fail("append", &e);
        }
        inner.bytes += inner.line.len() as u64;
        inner.appended += 1;
        inner.unsynced += 1;
        self.since_snapshot.fetch_add(1, Ordering::Relaxed);
        let mut fsync_wait = 0u64;
        match self.config.fsync {
            FsyncPolicy::EveryRecord => {
                // The one policy whose append blocks on the disk: time
                // it for the flight recorder's `fsync_wait` stage.
                let start = std::time::Instant::now();
                inner.sync();
                fsync_wait = start.elapsed().as_micros() as u64;
            }
            FsyncPolicy::Batched(n) => {
                // Wake the group-commit flusher exactly once per batch
                // crossing, after releasing the lock (so it does not
                // wake straight into our own mutex) — the append itself
                // never waits on the disk; the flusher's 10 ms tick
                // covers any missed wakeup.
                if inner.unsynced == n {
                    drop(guard);
                    self.sync_signal.notify_one();
                }
            }
            FsyncPolicy::Never => {}
        }
        (seq, fsync_wait)
    }

    fn snapshot_due(&self) -> bool {
        self.since_snapshot.load(Ordering::Relaxed) >= self.config.snapshot_every
    }

    fn begin_snapshot(&self) -> u64 {
        let mut inner = self.inner.lock().expect("journal sink poisoned");
        inner.sync();
        let closed = inner.segment;
        inner.segment += 1;
        let next = self.dir.join(segment_name(inner.segment));
        match OpenOptions::new().create(true).append(true).open(next) {
            Ok(file) => inner.file = io::BufWriter::new(file),
            Err(e) => journal_fail("segment rotation", &e),
        }
        // Stop re-triggering snapshots while this capture is in flight;
        // the counter restarts from the records the new segment gathers.
        self.since_snapshot.store(0, Ordering::Relaxed);
        closed
    }

    fn install_snapshot(&self, snapshot: &JournalRecord) -> io::Result<()> {
        let JournalRecord::Snapshot(image) = snapshot else {
            return Err(io::Error::other("install_snapshot needs a Snapshot record"));
        };
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let mut file = File::create(&tmp)?;
        file.write_all(snapshot.to_line(0).as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        if let Ok(dirf) = File::open(&self.dir) {
            let _ = dirf.sync_all();
        }
        self.prune_segments(image.covers)?;
        let mut inner = self.inner.lock().expect("journal sink poisoned");
        // Make the tail segment readable alongside the fresh snapshot (a
        // compacted journal should be inspectable without waiting for
        // the next sync point).
        inner.file.flush()?;
        inner.snapshots_installed += 1;
        Ok(())
    }

    fn stats_value(&self) -> Option<Value> {
        let inner = self.inner.lock().expect("journal sink poisoned");
        let mut m = Map::new();
        m.insert("epoch".into(), Value::UInt(self.epoch));
        m.insert("segment".into(), Value::UInt(inner.segment));
        m.insert("last_seq".into(), Value::UInt(inner.seq));
        m.insert("appended".into(), Value::UInt(inner.appended));
        m.insert("bytes_appended".into(), Value::UInt(inner.bytes));
        m.insert(
            "since_snapshot".into(),
            Value::UInt(self.since_snapshot.load(Ordering::Relaxed)),
        );
        m.insert(
            "snapshots_installed".into(),
            Value::UInt(inner.snapshots_installed),
        );
        m.insert("fsync".into(), str_value(&self.config.fsync.name()));
        Some(Value::Object(m))
    }
}

// ---------------------------------------------------------------------------
// Reading a journal directory back
// ---------------------------------------------------------------------------

/// Everything read back from a journal directory, ready to fold into a
/// fresh service.
#[derive(Debug, Default)]
pub struct JournalContents {
    /// The installed snapshot, if one exists.
    pub snapshot: Option<SnapshotImage>,
    /// Tail records in append order, from segments newer than the
    /// snapshot's `covers` index.
    pub tail: Vec<(u64, JournalRecord)>,
    /// Highest sequence number seen anywhere — snapshot watermarks
    /// included, so the next sink resumes above them even when the tail
    /// is empty (the next sink continues above this).
    pub max_seq: u64,
    /// Highest segment index present (the next sink starts above it).
    pub max_segment: u64,
    /// True when the final line of the last segment was torn (truncated
    /// by a crash mid-write) and dropped.
    pub torn_tail: bool,
}

/// Errors reading a journal directory.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(io::Error),
    /// A malformed line *before* the tail, or an inconsistent record
    /// stream (e.g. a grant for busy processors): refusing to guess.
    Corrupt(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt(reason) => write!(f, "journal corrupt: {reason}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<ServiceError> for JournalError {
    fn from(e: ServiceError) -> Self {
        JournalError::Corrupt(e.to_string())
    }
}

/// Reads a journal directory: the installed snapshot plus every tail
/// record, tolerating exactly one torn line — newline-less and at the
/// very end of the last segment. A directory that does not exist (or is
/// empty) reads as empty contents — a brand-new journal.
pub fn read_journal_dir(dir: &Path) -> Result<JournalContents, JournalError> {
    let mut contents = JournalContents::default();
    if !dir.exists() {
        return Ok(contents);
    }

    let snapshot_path = dir.join(SNAPSHOT_FILE);
    if snapshot_path.exists() {
        let text = fs::read_to_string(&snapshot_path)?;
        let line = text.lines().next().unwrap_or("");
        match JournalRecord::from_line(line) {
            Ok((_, JournalRecord::Snapshot(image))) => contents.snapshot = Some(image),
            Ok(_) => {
                return Err(JournalError::Corrupt(
                    "snapshot file holds a non-snapshot record".to_string(),
                ))
            }
            Err(e) => {
                return Err(JournalError::Corrupt(format!(
                    "snapshot file unreadable: {e}"
                )))
            }
        }
    }
    if let Some(snapshot) = &contents.snapshot {
        // The per-machine watermarks are sequence numbers too, and the
        // next sink must resume above them even when the WAL tail is
        // empty (a snapshot install prunes the tail). Otherwise a quiet
        // restart would read max_seq = 0, hand out seq 1.. at or below
        // the watermarks, and the *next* recovery's watermark gate would
        // silently drop those acknowledged records.
        contents.max_seq = snapshot.machines.iter().map(|m| m.seq).max().unwrap_or(0);
    }
    let covers = contents.snapshot.as_ref().map_or(0, |s| s.covers);

    let mut segments: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|entry| {
            entry
                .ok()
                .and_then(|e| e.file_name().to_str().and_then(segment_index))
        })
        .collect();
    segments.sort_unstable();
    contents.max_segment = segments.last().copied().unwrap_or(0);

    // A newline-less parse failure at the end of a segment is tolerated
    // *provisionally*: it is a torn write only if no record follows it
    // anywhere (a crashed recovery can leave empty segments after the
    // torn one — rotation always syncs the old segment first, so any
    // real record after the failure proves the line was fully written
    // once, i.e. corruption).
    let mut pending_torn: Option<String> = None;
    for &segment in &segments {
        let path = dir.join(segment_name(segment));
        // Raw bytes: a torn tail may not even be valid UTF-8. Reading
        // the whole segment also shows whether the final line kept its
        // trailing newline — a line that did was fully written, so a
        // parse failure there is corruption, never a torn write.
        let data = fs::read(&path)?;
        let newline_terminated = data.last() == Some(&b'\n');
        let mut lines = data.split(|&b| b == b'\n').peekable();
        while let Some(line) = lines.next() {
            if line.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            if let Some(torn) = &pending_torn {
                return Err(JournalError::Corrupt(format!(
                    "records follow a malformed line ({torn})"
                )));
            }
            let parsed = std::str::from_utf8(line)
                .map_err(|e| Error::msg(format!("non-UTF-8 line: {e}")))
                .and_then(JournalRecord::from_line);
            match parsed {
                Ok((seq, record)) => {
                    contents.max_seq = contents.max_seq.max(seq);
                    if contents.snapshot.is_some() && segment <= covers {
                        // Fully covered by the snapshot: pruning raced a
                        // crash and left the segment behind. Skip it.
                        continue;
                    }
                    contents.tail.push((seq, record));
                }
                Err(e) if !newline_terminated && lines.peek().is_none() => {
                    // Possibly a crash tearing the final line mid-write;
                    // by the write-ahead discipline its effect was never
                    // acknowledged beyond the fsync horizon. Confirmed
                    // as torn only if nothing follows it.
                    pending_torn = Some(format!("{}: {e}", path.display()));
                }
                Err(e) => {
                    return Err(JournalError::Corrupt(format!(
                        "{} holds a malformed, fully-written line: {e}",
                        path.display()
                    )));
                }
            }
        }
    }
    contents.torn_tail = pending_torn.is_some();
    Ok(contents)
}

/// Opens a journal directory as a live service: reads any existing
/// snapshot and WAL tail, folds them into a fresh
/// [`crate::AllocationService`] through the deterministic restore paths,
/// attaches a [`FileJournal`] that continues the sequence space, and
/// immediately installs a fresh snapshot (so the recovered state is
/// durable before the first request and stale segments prune). A
/// directory that does not exist yet starts an empty epoch-0 journal.
///
/// Tail records already reflected in the snapshot (the concurrent-
/// capture window) are skipped by each machine's sequence watermark;
/// see the module docs for why that makes recovery exact.
pub fn open_journaled(
    dir: &Path,
    config: JournalConfig,
) -> Result<(crate::AllocationService, RecoveryReport), JournalError> {
    let contents = read_journal_dir(dir)?;
    let had_state = contents.snapshot.is_some() || !contents.tail.is_empty();
    let epoch = contents.snapshot.as_ref().map_or(0, |s| s.epoch) + u64::from(had_state);

    let service = crate::AllocationService::new();
    let mut report = RecoveryReport {
        epoch,
        snapshot_found: contents.snapshot.is_some(),
        torn_tail: contents.torn_tail,
        ..RecoveryReport::default()
    };
    let mut watermarks = std::collections::HashMap::new();
    if let Some(snapshot) = &contents.snapshot {
        watermarks = service.apply_snapshot(snapshot)?;
    }
    for (seq, record) in &contents.tail {
        if let Some(machine) = record.machine() {
            if *seq <= watermarks.get(machine).copied().unwrap_or(0) {
                report.skipped += 1;
                continue;
            }
        }
        service.apply_journal_record(record)?;
        report.applied += 1;
    }
    // Configs and consumed totals restored from records; the live
    // tenant gauges (outstanding commitments, queued counts) are
    // derived state, recomputed exactly from the restored jobs.
    service.rebuild_tenant_gauges();
    report.machines = service.list().len();

    let sink = FileJournal::create(
        dir,
        config,
        epoch,
        contents.max_segment + 1,
        contents.max_seq,
    )?;
    let service = service.with_journal(std::sync::Arc::new(sink));
    if had_state {
        // Make the recovered state durable as one compacted image before
        // the first request, and prune the pre-crash segments.
        service.install_journal_snapshot()?;
    }
    Ok((service, report))
}

/// What recovery did, surfaced by the CLI and the `stats` response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// The epoch this incarnation runs under (previous epoch + 1 when
    /// anything was recovered; 0 for a fresh journal).
    pub epoch: u64,
    /// Whether an installed snapshot was found.
    pub snapshot_found: bool,
    /// Machines rebuilt (snapshot images plus tail registrations).
    pub machines: usize,
    /// Tail records applied.
    pub applied: u64,
    /// Tail records skipped as already reflected in the snapshot (the
    /// watermark protocol at work).
    pub skipped: u64,
    /// Whether a torn final line was dropped.
    pub torn_tail: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "commalloc-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Register {
                machine: "m0".into(),
                mesh: "16x16".into(),
                allocator: Some("Hilbert w/BF".into()),
                strategy: None,
                scheduler: Some("easy".into()),
                pool: Some("grid".into()),
            },
            JournalRecord::Grant {
                machine: "m0".into(),
                job: 1,
                nodes: vec![NodeId(0), NodeId(1)],
                walltime: Some(60.5),
                start: 3.25,
                pattern: Some(CommPattern::AllToAll),
                tenant: Some("acme".into()),
            },
            JournalRecord::Grant {
                machine: "m0".into(),
                job: 3,
                nodes: vec![NodeId(4)],
                walltime: None,
                start: 3.5,
                pattern: None,
                tenant: None,
            },
            JournalRecord::Queue {
                machine: "m0".into(),
                job: 2,
                size: 9,
                walltime: None,
                enqueued_at: 4.0,
                pattern: Some(CommPattern::Ring),
                tenant: Some("acme".into()),
            },
            JournalRecord::Release {
                machine: "m0".into(),
                job: 1,
            },
            JournalRecord::Cancel {
                machine: "m0".into(),
                job: 2,
            },
            JournalRecord::SetScheduler {
                machine: "m0".into(),
                scheduler: "first-fit backfill".into(),
            },
            JournalRecord::SetRouter {
                pool: "grid".into(),
                policy: "least-loaded".into(),
            },
            JournalRecord::SetTenant {
                tenant: "acme".into(),
                weight: 2.5,
                quota: Some(1e6),
                max_in_flight: Some(32),
            },
            JournalRecord::SetTenant {
                tenant: "solo".into(),
                weight: 1.0,
                quota: None,
                max_in_flight: None,
            },
            JournalRecord::SetFairShare {
                machine: "m0".into(),
                enabled: true,
            },
            JournalRecord::Snapshot(SnapshotImage {
                epoch: 2,
                covers: 3,
                machines: vec![MachineImage {
                    machine: "m0".into(),
                    mesh: "4x4".into(),
                    allocator: "Hilbert w/BF".into(),
                    strategy: None,
                    scheduler: "FCFS".into(),
                    seq: 17,
                    clock: Some(9.5),
                    fair_share: true,
                    running: vec![RunningImage {
                        job: 4,
                        nodes: vec![NodeId(3)],
                        walltime: None,
                        start: 1.0,
                        pattern: Some(CommPattern::AllToAll),
                        tenant: Some("acme".into()),
                    }],
                    queue: vec![QueuedImage {
                        job: 5,
                        size: 2,
                        walltime: Some(7.0),
                        enqueued_at: 2.0,
                        pattern: None,
                        tenant: None,
                    }],
                }],
                pools: vec![PoolImage {
                    pool: "grid".into(),
                    members: vec!["m0".into()],
                    policy: "power-of-two".into(),
                }],
                tenants: vec![TenantImage {
                    tenant: "acme".into(),
                    weight: 2.5,
                    quota: Some(1e6),
                    max_in_flight: None,
                    consumed: 123.5,
                }],
            }),
        ]
    }

    #[test]
    fn untenanted_records_keep_their_pre_tenant_bytes() {
        // The refactor's byte-equivalence contract at the journal layer:
        // a grant/queue record with no tenant renders exactly as it did
        // before the tenant field existed.
        let grant = JournalRecord::Grant {
            machine: "m0".into(),
            job: 7,
            nodes: vec![NodeId(1), NodeId(2)],
            walltime: Some(30.0),
            start: 1.5,
            pattern: None,
            tenant: None,
        };
        assert_eq!(
            grant.to_line(9),
            "{\"seq\":9,\"rec\":\"grant\",\"machine\":\"m0\",\"job\":7,\
             \"nodes\":[1,2],\"walltime\":30,\"start\":1.5}"
        );
        let queue = JournalRecord::Queue {
            machine: "m0".into(),
            job: 8,
            size: 4,
            walltime: None,
            enqueued_at: 2.0,
            pattern: None,
            tenant: None,
        };
        assert_eq!(
            queue.to_line(10),
            "{\"seq\":10,\"rec\":\"queue\",\"machine\":\"m0\",\"job\":8,\
             \"size\":4,\"walltime\":null,\"enqueued_at\":2}"
        );
    }

    #[test]
    fn every_record_kind_round_trips_through_the_wire_format() {
        for (i, record) in sample_records().into_iter().enumerate() {
            let seq = i as u64 + 1;
            let line = record.to_line(seq);
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let (parsed_seq, parsed) = JournalRecord::from_line(&line).unwrap();
            assert_eq!(parsed_seq, seq);
            assert_eq!(parsed, record, "line was {line}");
        }
    }

    #[test]
    fn fast_line_rendering_matches_the_value_tree() {
        // The hot append path hand-writes JSON; it must emit byte-for-
        // byte what the Value-tree path would (one canonical format).
        for (i, record) in sample_records().into_iter().enumerate() {
            let seq = i as u64 + 1;
            assert_eq!(
                record.to_line(seq),
                serde_json::to_string(&record.to_value(seq)).unwrap(),
                "paths diverged on {record:?}"
            );
        }
    }

    #[test]
    fn fsync_policy_parses_and_names_round_trip() {
        assert_eq!(FsyncPolicy::parse("every"), Some(FsyncPolicy::EveryRecord));
        assert_eq!(FsyncPolicy::parse("1"), Some(FsyncPolicy::EveryRecord));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("64"), Some(FsyncPolicy::Batched(64)));
        assert_eq!(FsyncPolicy::parse("zero"), None);
        for policy in [
            FsyncPolicy::EveryRecord,
            FsyncPolicy::Batched(7),
            FsyncPolicy::Never,
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.name()), Some(policy));
        }
    }

    #[test]
    fn file_sink_appends_and_reads_back_in_order() {
        let dir = temp_dir("roundtrip");
        let journal = FileJournal::create(&dir, JournalConfig::default(), 0, 1, 0).unwrap();
        let records = sample_records();
        for record in &records {
            journal.append(record);
        }
        drop(journal); // flush the buffered writer, as a clean exit would
        let contents = read_journal_dir(&dir).unwrap();
        assert!(contents.snapshot.is_none(), "no snapshot installed yet");
        assert_eq!(contents.max_seq, records.len() as u64);
        assert_eq!(contents.max_segment, 1);
        assert!(!contents.torn_tail);
        let read: Vec<JournalRecord> = contents.tail.into_iter().map(|(_, r)| r).collect();
        assert_eq!(read, records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_but_earlier_corruption_is_fatal() {
        let dir = temp_dir("torn");
        let journal = FileJournal::create(&dir, JournalConfig::default(), 0, 1, 0).unwrap();
        journal.append(&JournalRecord::Release {
            machine: "m0".into(),
            job: 1,
        });
        journal.append(&JournalRecord::Release {
            machine: "m0".into(),
            job: 2,
        });
        drop(journal);
        let path = dir.join(segment_name(1));
        // Simulate a crash mid-write: truncate the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - text.len() / 4];
        fs::write(&path, torn).unwrap();
        let contents = read_journal_dir(&dir).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.tail.len(), 1);
        // Corruption *before* the tail refuses to load.
        fs::write(
            &path,
            format!(
                "{{\"seq\":1,\"rec\":\"release\",\"machine\":\"m0\",\"job\":1}}\nnot json\n{}",
                text.lines().nth(1).unwrap()
            ),
        )
        .unwrap();
        assert!(matches!(
            read_journal_dir(&dir),
            Err(JournalError::Corrupt(_))
        ));
        // A malformed final line that *kept* its trailing newline was
        // fully written (and possibly fsync-acknowledged): that is
        // corruption, not a torn write, and must refuse too.
        fs::write(
            &path,
            "{\"seq\":1,\"rec\":\"release\",\"machine\":\"m0\",\"job\":1}\nnot json\n",
        )
        .unwrap();
        assert!(matches!(
            read_journal_dir(&dir),
            Err(JournalError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_across_trailing_empty_segments() {
        // A crashed recovery leaves the torn segment *followed by* the
        // empty segment the aborted recovery created; the journal must
        // still open (the torn line is the last record anywhere). But a
        // real record after the torn line proves the line was once
        // fully written (rotation syncs first) — corruption, refuse.
        let dir = temp_dir("torn-nonlast");
        let journal = FileJournal::create(&dir, JournalConfig::default(), 0, 1, 0).unwrap();
        journal.append(&JournalRecord::Release {
            machine: "m0".into(),
            job: 1,
        });
        drop(journal);
        let torn_path = dir.join(segment_name(1));
        let text = fs::read_to_string(&torn_path).unwrap();
        fs::write(&torn_path, &text[..text.len() - 5]).unwrap();
        fs::write(dir.join(segment_name(2)), "").unwrap();
        let contents = read_journal_dir(&dir).unwrap();
        assert!(contents.torn_tail);
        assert!(contents.tail.is_empty());
        assert_eq!(contents.max_segment, 2);
        // A record in a later segment turns the tolerated torn line
        // into corruption.
        fs::write(
            dir.join(segment_name(2)),
            "{\"seq\":2,\"rec\":\"release\",\"machine\":\"m0\",\"job\":2}\n",
        )
        .unwrap();
        assert!(matches!(
            read_journal_dir(&dir),
            Err(JournalError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_install_prunes_covered_segments() {
        let dir = temp_dir("prune");
        let journal = FileJournal::create(&dir, JournalConfig::default(), 0, 1, 0).unwrap();
        journal.append(&JournalRecord::Release {
            machine: "m0".into(),
            job: 1,
        });
        let closed = journal.begin_snapshot();
        assert_eq!(closed, 1);
        // A record landing after rotation lives in segment 2 (the tail).
        journal.append(&JournalRecord::Release {
            machine: "m0".into(),
            job: 2,
        });
        let image = SnapshotImage {
            epoch: 1,
            covers: closed,
            ..SnapshotImage::default()
        };
        journal
            .install_snapshot(&JournalRecord::Snapshot(image.clone()))
            .unwrap();
        assert!(
            !dir.join(segment_name(1)).exists(),
            "covered segment prunes"
        );
        assert!(dir.join(segment_name(2)).exists());
        let contents = read_journal_dir(&dir).unwrap();
        assert_eq!(contents.snapshot, Some(image));
        assert_eq!(contents.tail.len(), 1, "only the post-rotation record");
        assert!(matches!(
            contents.tail[0].1,
            JournalRecord::Release { job: 2, .. }
        ));
        let stats = journal.stats_value().unwrap();
        assert_eq!(stats.get("appended").and_then(Value::as_u64), Some(2));
        assert_eq!(
            stats.get("snapshots_installed").and_then(Value::as_u64),
            Some(1)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn max_seq_resumes_above_snapshot_watermarks_when_the_tail_is_empty() {
        // A snapshot install prunes the WAL, so a quiet restart reads an
        // empty tail. The next sink must still continue the sequence
        // space above the snapshot's per-machine watermarks, or its
        // records would be gated out by the following recovery.
        let dir = temp_dir("watermark-seed");
        let journal = FileJournal::create(&dir, JournalConfig::default(), 1, 2, 42).unwrap();
        let image = SnapshotImage {
            epoch: 1,
            covers: 1,
            machines: vec![
                MachineImage {
                    machine: "m0".into(),
                    mesh: "4x4".into(),
                    allocator: "Hilbert w/BF".into(),
                    strategy: None,
                    scheduler: "FCFS".into(),
                    seq: 42,
                    clock: None,
                    fair_share: false,
                    running: Vec::new(),
                    queue: Vec::new(),
                },
                MachineImage {
                    machine: "m1".into(),
                    mesh: "4x4".into(),
                    allocator: "Hilbert w/BF".into(),
                    strategy: None,
                    scheduler: "FCFS".into(),
                    seq: 17,
                    clock: None,
                    fair_share: false,
                    running: Vec::new(),
                    queue: Vec::new(),
                },
            ],
            pools: Vec::new(),
            tenants: Vec::new(),
        };
        journal
            .install_snapshot(&JournalRecord::Snapshot(image))
            .unwrap();
        drop(journal);
        let contents = read_journal_dir(&dir).unwrap();
        assert!(contents.tail.is_empty());
        assert_eq!(contents.max_seq, 42, "seeded from the highest watermark");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_reads_as_empty() {
        let dir = temp_dir("absent");
        let contents = read_journal_dir(&dir).unwrap();
        assert!(contents.snapshot.is_none());
        assert!(contents.tail.is_empty());
        assert_eq!(contents.max_segment, 0);
    }
}
