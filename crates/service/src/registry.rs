//! Machine registry: named live machines behind sharded locks.
//!
//! Machines hash to one of a fixed number of shards; each shard is a
//! `Mutex<HashMap<name, MachineEntry>>`. Requests touching different
//! machines on different shards proceed fully in parallel, while requests
//! for one machine serialise — the granularity the occupancy invariant
//! requires (an allocate must observe the state left by the previous
//! allocate/release on the same machine).

use crate::admission::{FcfsQueue, PendingRequest};
use crate::metrics::MachineMetrics;
use commalloc_alloc::curve_alloc::SelectionStrategy;
use commalloc_alloc::interval_index::FreeIntervalIndex;
use commalloc_alloc::{AllocRequest, Allocation, Allocator, AllocatorKind, MachineState};
use commalloc_mesh::curve3d::{Curve3Kind, Curve3Order};
use commalloc_mesh::{Mesh2D, Mesh3D, NodeId};
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Errors surfaced by the service to callers (mapped onto protocol error
/// responses by the server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The named machine is not registered.
    UnknownMachine(String),
    /// A machine with that name already exists.
    MachineExists(String),
    /// A mesh/allocator/strategy specification could not be parsed.
    InvalidSpec(String),
    /// The job is neither running nor queued on the machine.
    UnknownJob { machine: String, job_id: u64 },
    /// The job already runs or waits on the machine.
    DuplicateJob { machine: String, job_id: u64 },
    /// The request itself is malformed (zero size, larger than the whole
    /// machine, ...).
    InvalidRequest(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownMachine(name) => write!(f, "unknown machine {name:?}"),
            ServiceError::MachineExists(name) => {
                write!(f, "machine {name:?} is already registered")
            }
            ServiceError::InvalidSpec(spec) => write!(f, "invalid specification: {spec}"),
            ServiceError::UnknownJob { machine, job_id } => {
                write!(f, "job {job_id} is not known on machine {machine:?}")
            }
            ServiceError::DuplicateJob { machine, job_id } => {
                write!(f, "job {job_id} already exists on machine {machine:?}")
            }
            ServiceError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Outcome of an allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocOutcome {
    /// Processors were granted immediately, in rank order.
    Granted(Vec<NodeId>),
    /// The request waits in the FCFS admission queue at this 1-based
    /// position.
    Queued(usize),
    /// The request was rejected (capacity shortfall with `wait` unset).
    Rejected(String),
}

/// Status of a job on a machine, as reported by `poll`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Running on these processors (granted immediately or from the
    /// queue).
    Running(Vec<NodeId>),
    /// Waiting in the admission queue at this 1-based position.
    Queued(usize),
    /// Not present on the machine.
    Unknown,
}

/// A point-in-time occupancy summary of one machine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineSnapshot {
    /// Machine name.
    pub machine: String,
    /// Dimension spec: `"WxH"` or `"WxHxD"`.
    pub dims: String,
    /// Allocator description.
    pub allocator: String,
    /// Total processors.
    pub nodes: usize,
    /// Free processors.
    pub free: usize,
    /// Busy processors.
    pub busy: usize,
    /// Fraction of processors busy.
    pub utilization: f64,
    /// Jobs currently holding processors.
    pub live_jobs: usize,
    /// Requests waiting in the admission queue.
    pub queue_len: usize,
}

/// The allocator+state backing of one machine.
enum Backing {
    /// A 2-D mesh served by any of the paper's allocators.
    TwoD {
        mesh: Mesh2D,
        machine: MachineState,
        allocator: Box<dyn Allocator>,
        kind: AllocatorKind,
    },
    /// A 3-D mesh served by one-dimensional reduction along a 3-D curve,
    /// with the free-interval index as the single source of truth.
    ThreeD {
        mesh: Mesh3D,
        curve: Curve3Order,
        index: FreeIntervalIndex,
        strategy: SelectionStrategy,
    },
}

impl Backing {
    fn total_nodes(&self) -> usize {
        match self {
            Backing::TwoD { machine, .. } => machine.num_nodes(),
            Backing::ThreeD { index, .. } => index.len(),
        }
    }

    fn num_free(&self) -> usize {
        match self {
            Backing::TwoD { machine, .. } => machine.num_free(),
            Backing::ThreeD { index, .. } => index.num_free(),
        }
    }

    fn num_busy(&self) -> usize {
        self.total_nodes() - self.num_free()
    }

    /// Attempts the raw allocation, committing the occupancy change on
    /// success. Does not touch the queue or metrics.
    fn try_allocate(&mut self, job_id: u64, size: usize) -> Option<Vec<NodeId>> {
        match self {
            Backing::TwoD {
                machine, allocator, ..
            } => {
                let allocation = allocator.allocate(&AllocRequest::new(job_id, size), machine)?;
                machine.occupy(&allocation.nodes);
                Some(allocation.nodes)
            }
            Backing::ThreeD {
                curve,
                index,
                strategy,
                ..
            } => {
                if size == 0 || size > index.num_free() {
                    return None;
                }
                let ranks: Vec<usize> = match strategy {
                    SelectionStrategy::FreeList => index.free_list_ranks(size),
                    _ => match index.select(*strategy, size) {
                        Some(interval) => (interval.start..interval.start + size).collect(),
                        None => index.min_span_ranks(size),
                    },
                };
                let applied = index.occupy_ranks(&ranks);
                debug_assert!(applied, "3-D index granted a busy rank");
                Some(ranks.iter().map(|&r| curve.node_at(r)).collect())
            }
        }
    }

    /// Returns the nodes of `job_id` to the free pool.
    fn release(&mut self, nodes: &[NodeId], job_id: u64) {
        match self {
            Backing::TwoD {
                machine, allocator, ..
            } => {
                machine.release(nodes);
                allocator.release(&Allocation::new(job_id, nodes.to_vec()), machine);
            }
            Backing::ThreeD { curve, index, .. } => {
                let ranks: Vec<usize> = nodes.iter().map(|&node| curve.rank_of(node)).collect();
                let applied = index.release_ranks(&ranks);
                debug_assert!(applied, "released a free rank");
            }
        }
    }
}

/// One registered machine: backing state, live allocations, admission
/// queue and counters. All access happens under the owning shard's lock.
pub struct MachineEntry {
    name: String,
    backing: Backing,
    allocations: HashMap<u64, Vec<NodeId>>,
    queue: FcfsQueue,
    /// Operation counters (public so the service layer can read them out).
    pub metrics: MachineMetrics,
}

impl MachineEntry {
    fn new_2d(name: &str, mesh: Mesh2D, kind: AllocatorKind) -> Self {
        MachineEntry {
            name: name.to_string(),
            backing: Backing::TwoD {
                mesh,
                machine: MachineState::new(mesh),
                allocator: kind.build(mesh),
                kind,
            },
            allocations: HashMap::new(),
            queue: FcfsQueue::new(),
            metrics: MachineMetrics::default(),
        }
    }

    fn new_3d(name: &str, mesh: Mesh3D, curve: Curve3Kind, strategy: SelectionStrategy) -> Self {
        let curve = Curve3Order::build(curve, mesh);
        let index = FreeIntervalIndex::all_free(curve.len());
        MachineEntry {
            name: name.to_string(),
            backing: Backing::ThreeD {
                mesh,
                curve,
                index,
                strategy,
            },
            allocations: HashMap::new(),
            queue: FcfsQueue::new(),
            metrics: MachineMetrics::default(),
        }
    }

    /// Total processors.
    pub fn total_nodes(&self) -> usize {
        self.backing.total_nodes()
    }

    /// Currently free processors.
    pub fn num_free(&self) -> usize {
        self.backing.num_free()
    }

    /// Currently busy processors.
    pub fn num_busy(&self) -> usize {
        self.backing.num_busy()
    }

    /// Serves an allocation request: immediate grant, queue (when `wait`),
    /// or rejection. FCFS: a non-empty queue means no request may jump
    /// ahead, even if it would fit.
    pub fn allocate(
        &mut self,
        job_id: u64,
        size: usize,
        wait: bool,
    ) -> Result<AllocOutcome, ServiceError> {
        if self.allocations.contains_key(&job_id) || self.queue.contains(job_id) {
            return Err(ServiceError::DuplicateJob {
                machine: self.name.clone(),
                job_id,
            });
        }
        if size == 0 {
            return Err(ServiceError::InvalidRequest(
                "cannot allocate zero processors".to_string(),
            ));
        }
        if size > self.total_nodes() {
            return Err(ServiceError::InvalidRequest(format!(
                "request for {size} processors exceeds machine size {}",
                self.total_nodes()
            )));
        }
        let must_wait = !self.queue.is_empty();
        if !must_wait {
            if let Some(nodes) = self.backing.try_allocate(job_id, size) {
                self.metrics.record_grant(false, self.num_busy());
                self.allocations.insert(job_id, nodes.clone());
                return Ok(AllocOutcome::Granted(nodes));
            }
        }
        if wait {
            let position = self.queue.enqueue(PendingRequest { job_id, size });
            self.metrics.queued += 1;
            Ok(AllocOutcome::Queued(position))
        } else {
            self.metrics.rejected += 1;
            Ok(AllocOutcome::Rejected(format!(
                "{} processors requested, {} free{}",
                size,
                self.num_free(),
                if must_wait { ", queue ahead" } else { "" }
            )))
        }
    }

    /// Releases `job_id` (or cancels it if still queued), then drains the
    /// admission queue head-first. Returns the jobs granted from the
    /// queue as `(job_id, nodes)` pairs, in grant order.
    pub fn release(&mut self, job_id: u64) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        if let Some(nodes) = self.allocations.remove(&job_id) {
            self.backing.release(&nodes, job_id);
            self.metrics.released += 1;
        } else if self.queue.remove(job_id).is_some() {
            // Cancelling a queued request frees no processors, but may
            // unblock the queue if the cancelled job was the head.
        } else {
            return Err(ServiceError::UnknownJob {
                machine: self.name.clone(),
                job_id,
            });
        }
        Ok(self.drain_queue())
    }

    /// Grants queued requests from the head while they fit (FCFS with
    /// head-of-line blocking, via [`FcfsQueue::drain_grantable`]).
    fn drain_queue(&mut self) -> Vec<(u64, Vec<NodeId>)> {
        let backing = &mut self.backing;
        let allocations = &mut self.allocations;
        let metrics = &mut self.metrics;
        let mut granted = Vec::new();
        self.queue.drain_grantable(|head| {
            let Some(nodes) = backing.try_allocate(head.job_id, head.size) else {
                return false;
            };
            metrics.record_grant(true, backing.num_busy());
            allocations.insert(head.job_id, nodes.clone());
            granted.push((head.job_id, nodes));
            true
        });
        granted
    }

    /// Where `job_id` currently stands.
    pub fn poll(&self, job_id: u64) -> JobStatus {
        if let Some(nodes) = self.allocations.get(&job_id) {
            JobStatus::Running(nodes.clone())
        } else if let Some(position) = self.queue.position(job_id) {
            JobStatus::Queued(position)
        } else {
            JobStatus::Unknown
        }
    }

    /// Point-in-time occupancy summary.
    pub fn snapshot(&self) -> MachineSnapshot {
        let (dims, allocator) = match &self.backing {
            Backing::TwoD { mesh, kind, .. } => (
                format!("{}x{}", mesh.width(), mesh.height()),
                kind.name().to_string(),
            ),
            Backing::ThreeD {
                mesh,
                curve,
                strategy,
                ..
            } => (
                format!("{}x{}x{}", mesh.width(), mesh.height(), mesh.depth()),
                format!("{} w/{}", curve.kind().name(), strategy.short_name()),
            ),
        };
        MachineSnapshot {
            machine: self.name.clone(),
            dims,
            allocator,
            nodes: self.total_nodes(),
            free: self.num_free(),
            busy: self.num_busy(),
            utilization: self.num_busy() as f64 / self.total_nodes() as f64,
            live_jobs: self.allocations.len(),
            queue_len: self.queue.len(),
        }
    }

    /// Exhaustive occupancy-invariant check (test/debug helper): every
    /// node is held by at most one job, and the backing's free count
    /// agrees with the allocation table.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut held = vec![false; self.total_nodes()];
        for (job, nodes) in &self.allocations {
            for node in nodes {
                let i = node.index();
                if i >= held.len() {
                    return Err(format!("job {job} holds out-of-range node {node}"));
                }
                if held[i] {
                    return Err(format!("node {node} held by two jobs"));
                }
                held[i] = true;
            }
        }
        let held_count = held.iter().filter(|&&h| h).count();
        if held_count != self.num_busy() {
            return Err(format!(
                "allocation table holds {held_count} nodes but machine reports {} busy",
                self.num_busy()
            ));
        }
        match &self.backing {
            Backing::TwoD { machine, .. } => {
                for (i, &h) in held.iter().enumerate() {
                    if machine.is_free(NodeId(i as u32)) == h {
                        return Err(format!("node {i} free/held state mismatch"));
                    }
                }
            }
            Backing::ThreeD { curve, index, .. } => {
                for (i, &h) in held.iter().enumerate() {
                    if index.is_free(curve.rank_of(NodeId(i as u32))) == h {
                        return Err(format!("node {i} free/held state mismatch"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Named machines behind sharded locks.
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, MachineEntry>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_shards(8)
    }
}

impl Registry {
    /// A registry with `shards` lock shards (rounded up to at least one).
    pub fn with_shards(shards: usize) -> Self {
        Registry {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(&self, name: &str) -> &Mutex<HashMap<String, MachineEntry>> {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    fn register(&self, name: &str, entry: MachineEntry) -> Result<(), ServiceError> {
        let mut shard = self.shard_of(name).lock().expect("shard poisoned");
        if shard.contains_key(name) {
            return Err(ServiceError::MachineExists(name.to_string()));
        }
        shard.insert(name.to_string(), entry);
        Ok(())
    }

    /// Registers a 2-D mesh machine served by `kind`.
    pub fn register_2d(
        &self,
        name: &str,
        mesh: Mesh2D,
        kind: AllocatorKind,
    ) -> Result<(), ServiceError> {
        self.register(name, MachineEntry::new_2d(name, mesh, kind))
    }

    /// Registers a 3-D mesh machine served by curve reduction along
    /// `curve` with `strategy`.
    pub fn register_3d(
        &self,
        name: &str,
        mesh: Mesh3D,
        curve: Curve3Kind,
        strategy: SelectionStrategy,
    ) -> Result<(), ServiceError> {
        self.register(name, MachineEntry::new_3d(name, mesh, curve, strategy))
    }

    /// Runs `f` with exclusive access to the named machine.
    pub fn with_entry<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut MachineEntry) -> Result<R, ServiceError>,
    ) -> Result<R, ServiceError> {
        let mut shard = self.shard_of(name).lock().expect("shard poisoned");
        let entry = shard
            .get_mut(name)
            .ok_or_else(|| ServiceError::UnknownMachine(name.to_string()))?;
        f(entry)
    }

    /// Names of all registered machines, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// True when no machine is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_m0() -> Registry {
        let r = Registry::default();
        r.register_2d("m0", Mesh2D::square_16x16(), AllocatorKind::HilbertBestFit)
            .unwrap();
        r
    }

    #[test]
    fn register_rejects_duplicates_and_lists_sorted() {
        let r = registry_with_m0();
        assert_eq!(
            r.register_2d("m0", Mesh2D::new(4, 4), AllocatorKind::Mc1x1),
            Err(ServiceError::MachineExists("m0".to_string()))
        );
        r.register_3d(
            "cube",
            Mesh3D::new(4, 4, 4),
            Curve3Kind::Hilbert,
            SelectionStrategy::BestFit,
        )
        .unwrap();
        assert_eq!(r.list(), vec!["cube".to_string(), "m0".to_string()]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn allocate_release_cycle_keeps_invariants() {
        let r = registry_with_m0();
        let outcome = r.with_entry("m0", |m| m.allocate(1, 30, false)).unwrap();
        let AllocOutcome::Granted(nodes) = outcome else {
            panic!("expected a grant, got {outcome:?}");
        };
        assert_eq!(nodes.len(), 30);
        r.with_entry("m0", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
        assert_eq!(
            r.with_entry("m0", |m| Ok(m.poll(1))).unwrap(),
            JobStatus::Running(nodes)
        );
        let granted = r.with_entry("m0", |m| m.release(1)).unwrap();
        assert!(granted.is_empty());
        assert_eq!(r.with_entry("m0", |m| Ok(m.num_free())).unwrap(), 256);
    }

    #[test]
    fn queueing_is_fcfs_with_head_of_line_blocking() {
        let r = registry_with_m0();
        // Fill the machine almost completely.
        let AllocOutcome::Granted(_) = r.with_entry("m0", |m| m.allocate(1, 250, false)).unwrap()
        else {
            panic!("grant expected");
        };
        // 20 does not fit -> queued; 3 would fit but must wait behind it.
        assert_eq!(
            r.with_entry("m0", |m| m.allocate(2, 20, true)).unwrap(),
            AllocOutcome::Queued(1)
        );
        assert_eq!(
            r.with_entry("m0", |m| m.allocate(3, 3, true)).unwrap(),
            AllocOutcome::Queued(2)
        );
        // Without wait, the same situation is a rejection.
        let outcome = r.with_entry("m0", |m| m.allocate(4, 1, false)).unwrap();
        assert!(matches!(outcome, AllocOutcome::Rejected(_)));
        // Releasing the big job grants both queued jobs, in order.
        let granted = r.with_entry("m0", |m| m.release(1)).unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 3]);
        r.with_entry("m0", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
    }

    #[test]
    fn cancelling_a_queued_head_unblocks_the_queue() {
        let r = registry_with_m0();
        r.with_entry("m0", |m| m.allocate(1, 250, false)).unwrap();
        r.with_entry("m0", |m| m.allocate(2, 100, true)).unwrap();
        r.with_entry("m0", |m| m.allocate(3, 5, true)).unwrap();
        // Cancel the blocking head; job 3 fits the 6 free processors.
        let granted = r.with_entry("m0", |m| m.release(2)).unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn duplicate_and_unknown_jobs_are_errors() {
        let r = registry_with_m0();
        r.with_entry("m0", |m| m.allocate(1, 4, false)).unwrap();
        assert_eq!(
            r.with_entry("m0", |m| m.allocate(1, 4, false)),
            Err(ServiceError::DuplicateJob {
                machine: "m0".to_string(),
                job_id: 1
            })
        );
        assert_eq!(
            r.with_entry("m0", |m| m.release(99)),
            Err(ServiceError::UnknownJob {
                machine: "m0".to_string(),
                job_id: 99
            })
        );
        assert!(matches!(
            r.with_entry("m0", |m| m.allocate(5, 0, false)),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            r.with_entry("m0", |m| m.allocate(5, 1000, false)),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            r.with_entry("nope", |m| m.allocate(1, 1, false)),
            Err(ServiceError::UnknownMachine(_))
        ));
    }

    #[test]
    fn three_d_machines_allocate_contiguously_when_empty() {
        let r = Registry::default();
        r.register_3d(
            "cube",
            Mesh3D::new(8, 8, 8),
            Curve3Kind::Hilbert,
            SelectionStrategy::BestFit,
        )
        .unwrap();
        let AllocOutcome::Granted(nodes) =
            r.with_entry("cube", |m| m.allocate(1, 32, false)).unwrap()
        else {
            panic!("grant expected");
        };
        assert_eq!(nodes.len(), 32);
        // A Hilbert-curve prefix on an empty power-of-two cube is one
        // connected component.
        assert_eq!(Mesh3D::new(8, 8, 8).components(&nodes), 1);
        r.with_entry("cube", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
        let snap = r.with_entry("cube", |m| Ok(m.snapshot())).unwrap();
        assert_eq!(snap.dims, "8x8x8");
        assert_eq!(snap.busy, 32);
        assert_eq!(snap.live_jobs, 1);
    }
}
