//! Machine registry: named live machines behind sharded locks.
//!
//! Machines hash to one of a fixed number of shards; each shard is a
//! `Mutex<HashMap<name, MachineEntry>>`. Requests touching different
//! machines on different shards proceed fully in parallel, while requests
//! for one machine serialise — the granularity the occupancy invariant
//! requires (an allocate must observe the state left by the previous
//! allocate/release on the same machine).

use crate::admission::{AdmissionQueue, PendingRequest};
use crate::calibration::{CalibrationSample, CalibrationStore, PlacementRecord, PLACEMENT_CAP};
use crate::journal::{JournalRecord, MachineImage, QueuedImage, RunningImage};
use crate::metrics::MachineMetrics;
use crate::score::ScoreBreakdown;
use crate::tenant::{job_cost, TenantTable};
use crate::trace::{RequestCtx, Stage};
use commalloc::scheduler::{BlockReason, QueuedJob, RunningSnapshot, SchedulerKind};
use commalloc_alloc::curve_alloc::SelectionStrategy;
use commalloc_alloc::interval_index::FreeIntervalIndex;
use commalloc_alloc::{AllocRequest, Allocation, Allocator, AllocatorKind, MachineState};
use commalloc_mesh::curve3d::{Curve3Kind, Curve3Order};
use commalloc_mesh::{CurveKind, CurveOrder, Mesh2D, Mesh3D, NodeId};
use commalloc_workload::CommPattern;
use serde::Serialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A raw allocation outcome: the granted nodes, plus — when the grant
/// was pattern-scored — the winner's score breakdown and the number of
/// candidate windows weighed (the grant-time half of the calibration
/// join).
type ScoredGrant = (Vec<NodeId>, Option<(ScoreBreakdown, usize)>);

/// Errors surfaced by the service to callers (mapped onto protocol error
/// responses by the server).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The named machine is not registered.
    UnknownMachine(String),
    /// The named pool has no members (`alloc` to `"@pool"`, `set_router`).
    UnknownPool(String),
    /// A machine with that name already exists.
    MachineExists(String),
    /// A mesh/allocator/strategy specification could not be parsed.
    InvalidSpec(String),
    /// The job is neither running nor queued on the machine.
    UnknownJob { machine: String, job_id: u64 },
    /// The job already runs or waits on the machine.
    DuplicateJob { machine: String, job_id: u64 },
    /// A bare job id addressed at a pool resolves to more than one
    /// member — the caller must use a qualified `pool/member/id` ref.
    AmbiguousJob {
        pool: String,
        job_id: u64,
        machines: Vec<String>,
    },
    /// Admitting the request would push the tenant's outstanding
    /// node-second commitment past its quota.
    QuotaExceeded {
        tenant: String,
        usage: f64,
        limit: f64,
    },
    /// The request itself is malformed (zero size, larger than the whole
    /// machine, ...).
    InvalidRequest(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownMachine(name) => write!(f, "unknown machine {name:?}"),
            ServiceError::UnknownPool(name) => write!(f, "unknown pool {name:?}"),
            ServiceError::MachineExists(name) => {
                write!(f, "machine {name:?} is already registered")
            }
            ServiceError::InvalidSpec(spec) => write!(f, "invalid specification: {spec}"),
            ServiceError::UnknownJob { machine, job_id } => {
                write!(f, "job {job_id} is not known on machine {machine:?}")
            }
            ServiceError::DuplicateJob { machine, job_id } => {
                write!(f, "job {job_id} already exists on machine {machine:?}")
            }
            ServiceError::AmbiguousJob {
                pool,
                job_id,
                machines,
            } => {
                write!(
                    f,
                    "job id {job_id} is ambiguous in pool {pool:?}: it exists on machines {}; \
                     address it with a qualified ref like {}/{}/{job_id}",
                    machines.join(", "),
                    pool,
                    machines.first().map(String::as_str).unwrap_or("<member>"),
                )
            }
            ServiceError::QuotaExceeded {
                tenant,
                usage,
                limit,
            } => {
                write!(
                    f,
                    "tenant {tenant:?} quota exceeded: {usage} of {limit} node-seconds committed"
                )
            }
            ServiceError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The walltime boundary rule, applied to journal-recovery records too:
/// live requests are validated at the protocol boundary and in
/// [`MachineEntry::allocate`], so a journal written by this daemon never
/// carries a bad estimate — but a corrupt or hand-edited record must be
/// refused rather than folded into the reservation math, where NaN
/// ordering silently corrupts shadow times.
fn validate_restored_walltime(job_id: u64, walltime: Option<f64>) -> Result<(), String> {
    match walltime {
        Some(w) if !crate::protocol::walltime_is_valid(w) => Err(format!(
            "record for job {job_id} carries walltime {w} (must be finite and positive)"
        )),
        _ => Ok(()),
    }
}

/// Outcome of an allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocOutcome {
    /// Processors were granted immediately, in rank order.
    Granted(Vec<NodeId>),
    /// The request waits in the FCFS admission queue at this 1-based
    /// position.
    Queued(usize),
    /// The request was rejected (capacity shortfall with `wait` unset).
    Rejected(String),
}

/// Status of a job on a machine, as reported by `poll`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Running on these processors (granted immediately or from the
    /// queue).
    Running(Vec<NodeId>),
    /// Waiting in the admission queue at this 1-based position.
    Queued(usize),
    /// Not present on the machine.
    Unknown,
}

/// A point-in-time occupancy summary of one machine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineSnapshot {
    /// Machine name.
    pub machine: String,
    /// Dimension spec: `"WxH"` or `"WxHxD"`.
    pub dims: String,
    /// Allocator description.
    pub allocator: String,
    /// Total processors.
    pub nodes: usize,
    /// Free processors.
    pub free: usize,
    /// Busy processors.
    pub busy: usize,
    /// Fraction of processors busy.
    pub utilization: f64,
    /// Jobs currently holding processors.
    pub live_jobs: usize,
    /// Requests waiting in the admission queue.
    pub queue_len: usize,
    /// The active scheduling policy of the admission queue.
    pub scheduler: String,
    /// Per-queued-request outlook, in queue order: promised start times
    /// (where the policy plans them) and the binding constraint keeping
    /// each request queued.
    pub queue: Vec<QueueOutlook>,
}

/// The scheduler's outlook for one queued request: where it stands, when
/// the policy promises to start it (conservative plans every request;
/// EASY plans the head; FCFS and first-fit promise nothing), and which
/// constraint is keeping it queued right now.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueOutlook {
    /// The queued job.
    pub job: u64,
    /// 1-based queue position.
    pub position: usize,
    /// The policy's promised start time (machine clock), when it plans
    /// one and the plan is bounded.
    pub reserved_start: Option<f64>,
    /// The binding constraint keeping the request queued, when the
    /// policy can name one.
    pub explain: Option<BlockReason>,
}

impl Serialize for QueueOutlook {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("job".into(), self.job.to_value());
        m.insert("position".into(), (self.position as u64).to_value());
        if let Some(start) = self.reserved_start.filter(|s| s.is_finite()) {
            m.insert("reserved_start".into(), start.to_value());
        }
        if let Some(reason) = &self.explain {
            m.insert("explain".into(), crate::trace::reason_to_value(reason));
        }
        serde::Value::Object(m)
    }
}

/// The allocator+state backing of one machine.
enum Backing {
    /// A 2-D mesh served by any of the paper's allocators.
    TwoD {
        mesh: Mesh2D,
        machine: MachineState,
        allocator: Box<dyn Allocator>,
        kind: AllocatorKind,
        /// Probe curve for communication-aware placement: free windows
        /// along it are the candidate node sets scored by predicted
        /// contention (independent of the configured allocator, so every
        /// 2-D machine — MBS, paging, genetic — can serve patterned
        /// jobs the same way).
        probe: CurveOrder,
    },
    /// A 3-D mesh served by one-dimensional reduction along a 3-D curve,
    /// with the free-interval index as the single source of truth.
    ThreeD {
        mesh: Mesh3D,
        curve: Curve3Order,
        index: FreeIntervalIndex,
        strategy: SelectionStrategy,
    },
}

impl Backing {
    fn total_nodes(&self) -> usize {
        match self {
            Backing::TwoD { machine, .. } => machine.num_nodes(),
            Backing::ThreeD { index, .. } => index.len(),
        }
    }

    fn num_free(&self) -> usize {
        match self {
            Backing::TwoD { machine, .. } => machine.num_free(),
            Backing::ThreeD { index, .. } => index.num_free(),
        }
    }

    fn num_busy(&self) -> usize {
        self.total_nodes() - self.num_free()
    }

    /// Attempts the raw allocation, committing the occupancy change on
    /// success. Does not touch the queue or metrics.
    ///
    /// A declared communication pattern reroutes the decision through
    /// [`Backing::scored_candidates`]: the fitting candidate node set
    /// with the **lowest predicted contention** wins, committed straight
    /// onto the occupancy state (safe behind the allocator's back — the
    /// 2-D allocators resynchronise from the machine bitmap via the
    /// `MachineState::generation` protocol). When no contiguous
    /// candidate fits (a fragmented machine), the pattern is ignored and
    /// the configured allocator decides as for an unpatterned job.
    ///
    /// For a scored (patterned) grant the winner's [`ScoreBreakdown`]
    /// and the number of candidates weighed ride along — the grant-time
    /// half of the calibration join.
    fn try_allocate(
        &mut self,
        job_id: u64,
        size: usize,
        pattern: Option<CommPattern>,
    ) -> Option<ScoredGrant> {
        if let Some(pattern) = pattern {
            if let Some((best, breakdown, considered)) =
                self.best_scored_candidate(job_id, size, pattern)
            {
                match self {
                    Backing::TwoD { machine, .. } => machine.occupy(&best),
                    Backing::ThreeD { curve, index, .. } => {
                        let ranks: Vec<usize> = best.iter().map(|&n| curve.rank_of(n)).collect();
                        let applied = index.occupy_ranks(&ranks);
                        debug_assert!(applied, "scored candidate held a busy rank");
                    }
                }
                return Some((best, Some((breakdown, considered))));
            }
        }
        match self {
            Backing::TwoD {
                machine, allocator, ..
            } => {
                let allocation = allocator.allocate(&AllocRequest::new(job_id, size), machine)?;
                machine.occupy(&allocation.nodes);
                Some((allocation.nodes, None))
            }
            Backing::ThreeD {
                curve,
                index,
                strategy,
                ..
            } => {
                if size == 0 || size > index.num_free() {
                    return None;
                }
                let ranks: Vec<usize> = match strategy {
                    SelectionStrategy::FreeList => index.free_list_ranks(size),
                    _ => match index.select(*strategy, size) {
                        Some(interval) => (interval.start..interval.start + size).collect(),
                        None => index.min_span_ranks(size),
                    },
                };
                let applied = index.occupy_ranks(&ranks);
                debug_assert!(applied, "3-D index granted a busy rank");
                Some((ranks.iter().map(|&r| curve.node_at(r)).collect(), None))
            }
        }
    }

    /// Candidate placements for a patterned job: windows of `size`
    /// consecutive free positions, one per maximal free run along the
    /// probe curve (2-D) or free-interval index (3-D), capped at
    /// [`Backing::CANDIDATE_CAP`] in curve order. Empty when no run is
    /// long enough — the caller falls back to the unpatterned path.
    fn scored_candidates(&self, size: usize) -> Vec<Vec<NodeId>> {
        if size == 0 || size > self.num_free() {
            return Vec::new();
        }
        let mut candidates = Vec::new();
        match self {
            Backing::TwoD { machine, probe, .. } => {
                let mut run: Vec<NodeId> = Vec::new();
                for rank in 0..probe.len() {
                    let node = probe.node_at(rank);
                    if machine.is_free(node) {
                        run.push(node);
                    } else {
                        if run.len() >= size {
                            candidates.push(run[..size].to_vec());
                        }
                        run.clear();
                    }
                    if candidates.len() == Self::CANDIDATE_CAP {
                        return candidates;
                    }
                }
                if run.len() >= size && candidates.len() < Self::CANDIDATE_CAP {
                    candidates.push(run[..size].to_vec());
                }
            }
            Backing::ThreeD { curve, index, .. } => {
                for interval in index.intervals().filter(|iv| iv.len >= size) {
                    candidates.push(
                        (interval.start..interval.start + size)
                            .map(|r| curve.node_at(r))
                            .collect(),
                    );
                    if candidates.len() == Self::CANDIDATE_CAP {
                        break;
                    }
                }
            }
        }
        candidates
    }

    /// At most this many candidate windows are scored per decision: the
    /// score runs a message-level simulation, so an unboundedly
    /// fragmented machine must not make one grant arbitrarily slow.
    const CANDIDATE_CAP: usize = 8;

    /// Scores a candidate against the declared pattern (lower total is
    /// better). Deterministic in `(backing mesh, nodes, pattern,
    /// job_id)` — see [`crate::score`].
    fn score_candidate(
        &self,
        nodes: &[NodeId],
        pattern: CommPattern,
        job_id: u64,
    ) -> ScoreBreakdown {
        match self {
            Backing::TwoD { mesh, .. } => {
                crate::score::predicted_contention_2d(*mesh, nodes, pattern, job_id)
            }
            Backing::ThreeD { mesh, .. } => {
                crate::score::predicted_contention_3d(*mesh, nodes, pattern, job_id)
            }
        }
    }

    /// The fitting candidate with the lowest predicted contention (ties
    /// break towards the earlier curve position), or `None` when no
    /// contiguous window fits. Returns the winner's breakdown and how
    /// many candidates were weighed (the calibration plane's grant-time
    /// inputs).
    fn best_scored_candidate(
        &self,
        job_id: u64,
        size: usize,
        pattern: CommPattern,
    ) -> Option<(Vec<NodeId>, ScoreBreakdown, usize)> {
        let candidates = self.scored_candidates(size);
        let considered = candidates.len();
        candidates
            .into_iter()
            .map(|nodes| {
                let score = self.score_candidate(&nodes, pattern, job_id);
                (nodes, score)
            })
            .min_by(|(_, a), (_, b)| a.total().total_cmp(&b.total()))
            .map(|(nodes, score)| (nodes, score, considered))
    }

    /// The lowest predicted contention this machine could offer a
    /// `pattern`-declared job of `size` right now, or `None` when no
    /// contiguous window fits (the router then treats the member as
    /// unscored). Read-only: the routing sample path.
    fn predicted_contention(&self, job_id: u64, size: usize, pattern: CommPattern) -> Option<f64> {
        self.scored_candidates(size)
            .into_iter()
            .map(|nodes| self.score_candidate(&nodes, pattern, job_id).total())
            .min_by(f64::total_cmp)
    }

    /// The realized dispersal of an allocation, in the same unit as the
    /// predicted dispersal term: one mesh diameter per connected
    /// component beyond the first.
    fn dispersal_of(&self, nodes: &[NodeId]) -> f64 {
        match self {
            Backing::TwoD { mesh, .. } => {
                let diameter = (mesh.width() + mesh.height()) as f64;
                mesh.components(nodes).saturating_sub(1) as f64 * diameter
            }
            Backing::ThreeD { mesh, .. } => {
                let diameter = (mesh.width() + mesh.height() + mesh.depth()) as f64;
                mesh.components(nodes).saturating_sub(1) as f64 * diameter
            }
        }
    }

    /// Re-occupies exactly `nodes` — the journal-recovery path, which
    /// replays committed grants instead of re-running an allocator.
    /// Validates every node is in range, free, and unrepeated before
    /// touching anything, so a corrupt record cannot half-apply. The
    /// 2-D curve allocators resynchronise their interval index from the
    /// machine bitmap automatically (the `MachineState::generation`
    /// protocol), so occupying behind their back is safe.
    fn restore_occupy(&mut self, nodes: &[NodeId]) -> Result<(), String> {
        let total = self.total_nodes();
        let mut seen = std::collections::HashSet::with_capacity(nodes.len());
        for &node in nodes {
            if node.index() >= total {
                return Err(format!("node {node} is out of range for this machine"));
            }
            if !seen.insert(node) {
                return Err(format!("node {node} repeats within one grant"));
            }
        }
        match self {
            Backing::TwoD { machine, .. } => {
                if let Some(node) = nodes.iter().find(|&&n| !machine.is_free(n)) {
                    return Err(format!("node {node} is already busy"));
                }
                machine.occupy(nodes);
            }
            Backing::ThreeD { curve, index, .. } => {
                let ranks: Vec<usize> = nodes.iter().map(|&n| curve.rank_of(n)).collect();
                if let Some(at) = ranks.iter().position(|&r| !index.is_free(r)) {
                    return Err(format!("node {} is already busy", nodes[at]));
                }
                if !index.occupy_ranks(&ranks) {
                    return Err("interval index refused a validated grant".to_string());
                }
            }
        }
        Ok(())
    }

    /// Returns the nodes of `job_id` to the free pool.
    fn release(&mut self, nodes: &[NodeId], job_id: u64) {
        match self {
            Backing::TwoD {
                machine, allocator, ..
            } => {
                machine.release(nodes);
                allocator.release(&Allocation::new(job_id, nodes.to_vec()), machine);
            }
            Backing::ThreeD { curve, index, .. } => {
                let ranks: Vec<usize> = nodes.iter().map(|&node| curve.rank_of(node)).collect();
                let applied = index.release_ranks(&ranks);
                debug_assert!(applied, "released a free rank");
            }
        }
    }
}

/// The machine's clock: wall time by default, virtual (caller-advanced)
/// time for deterministic replay. EASY backfilling compares predicted
/// completions against "now", so every entry carries an explicit time
/// base instead of sampling `Instant::now()` ad hoc.
#[derive(Debug, Clone, Copy)]
enum Clock {
    /// `base` seconds plus wall time elapsed since `origin`. A fresh
    /// machine starts at `base = 0`; journal recovery rebases `base` to
    /// the latest recovered stamp, so a restarted daemon's clock
    /// continues *after* every restored start/enqueue time instead of
    /// restarting at zero (which would skew EASY's shadow-time
    /// predictions and produce negative queue waits).
    Wall { origin: Instant, base: f64 },
    /// A caller-set logical time (see [`MachineEntry::set_time`]).
    Virtual(f64),
}

/// Metadata of one running job, in *grant order* with
/// `swap_remove`-on-release — deliberately the same evolution the offline
/// engine's running vector undergoes, so EASY's (stable) completion sort
/// breaks ties identically online and offline.
#[derive(Debug, Clone)]
struct RunningMeta {
    job_id: u64,
    size: usize,
    start: f64,
    walltime: Option<f64>,
    /// The communication pattern the job declared, if any (journaled so
    /// a recovered daemon keeps it).
    pattern: Option<CommPattern>,
    /// Tenant the job is attributed to (`None` = the default tenant;
    /// journaled so a recovered daemon settles the right ledger).
    tenant: Option<String>,
}

impl RunningMeta {
    /// Predicted completion: start + walltime, or infinity when the
    /// client gave no estimate (EASY then never counts on this release).
    fn completion(&self) -> f64 {
        match self.walltime {
            Some(w) => self.start + w,
            None => f64::INFINITY,
        }
    }
}

/// One registered machine: backing state, live allocations, admission
/// queue and counters. All access happens under the owning shard's lock.
pub struct MachineEntry {
    name: String,
    backing: Backing,
    allocations: HashMap<u64, Vec<NodeId>>,
    queue: AdmissionQueue,
    running: Vec<RunningMeta>,
    clock: Clock,
    /// Modification generation: bumped whenever occupancy or the queue
    /// may have changed (allocate, release, policy switch). The cluster
    /// router's sample-then-commit protocol re-checks it before
    /// committing against a sample — the entry-level analogue of
    /// `commalloc_alloc::MachineState::generation` from PR 1.
    generation: u64,
    /// Whether mutations compose [`JournalRecord`]s into the outbox.
    /// False (zero overhead) unless the owning service runs a durable
    /// journal sink.
    journaled: bool,
    /// Records composed by mutations since the last flush. The service
    /// drains this **while still holding the shard lock**, so for any
    /// one machine journal order equals mutation order — the ordering
    /// the recovery fold depends on.
    outbox: Vec<JournalRecord>,
    /// Sequence number of this machine's last appended journal record —
    /// its snapshot watermark (see `crate::journal`'s module docs).
    journal_seq: u64,
    /// Grant-time calibration records of live pattern-scored jobs,
    /// keyed by job id and joined with the realized outcome at release.
    /// Bounded by [`PLACEMENT_CAP`]; only populated while the owning
    /// registry's calibration store is enabled.
    placements: HashMap<u64, PlacementRecord>,
    /// The registry-wide calibration store (shared by every entry; the
    /// disabled path costs one relaxed load per grant/release).
    calibration: Arc<CalibrationStore>,
    /// The registry-wide tenant ledger (shared by every entry), when
    /// the owning service runs one: quota settlement at release and
    /// the fair-share drain key both read it. `None` keeps the whole
    /// tenant plane at zero cost.
    tenants: Option<Arc<TenantTable>>,
    /// Whether the weighted fair-share admission layer re-orders this
    /// machine's queue before each drain. Orthogonal to the scheduler
    /// policy (which still decides *eligibility*); journaled.
    fair_share: bool,
    /// Operation counters (public so the service layer can read them out).
    pub metrics: MachineMetrics,
}

impl MachineEntry {
    fn new(name: &str, backing: Backing, scheduler: SchedulerKind) -> Self {
        MachineEntry {
            name: name.to_string(),
            backing,
            allocations: HashMap::new(),
            queue: AdmissionQueue::new(scheduler),
            running: Vec::new(),
            clock: Clock::Wall {
                origin: Instant::now(),
                base: 0.0,
            },
            generation: 0,
            journaled: false,
            outbox: Vec::new(),
            journal_seq: 0,
            placements: HashMap::new(),
            calibration: Arc::new(CalibrationStore::new()),
            tenants: None,
            fair_share: false,
            metrics: MachineMetrics::default(),
        }
    }

    /// Points this entry at the registry-wide calibration store (set at
    /// registration, before any request can reach the machine).
    fn attach_calibration(&mut self, store: Arc<CalibrationStore>) {
        self.calibration = store;
    }

    /// Points this entry at the registry-wide tenant ledger (set at
    /// registration, before any request can reach the machine).
    fn attach_tenants(&mut self, table: Arc<TenantTable>) {
        self.tenants = Some(table);
    }

    /// Whether the fair-share admission layer is enabled here.
    pub fn fair_share(&self) -> bool {
        self.fair_share
    }

    /// Toggles the fair-share admission layer and re-drains the queue
    /// (disabling it may admit a request the re-ordering was holding
    /// behind a heavier tenant, and vice versa). Returns the newly
    /// granted jobs in grant order.
    pub fn set_fair_share(&mut self, enabled: bool) -> Vec<(u64, Vec<NodeId>)> {
        self.set_fair_share_traced(enabled, &RequestCtx::inert())
    }

    /// [`MachineEntry::set_fair_share`] with a tracing context (the
    /// wire path; in-process callers use the untraced wrapper).
    pub fn set_fair_share_traced(
        &mut self,
        enabled: bool,
        ctx: &RequestCtx<'_>,
    ) -> Vec<(u64, Vec<NodeId>)> {
        self.generation += 1;
        self.fair_share = enabled;
        if self.journaled {
            self.outbox.push(JournalRecord::SetFairShare {
                machine: self.name.clone(),
                enabled,
            });
        }
        self.drain_queue(None, ctx)
    }

    /// Recovery: re-applies a journaled fair-share toggle without
    /// draining (the grants the live toggle admitted replay as their
    /// own records).
    pub fn restore_fair_share(&mut self, enabled: bool) {
        self.fair_share = enabled;
        self.generation += 1;
    }

    pub(crate) fn new_2d(
        name: &str,
        mesh: Mesh2D,
        kind: AllocatorKind,
        scheduler: SchedulerKind,
    ) -> Self {
        MachineEntry::new(
            name,
            Backing::TwoD {
                mesh,
                machine: MachineState::new(mesh),
                allocator: kind.build(mesh),
                kind,
                probe: CurveOrder::build(CurveKind::Hilbert, mesh),
            },
            scheduler,
        )
    }

    pub(crate) fn new_3d(
        name: &str,
        mesh: Mesh3D,
        curve: Curve3Kind,
        strategy: SelectionStrategy,
        scheduler: SchedulerKind,
    ) -> Self {
        let curve = Curve3Order::build(curve, mesh);
        let index = FreeIntervalIndex::all_free(curve.len());
        MachineEntry::new(
            name,
            Backing::ThreeD {
                mesh,
                curve,
                index,
                strategy,
            },
            scheduler,
        )
    }

    /// The machine-clock reading, in seconds.
    pub fn now(&self) -> f64 {
        match self.clock {
            Clock::Wall { origin, base } => base + origin.elapsed().as_secs_f64(),
            Clock::Virtual(t) => t,
        }
    }

    /// Switches the machine to virtual time and sets it to `t` (replay
    /// and test harnesses; a live daemon stays on wall time). Once
    /// virtual, time never moves backwards — earlier stamps are clamped.
    pub fn set_time(&mut self, t: f64) {
        let t = match self.clock {
            Clock::Virtual(current) => t.max(current),
            Clock::Wall { .. } => t,
        };
        self.clock = Clock::Virtual(t);
    }

    /// The active scheduling policy.
    pub fn scheduler(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// The modification generation (see the field docs): routing samples
    /// taken at generation `g` are stale once `generation() != g`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Turns journal-record composition on: subsequent mutations push
    /// their records into the outbox for the service to flush.
    pub fn enable_journaling(&mut self) {
        self.journaled = true;
    }

    /// Drains the records composed since the last flush (the service
    /// appends them to its sink while still holding the shard lock).
    pub fn take_outbox(&mut self) -> Vec<JournalRecord> {
        std::mem::take(&mut self.outbox)
    }

    /// Notes the sequence number the sink assigned to this machine's
    /// latest record — the snapshot watermark.
    pub fn note_journal_seq(&mut self, seq: u64) {
        self.journal_seq = self.journal_seq.max(seq);
    }

    /// This machine's snapshot watermark (0 when never journaled).
    pub fn journal_seq(&self) -> u64 {
        self.journal_seq
    }

    /// Photographs the machine for a journal snapshot, under the shard
    /// lock: registration config (re-registerable specs derived from the
    /// live backing, so defaults are explicit), clock, running jobs in
    /// grant order (the order EASY's tie-breaking depends on), queued
    /// requests in queue order, and the journal watermark.
    pub fn capture_image(&self) -> MachineImage {
        let (mesh, allocator, strategy) = match &self.backing {
            Backing::TwoD { mesh, kind, .. } => (
                format!("{}x{}", mesh.width(), mesh.height()),
                kind.name().to_string(),
                None,
            ),
            Backing::ThreeD {
                mesh,
                curve,
                strategy,
                ..
            } => (
                format!("{}x{}x{}", mesh.width(), mesh.height(), mesh.depth()),
                curve.kind().name().to_string(),
                Some(strategy.short_name().to_string()),
            ),
        };
        MachineImage {
            machine: self.name.clone(),
            mesh,
            allocator,
            strategy,
            scheduler: self.queue.kind().name().to_string(),
            seq: self.journal_seq,
            clock: match self.clock {
                Clock::Virtual(t) => Some(t),
                Clock::Wall { .. } => None,
            },
            fair_share: self.fair_share,
            running: self
                .running
                .iter()
                .map(|meta| RunningImage {
                    job: meta.job_id,
                    nodes: self.allocations[&meta.job_id].clone(),
                    walltime: meta.walltime,
                    start: meta.start,
                    pattern: meta.pattern,
                    tenant: meta.tenant.clone(),
                })
                .collect(),
            queue: self
                .queue
                .iter()
                .map(|p| QueuedImage {
                    job: p.job_id,
                    size: p.size,
                    walltime: p.walltime,
                    enqueued_at: p.enqueued_at,
                    pattern: p.pattern,
                    tenant: p.tenant.clone(),
                })
                .collect(),
        }
    }

    /// Recovery: re-commits a journaled grant — `job_id` holds exactly
    /// `nodes` again. Removes the job from the queue first when present
    /// (a grant-from-queue record follows its queue record in the log),
    /// and evolves the running vector with the same `push` the live
    /// drain uses, so recovered tie-breaking state matches a live run.
    pub fn restore_grant(
        &mut self,
        job_id: u64,
        nodes: Vec<NodeId>,
        walltime: Option<f64>,
        start: f64,
        pattern: Option<CommPattern>,
        tenant: Option<String>,
    ) -> Result<(), String> {
        if self.allocations.contains_key(&job_id) {
            return Err(format!("grant for job {job_id} which already runs"));
        }
        validate_restored_walltime(job_id, walltime)?;
        self.backing.restore_occupy(&nodes)?;
        self.queue.remove(job_id);
        self.ensure_clock_at_least(start);
        self.running.push(RunningMeta {
            job_id,
            size: nodes.len(),
            start,
            walltime,
            pattern,
            tenant,
        });
        self.allocations.insert(job_id, nodes);
        self.generation += 1;
        Ok(())
    }

    /// Recovery: re-enqueues a journaled admission.
    pub fn restore_queue(
        &mut self,
        job_id: u64,
        size: usize,
        walltime: Option<f64>,
        enqueued_at: f64,
        pattern: Option<CommPattern>,
        tenant: Option<String>,
    ) -> Result<(), String> {
        if self.allocations.contains_key(&job_id) || self.queue.contains(job_id) {
            return Err(format!(
                "queue record for job {job_id} which already exists"
            ));
        }
        if size == 0 || size > self.total_nodes() {
            return Err(format!("queue record for job {job_id} with size {size}"));
        }
        validate_restored_walltime(job_id, walltime)?;
        self.ensure_clock_at_least(enqueued_at);
        self.queue.enqueue(PendingRequest {
            job_id,
            size,
            walltime,
            pattern,
            enqueued_at,
            // Recovery re-creates state, not requests: there is no wire
            // request to attach trace events to, and the placing path
            // was not journaled.
            trace_request: 0,
            enqueued_micros: 0,
            placed_by: "direct",
            tenant,
            arrival_seq: 0,
        });
        self.generation += 1;
        Ok(())
    }

    /// Recovery: re-applies a journaled release. Does **not** drain the
    /// queue — the grants a live release triggered were journaled as
    /// their own records and replay right after this one.
    pub fn restore_release(&mut self, job_id: u64) -> Result<(), String> {
        let nodes = self
            .allocations
            .remove(&job_id)
            .ok_or_else(|| format!("release of job {job_id} which does not run"))?;
        self.backing.release(&nodes, job_id);
        let at = self
            .running
            .iter()
            .position(|r| r.job_id == job_id)
            .ok_or_else(|| format!("job {job_id} missing from the running order"))?;
        self.running.swap_remove(at);
        self.generation += 1;
        Ok(())
    }

    /// Recovery: re-applies a journaled queue cancellation.
    pub fn restore_cancel(&mut self, job_id: u64) -> Result<(), String> {
        self.queue
            .remove(job_id)
            .ok_or_else(|| format!("cancel of job {job_id} which is not queued"))?;
        self.generation += 1;
        Ok(())
    }

    /// Recovery: re-applies a policy switch without draining (the
    /// grants the live switch admitted replay as their own records).
    pub fn restore_scheduler(&mut self, scheduler: SchedulerKind) {
        self.queue.set_kind(scheduler);
        self.generation += 1;
    }

    /// Recovery: restores a virtual clock captured in a snapshot
    /// (wall-clock machines restart their clock at recovery and are
    /// rebased past every restored stamp by
    /// [`MachineEntry::ensure_clock_at_least`] instead).
    pub fn restore_clock(&mut self, clock: Option<f64>) {
        if let Some(t) = clock {
            self.clock = Clock::Virtual(t);
        }
    }

    /// Recovery: advances the clock to at least `t`. Restored grant and
    /// enqueue stamps come from the previous incarnation's time base; a
    /// wall clock that restarted at zero would make those stamps lie in
    /// the future — EASY would plan around predicted completions hours
    /// ahead (letting backfill delay the head job, which a live run
    /// never allows) and the first drains would record negative queue
    /// waits. Rebasing keeps recovered stamps in the past, where they
    /// belong.
    fn ensure_clock_at_least(&mut self, t: f64) {
        if self.now() < t {
            match self.clock {
                Clock::Wall { .. } => {
                    self.clock = Clock::Wall {
                        origin: Instant::now(),
                        base: t,
                    }
                }
                Clock::Virtual(_) => self.clock = Clock::Virtual(t),
            }
        }
    }

    /// The routing-relevant state of this machine, captured atomically
    /// under the shard lock (the cluster router's *sample* step).
    pub fn sample(&self) -> crate::cluster::MachineSample {
        crate::cluster::MachineSample {
            name: self.name.clone(),
            nodes: self.total_nodes(),
            free: self.num_free(),
            queue_len: self.queue.len(),
            generation: self.generation,
            contention: None,
        }
    }

    /// [`MachineEntry::sample`] scored for one specific request: when the
    /// job declares a communication pattern, `contention` carries the
    /// lowest predicted contention this machine could offer it right now
    /// (`None` when no contiguous window fits, or no pattern was
    /// declared). The comm-aware routing policy keys on this field.
    pub fn sample_for(
        &self,
        job_id: u64,
        size: usize,
        pattern: Option<CommPattern>,
    ) -> crate::cluster::MachineSample {
        let mut sample = self.sample();
        sample.contention =
            pattern.and_then(|p| self.backing.predicted_contention(job_id, size, p));
        sample
    }

    /// Switches the scheduling policy at runtime and re-drains the queue
    /// (a switch to a backfilling policy may immediately admit requests
    /// FCFS was blocking). Returns the newly granted jobs in grant order.
    pub fn set_scheduler(&mut self, scheduler: SchedulerKind) -> Vec<(u64, Vec<NodeId>)> {
        self.set_scheduler_traced(scheduler, &RequestCtx::inert())
    }

    /// [`MachineEntry::set_scheduler`] with a tracing context (the wire
    /// path; in-process callers use the untraced wrapper).
    pub fn set_scheduler_traced(
        &mut self,
        scheduler: SchedulerKind,
        ctx: &RequestCtx<'_>,
    ) -> Vec<(u64, Vec<NodeId>)> {
        self.generation += 1;
        self.queue.set_kind(scheduler);
        // Record composition is gated on `journaled` at every call site
        // so the default (unjournaled) service pays no clones for it.
        if self.journaled {
            self.outbox.push(JournalRecord::SetScheduler {
                machine: self.name.clone(),
                scheduler: scheduler.name().to_string(),
            });
        }
        self.drain_queue(None, ctx)
    }

    /// Total processors.
    pub fn total_nodes(&self) -> usize {
        self.backing.total_nodes()
    }

    /// Currently free processors.
    pub fn num_free(&self) -> usize {
        self.backing.num_free()
    }

    /// Currently busy processors.
    pub fn num_busy(&self) -> usize {
        self.backing.num_busy()
    }

    /// Serves an allocation request: immediate grant, queue (when `wait`),
    /// or rejection. The request is logically appended to the admission
    /// queue and the queue is drained under the active policy — under
    /// FCFS a non-empty queue therefore still blocks every newcomer, while
    /// the backfilling policies may start the newcomer at once.
    /// `walltime` is the client's runtime estimate in seconds (EASY's
    /// shadow-time input); it must be finite and positive when present.
    pub fn allocate(
        &mut self,
        job_id: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
    ) -> Result<AllocOutcome, ServiceError> {
        self.allocate_traced(job_id, size, wait, walltime, None, &RequestCtx::inert())
    }

    /// [`MachineEntry::allocate`] with a tracing context. The enqueued
    /// request remembers the context's request ID, so a later
    /// grant-from-queue attaches its events to the request that enqueued
    /// the job; a queued or rejected outcome emits a `Deny` event
    /// carrying the scheduler's explanation of what blocked it.
    pub fn allocate_traced(
        &mut self,
        job_id: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        ctx: &RequestCtx<'_>,
    ) -> Result<AllocOutcome, ServiceError> {
        self.allocate_placed(job_id, size, wait, walltime, pattern, "direct", None, ctx)
    }

    /// [`MachineEntry::allocate_traced`] with the placement provenance
    /// label the calibration plane files under (the routing-policy name
    /// for pool-routed requests, `"direct"` otherwise) and the tenant
    /// the job is attributed to (`None` = the default tenant). Quota
    /// admission happens at the service layer *before* this call; here
    /// the tenant only rides the request into the queue, the journal
    /// and the running metadata.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn allocate_placed(
        &mut self,
        job_id: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        placed_by: &'static str,
        tenant: Option<String>,
        ctx: &RequestCtx<'_>,
    ) -> Result<AllocOutcome, ServiceError> {
        if self.allocations.contains_key(&job_id) || self.queue.contains(job_id) {
            return Err(ServiceError::DuplicateJob {
                machine: self.name.clone(),
                job_id,
            });
        }
        if size == 0 {
            return Err(ServiceError::InvalidRequest(
                "cannot allocate zero processors".to_string(),
            ));
        }
        if size > self.total_nodes() {
            return Err(ServiceError::InvalidRequest(format!(
                "request for {size} processors exceeds machine size {}",
                self.total_nodes()
            )));
        }
        if let Some(w) = walltime {
            if !crate::protocol::walltime_is_valid(w) {
                return Err(ServiceError::InvalidRequest(format!(
                    "walltime estimate must be finite and positive, got {w}"
                )));
            }
        }
        self.generation += 1;
        let must_wait = !self.queue.is_empty();
        self.queue.enqueue(PendingRequest {
            job_id,
            size,
            walltime,
            pattern,
            enqueued_at: self.now(),
            trace_request: ctx.request(),
            enqueued_micros: ctx.now_micros(),
            placed_by,
            tenant: tenant.clone(),
            arrival_seq: 0,
        });
        let granted = self.drain_queue(Some(job_id), ctx);
        // An arrival frees nothing, so under the current policies the
        // drain can only ever admit the arriving job itself (eligibility
        // of older requests is monotone in free capacity). A policy for
        // which this stops holding must grow a way to notify the other
        // winners — their grants would otherwise be committed silently.
        debug_assert!(
            granted.iter().all(|(id, _)| *id == job_id),
            "alloc drain granted a non-arriving job"
        );
        if let Some((_, nodes)) = granted.into_iter().find(|(id, _)| *id == job_id) {
            return Ok(AllocOutcome::Granted(nodes));
        }
        if !self.queue.contains(job_id) {
            // The drain dropped the request: the machine was empty and the
            // allocator still refused (contiguous strategies with no
            // suitable rectangle), so waiting could never help.
            return Ok(AllocOutcome::Rejected(format!(
                "{} processors requested, but the allocator cannot place the job \
                 even on an empty machine",
                size
            )));
        }
        // Not granted: record *why* on the trace — the binding
        // constraint the scheduler names — computed only when tracing
        // is live (the outlook walks the queue).
        if ctx.active() {
            let explain = if self.queue.len() == 1 {
                // The arriving job is the whole queue, and every policy
                // explains a blocked head the same way — too few free
                // processors (a fitting-but-refused head is allocator
                // fragmentation: no reason to name). Skip the full
                // outlook, which snapshots every running job.
                let free = self.backing.num_free();
                (size > free).then_some(BlockReason::InsufficientFree { free, needed: size })
            } else {
                self.queue_outlook(job_id).and_then(|o| o.explain)
            };
            ctx.deny(job_id, explain.as_ref(), ctx.now_micros());
        }
        if wait {
            self.metrics.queued += 1;
            // The request stays queued: that *is* the durable effect (the
            // drain's own grants and drops were logged as they happened).
            if self.journaled {
                let enqueued_at = self
                    .queue
                    .iter()
                    .find(|p| p.job_id == job_id)
                    .map(|p| p.enqueued_at)
                    .expect("job is queued");
                self.outbox.push(JournalRecord::Queue {
                    machine: self.name.clone(),
                    job: job_id,
                    size,
                    walltime,
                    enqueued_at,
                    pattern,
                    tenant: tenant.clone(),
                });
            }
            if let Some(table) = &self.tenants {
                table.note_enqueued(tenant.as_deref());
            }
            Ok(AllocOutcome::Queued(
                self.queue.position(job_id).expect("job is queued"),
            ))
        } else {
            self.queue.remove(job_id);
            self.metrics.rejected += 1;
            Ok(AllocOutcome::Rejected(format!(
                "{} processors requested, {} free{}",
                size,
                self.num_free(),
                if must_wait { ", queue ahead" } else { "" }
            )))
        }
    }

    /// Releases `job_id` (or cancels it if still queued), then drains the
    /// admission queue under the active policy. Returns the jobs granted
    /// from the queue as `(job_id, nodes)` pairs, in grant order.
    pub fn release(&mut self, job_id: u64) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        self.release_traced(job_id, &RequestCtx::inert())
    }

    /// [`MachineEntry::release`] with a tracing context (the wire path;
    /// in-process callers use the untraced wrapper).
    pub fn release_traced(
        &mut self,
        job_id: u64,
        ctx: &RequestCtx<'_>,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        self.generation += 1;
        if let Some(nodes) = self.allocations.remove(&job_id) {
            self.backing.release(&nodes, job_id);
            if let Some(at) = self.running.iter().position(|r| r.job_id == job_id) {
                // swap_remove, not remove: keeps the running-order
                // evolution identical to the offline engine's.
                let meta = self.running.swap_remove(at);
                // Settle the tenant ledger: return the committed
                // node-seconds, accrue the realized hold.
                if let Some(table) = &self.tenants {
                    let held = (self.now() - meta.start).max(0.0);
                    table.settle(
                        meta.tenant.as_deref(),
                        job_cost(meta.size, meta.walltime),
                        meta.size as f64 * held,
                    );
                }
            }
            // Join the grant-time calibration record with the realized
            // outcome. The record is removed unconditionally (a toggle
            // mid-flight must not leak it); it is folded into the store
            // only while calibration is on.
            if let Some(record) = self.placements.remove(&job_id) {
                if self.calibration.enabled() {
                    let held = (self.now() - record.granted_at).max(0.0);
                    self.calibration.record(&CalibrationSample {
                        record,
                        held,
                        realized_dispersal: self.backing.dispersal_of(&nodes),
                    });
                }
            }
            self.metrics.released += 1;
            if self.journaled {
                self.outbox.push(JournalRecord::Release {
                    machine: self.name.clone(),
                    job: job_id,
                });
            }
        } else if let Some(pending) = self.queue.remove(job_id) {
            // Cancelling a queued request frees no processors, but may
            // unblock the queue if the cancelled job was the head.
            // The tenant's commitment is returned with zero realized
            // consumption — the job never held a processor.
            if let Some(table) = &self.tenants {
                table.settle(
                    pending.tenant.as_deref(),
                    job_cost(pending.size, pending.walltime),
                    0.0,
                );
                table.note_dequeued(pending.tenant.as_deref());
            }
            if self.journaled {
                self.outbox.push(JournalRecord::Cancel {
                    machine: self.name.clone(),
                    job: job_id,
                });
            }
        } else {
            return Err(ServiceError::UnknownJob {
                machine: self.name.clone(),
                job_id,
            });
        }
        Ok(self.drain_queue(None, ctx))
    }

    /// Drains the admission queue to a fixpoint under the active policy:
    /// repeatedly asks the policy which request may start and commits the
    /// grant. Mirrors the offline engine's start loop exactly, including
    /// its two allocator-refusal outcomes: on a *fragmented* machine the
    /// refused request is put back and the drain stops (a future release
    /// may open a suitable region); on an *empty* machine the request is
    /// dropped and counted as rejected — no release can ever help it.
    ///
    /// `arriving` marks the request that entered the queue in this same
    /// call (its grant is recorded as immediate rather than from-queue,
    /// and contributes no wait time).
    ///
    /// Trace events for a grant-from-queue are attached to the request
    /// that *enqueued* the job (via `PendingRequest::trace_request`),
    /// not the request whose release or policy switch triggered this
    /// drain — `ctx` only lends its recorder binding.
    fn drain_queue(
        &mut self,
        arriving: Option<u64>,
        ctx: &RequestCtx<'_>,
    ) -> Vec<(u64, Vec<NodeId>)> {
        let now = self.now();
        let kind = self.queue.kind();
        // The fair-share admission layer re-orders the queue *before*
        // the scheduler policy looks at it: a stable sort on the
        // tenants' fair-share keys with arrival order as tie-breaker,
        // so single-tenant (and untenanted) queues come out unchanged
        // and the policy below sees an ordinary ordered queue.
        if self.fair_share {
            if let Some(table) = self.tenants.clone() {
                self.queue.resequence(|tenant| table.fair_key(tenant));
            }
        }
        let mut granted = Vec::new();
        // Both policy inputs are built once and maintained incrementally
        // across iterations (each grant appends one running snapshot and
        // removes one queued job), so each grant costs O(1) allocations.
        // Policies that ignore an input skip its build entirely; the
        // capability methods match exhaustively in core, so a new
        // `SchedulerKind` variant cannot silently receive empty inputs.
        let mut snapshots: Vec<RunningSnapshot> = if kind.uses_running_snapshots() {
            self.running
                .iter()
                .map(|r| RunningSnapshot {
                    completion: r.completion(),
                    size: r.size,
                })
                .collect()
        } else {
            Vec::new()
        };
        // Head-only policies get a zero-allocation one-element view per
        // iteration; queue-scanning policies get the incrementally
        // maintained full mirror.
        let mut queued: Vec<commalloc::scheduler::QueuedJob> = if kind.scans_whole_queue() {
            self.queue.iter().map(PendingRequest::as_queued).collect()
        } else {
            Vec::new()
        };
        loop {
            let free = self.backing.num_free();
            let head_view;
            let policy_view: &[commalloc::scheduler::QueuedJob] = if kind.scans_whole_queue() {
                &queued
            } else {
                head_view = self.queue.head().map(PendingRequest::as_queued);
                head_view.as_slice()
            };
            let Some(at) = kind.select_with_context(policy_view, free, &snapshots, now) else {
                break;
            };
            let pending = self.queue.take_at(at);
            if kind.scans_whole_queue() {
                queued.remove(at);
            }
            // Events for this job attach to the request that enqueued it
            // (an inert or unremembered binding keeps the caller's).
            let pctx = ctx.for_request(pending.trace_request);
            let probe_start = pctx.now_micros();
            match self
                .backing
                .try_allocate(pending.job_id, pending.size, pending.pattern)
            {
                Some((nodes, scored)) => {
                    let from_queue = arriving != Some(pending.job_id);
                    let granted_at = pctx.now_micros();
                    pctx.span(Stage::Allocator, pending.job_id, 0, probe_start, granted_at);
                    // File the grant-time half of the calibration join
                    // for pattern-scored placements (one relaxed load
                    // while calibration is off; bounded side-table).
                    if let (Some((predicted, candidates)), Some(pattern)) =
                        (scored, pending.pattern)
                    {
                        if self.calibration.enabled() && self.placements.len() < PLACEMENT_CAP {
                            self.placements.insert(
                                pending.job_id,
                                PlacementRecord {
                                    pattern: pattern.name(),
                                    policy: pending.placed_by,
                                    predicted,
                                    candidates,
                                    queue_wait: if from_queue {
                                        (now - pending.enqueued_at).max(0.0)
                                    } else {
                                        0.0
                                    },
                                    granted_at: now,
                                    walltime: pending.walltime,
                                },
                            );
                        }
                    }
                    if from_queue && pending.enqueued_micros != 0 {
                        pctx.span(
                            Stage::Queue,
                            pending.job_id,
                            0,
                            pending.enqueued_micros,
                            granted_at,
                        );
                    }
                    pctx.instant(
                        Stage::Grant,
                        pending.job_id,
                        u32::from(from_queue),
                        granted_at,
                    );
                    self.metrics
                        .record_grant(from_queue, self.backing.num_busy());
                    if from_queue {
                        self.metrics
                            .wait
                            .record(now - pending.enqueued_at, pending.walltime);
                        if let Some(table) = &self.tenants {
                            table.note_dequeued(pending.tenant.as_deref());
                            table.note_wait(pending.tenant.as_deref(), now - pending.enqueued_at);
                        }
                    }
                    if self.journaled {
                        self.outbox.push(JournalRecord::Grant {
                            machine: self.name.clone(),
                            job: pending.job_id,
                            nodes: nodes.clone(),
                            walltime: pending.walltime,
                            start: now,
                            pattern: pending.pattern,
                            tenant: pending.tenant.clone(),
                        });
                    }
                    self.allocations.insert(pending.job_id, nodes.clone());
                    let meta = RunningMeta {
                        job_id: pending.job_id,
                        size: pending.size,
                        start: now,
                        walltime: pending.walltime,
                        pattern: pending.pattern,
                        tenant: pending.tenant.clone(),
                    };
                    if kind.uses_running_snapshots() {
                        snapshots.push(RunningSnapshot {
                            completion: meta.completion(),
                            size: meta.size,
                        });
                    }
                    self.running.push(meta);
                    granted.push((pending.job_id, nodes));
                }
                None if self.backing.num_busy() == 0 => {
                    // Even an empty machine cannot host this request with
                    // this allocator: drop it (engine parity) instead of
                    // deadlocking the queue behind it forever. A dropped
                    // request that was durably queued earlier journals as
                    // a cancel; the arriving request was never journaled
                    // as queued, so there is nothing to cancel.
                    let refused_at = pctx.now_micros();
                    pctx.span(Stage::Allocator, pending.job_id, 0, probe_start, refused_at);
                    pctx.deny(pending.job_id, None, refused_at);
                    self.metrics.rejected += 1;
                    if arriving != Some(pending.job_id) {
                        // A dropped *queued* request settles its tenant
                        // commitment here; the arriving request's
                        // admission is unwound by the service when it
                        // sees the Rejected outcome.
                        if let Some(table) = &self.tenants {
                            table.settle(
                                pending.tenant.as_deref(),
                                job_cost(pending.size, pending.walltime),
                                0.0,
                            );
                            table.note_dequeued(pending.tenant.as_deref());
                        }
                        if self.journaled {
                            self.outbox.push(JournalRecord::Cancel {
                                machine: self.name.clone(),
                                job: pending.job_id,
                            });
                        }
                    }
                    continue;
                }
                None => {
                    // Fragmented refusal: the probe ran (record it), the
                    // request stays queued for a future release.
                    pctx.span(
                        Stage::Allocator,
                        pending.job_id,
                        0,
                        probe_start,
                        pctx.now_micros(),
                    );
                    self.queue.put_back(at, pending);
                    break;
                }
            }
        }
        granted
    }

    /// The scheduler's outlook for every queued request, in queue order.
    /// Built from the same policy inputs the drain loop consumes, so the
    /// promised starts are exactly what the next drain would plan:
    /// conservative plans a reservation for every request, EASY for the
    /// blocked head only, FCFS and first-fit promise nothing. The
    /// `explain` of each entry names the constraint keeping it queued.
    pub fn queue_outlooks(&self) -> Vec<QueueOutlook> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let now = self.now();
        let free = self.backing.num_free();
        let kind = self.queue.kind();
        let queued: Vec<QueuedJob> = self.queue.iter().map(PendingRequest::as_queued).collect();
        let snapshots: Vec<RunningSnapshot> = self
            .running
            .iter()
            .map(|r| RunningSnapshot {
                completion: r.completion(),
                size: r.size,
            })
            .collect();
        let reserved: Vec<Option<f64>> = match kind {
            SchedulerKind::Conservative => {
                SchedulerKind::reservations(&queued, free, &snapshots, now)
                    .into_iter()
                    .map(|s| s.is_finite().then_some(s))
                    .collect()
            }
            SchedulerKind::EasyBackfill => {
                let mut starts = vec![None; queued.len()];
                if queued[0].size > free {
                    starts[0] = SchedulerKind::reservation(queued[0].size, free, &snapshots)
                        .map(|(shadow, _)| shadow)
                        .filter(|s| s.is_finite());
                }
                starts
            }
            SchedulerKind::Fcfs | SchedulerKind::FirstFitBackfill => vec![None; queued.len()],
        };
        queued
            .iter()
            .enumerate()
            .map(|(i, job)| QueueOutlook {
                job: job.job_id,
                position: i + 1,
                reserved_start: reserved[i],
                explain: kind.explain(&queued, i, free, &snapshots, now),
            })
            .collect()
    }

    /// The outlook for one queued job, if it waits. Outlooks are
    /// relative to the jobs ahead, so the whole queue is planned and
    /// then filtered.
    pub fn queue_outlook(&self, job_id: u64) -> Option<QueueOutlook> {
        self.queue.position(job_id)?;
        self.queue_outlooks().into_iter().find(|o| o.job == job_id)
    }

    /// Where `job_id` currently stands.
    pub fn poll(&self, job_id: u64) -> JobStatus {
        if let Some(nodes) = self.allocations.get(&job_id) {
            JobStatus::Running(nodes.clone())
        } else if let Some(position) = self.queue.position(job_id) {
            JobStatus::Queued(position)
        } else {
            JobStatus::Unknown
        }
    }

    /// Point-in-time occupancy summary.
    pub fn snapshot(&self) -> MachineSnapshot {
        let (dims, allocator) = match &self.backing {
            Backing::TwoD { mesh, kind, .. } => (
                format!("{}x{}", mesh.width(), mesh.height()),
                kind.name().to_string(),
            ),
            Backing::ThreeD {
                mesh,
                curve,
                strategy,
                ..
            } => (
                format!("{}x{}x{}", mesh.width(), mesh.height(), mesh.depth()),
                format!("{} w/{}", curve.kind().name(), strategy.short_name()),
            ),
        };
        MachineSnapshot {
            machine: self.name.clone(),
            dims,
            allocator,
            nodes: self.total_nodes(),
            free: self.num_free(),
            busy: self.num_busy(),
            utilization: self.num_busy() as f64 / self.total_nodes() as f64,
            live_jobs: self.allocations.len(),
            queue_len: self.queue.len(),
            scheduler: self.queue.kind().name().to_string(),
            queue: self.queue_outlooks(),
        }
    }

    /// Exhaustive invariant check (test/debug helper): every node is held
    /// by at most one job, the backing's free count agrees with the
    /// allocation table, the running-order metadata mirrors the
    /// allocation table, and no job is simultaneously queued and running
    /// (queue-position consistency).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.running.len() != self.allocations.len() {
            return Err(format!(
                "{} running-order entries but {} allocations",
                self.running.len(),
                self.allocations.len()
            ));
        }
        for meta in &self.running {
            let Some(nodes) = self.allocations.get(&meta.job_id) else {
                return Err(format!(
                    "running-order entry for job {} has no allocation",
                    meta.job_id
                ));
            };
            if nodes.len() != meta.size {
                return Err(format!(
                    "job {} holds {} nodes but its running-order entry says {}",
                    meta.job_id,
                    nodes.len(),
                    meta.size
                ));
            }
            if self.queue.contains(meta.job_id) {
                return Err(format!("job {} is both running and queued", meta.job_id));
            }
        }
        for (at, pending) in self.queue.iter().enumerate() {
            match self.queue.position(pending.job_id) {
                Some(position) if position == at + 1 => {}
                other => {
                    return Err(format!(
                        "job {} sits at queue slot {} but position() reports {other:?}",
                        pending.job_id,
                        at + 1
                    ))
                }
            }
            if self.allocations.contains_key(&pending.job_id) {
                return Err(format!(
                    "job {} is both queued and allocated",
                    pending.job_id
                ));
            }
        }
        let mut held = vec![false; self.total_nodes()];
        for (job, nodes) in &self.allocations {
            for node in nodes {
                let i = node.index();
                if i >= held.len() {
                    return Err(format!("job {job} holds out-of-range node {node}"));
                }
                if held[i] {
                    return Err(format!("node {node} held by two jobs"));
                }
                held[i] = true;
            }
        }
        let held_count = held.iter().filter(|&&h| h).count();
        if held_count != self.num_busy() {
            return Err(format!(
                "allocation table holds {held_count} nodes but machine reports {} busy",
                self.num_busy()
            ));
        }
        match &self.backing {
            Backing::TwoD { machine, .. } => {
                for (i, &h) in held.iter().enumerate() {
                    if machine.is_free(NodeId(i as u32)) == h {
                        return Err(format!("node {i} free/held state mismatch"));
                    }
                }
            }
            Backing::ThreeD { curve, index, .. } => {
                for (i, &h) in held.iter().enumerate() {
                    if index.is_free(curve.rank_of(NodeId(i as u32))) == h {
                        return Err(format!("node {i} free/held state mismatch"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Named machines behind sharded locks.
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, MachineEntry>>>,
    /// The placement calibration store every entry feeds (see
    /// [`crate::calibration`]); disabled by default.
    calibration: Arc<CalibrationStore>,
    /// The tenant ledger every entry settles against (see
    /// [`crate::tenant`]); empty until a tenant is configured.
    tenants: Arc<TenantTable>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_shards(8)
    }
}

impl Registry {
    /// A registry with `shards` lock shards (rounded up to at least one).
    pub fn with_shards(shards: usize) -> Self {
        Registry {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            calibration: Arc::new(CalibrationStore::new()),
            tenants: Arc::new(TenantTable::new()),
        }
    }

    /// The registry-wide placement calibration store.
    pub fn calibration(&self) -> &Arc<CalibrationStore> {
        &self.calibration
    }

    /// The registry-wide tenant ledger.
    pub fn tenants(&self) -> &Arc<TenantTable> {
        &self.tenants
    }

    fn shard_of(&self, name: &str) -> &Mutex<HashMap<String, MachineEntry>> {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Inserts a fully built entry, running `after` on it **under the
    /// shard lock** before any other request can reach the machine — the
    /// hook the service uses to append the registration's journal record
    /// in mutation order (no grant of the new machine can be journaled
    /// ahead of its registration).
    pub(crate) fn register_entry(
        &self,
        name: &str,
        entry: MachineEntry,
        after: impl FnOnce(&mut MachineEntry),
    ) -> Result<(), ServiceError> {
        let mut shard = self.shard_of(name).lock().expect("shard poisoned");
        if shard.contains_key(name) {
            return Err(ServiceError::MachineExists(name.to_string()));
        }
        let entry = shard.entry(name.to_string()).or_insert(entry);
        entry.attach_calibration(Arc::clone(&self.calibration));
        entry.attach_tenants(Arc::clone(&self.tenants));
        after(entry);
        Ok(())
    }

    /// Registers a 2-D mesh machine served by `kind`, admitting under
    /// `scheduler`.
    pub fn register_2d(
        &self,
        name: &str,
        mesh: Mesh2D,
        kind: AllocatorKind,
        scheduler: SchedulerKind,
    ) -> Result<(), ServiceError> {
        self.register_entry(
            name,
            MachineEntry::new_2d(name, mesh, kind, scheduler),
            |_| {},
        )
    }

    /// Registers a 3-D mesh machine served by curve reduction along
    /// `curve` with `strategy`, admitting under `scheduler`.
    pub fn register_3d(
        &self,
        name: &str,
        mesh: Mesh3D,
        curve: Curve3Kind,
        strategy: SelectionStrategy,
        scheduler: SchedulerKind,
    ) -> Result<(), ServiceError> {
        self.register_entry(
            name,
            MachineEntry::new_3d(name, mesh, curve, strategy, scheduler),
            |_| {},
        )
    }

    /// Runs `f` with exclusive access to the named machine.
    pub fn with_entry<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut MachineEntry) -> Result<R, ServiceError>,
    ) -> Result<R, ServiceError> {
        let mut shard = self.shard_of(name).lock().expect("shard poisoned");
        let entry = shard
            .get_mut(name)
            .ok_or_else(|| ServiceError::UnknownMachine(name.to_string()))?;
        f(entry)
    }

    /// Names of all registered machines, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names
    }

    /// Number of registered machines.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// True when no machine is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_m0() -> Registry {
        let r = Registry::default();
        r.register_2d(
            "m0",
            Mesh2D::square_16x16(),
            AllocatorKind::HilbertBestFit,
            SchedulerKind::Fcfs,
        )
        .unwrap();
        r
    }

    #[test]
    fn register_rejects_duplicates_and_lists_sorted() {
        let r = registry_with_m0();
        assert_eq!(
            r.register_2d(
                "m0",
                Mesh2D::new(4, 4),
                AllocatorKind::Mc1x1,
                SchedulerKind::Fcfs
            ),
            Err(ServiceError::MachineExists("m0".to_string()))
        );
        r.register_3d(
            "cube",
            Mesh3D::new(4, 4, 4),
            Curve3Kind::Hilbert,
            SelectionStrategy::BestFit,
            SchedulerKind::Fcfs,
        )
        .unwrap();
        assert_eq!(r.list(), vec!["cube".to_string(), "m0".to_string()]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn listings_are_sorted_identically_across_shard_counts() {
        // Cluster snapshots and the `list` response iterate machines in
        // name order, never in shard order — so the shard count (a pure
        // concurrency knob) must be invisible in every listing.
        let names = ["zeta", "alpha", "mid", "a-0", "a-10", "a-2"];
        let mut expected: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        expected.sort();
        for shards in [1, 2, 8, 64] {
            let r = Registry::with_shards(shards);
            for name in names {
                r.register_2d(
                    name,
                    Mesh2D::new(4, 4),
                    AllocatorKind::HilbertBestFit,
                    SchedulerKind::Fcfs,
                )
                .unwrap();
            }
            assert_eq!(
                r.list(),
                expected,
                "shard count {shards} leaked into list()"
            );
        }
    }

    #[test]
    fn allocate_release_cycle_keeps_invariants() {
        let r = registry_with_m0();
        let outcome = r
            .with_entry("m0", |m| m.allocate(1, 30, false, None))
            .unwrap();
        let AllocOutcome::Granted(nodes) = outcome else {
            panic!("expected a grant, got {outcome:?}");
        };
        assert_eq!(nodes.len(), 30);
        r.with_entry("m0", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
        assert_eq!(
            r.with_entry("m0", |m| Ok(m.poll(1))).unwrap(),
            JobStatus::Running(nodes)
        );
        let granted = r.with_entry("m0", |m| m.release(1)).unwrap();
        assert!(granted.is_empty());
        assert_eq!(r.with_entry("m0", |m| Ok(m.num_free())).unwrap(), 256);
    }

    #[test]
    fn queueing_is_fcfs_with_head_of_line_blocking() {
        let r = registry_with_m0();
        // Fill the machine almost completely.
        let AllocOutcome::Granted(_) = r
            .with_entry("m0", |m| m.allocate(1, 250, false, None))
            .unwrap()
        else {
            panic!("grant expected");
        };
        // 20 does not fit -> queued; 3 would fit but must wait behind it.
        assert_eq!(
            r.with_entry("m0", |m| m.allocate(2, 20, true, None))
                .unwrap(),
            AllocOutcome::Queued(1)
        );
        assert_eq!(
            r.with_entry("m0", |m| m.allocate(3, 3, true, None))
                .unwrap(),
            AllocOutcome::Queued(2)
        );
        // Without wait, the same situation is a rejection.
        let outcome = r
            .with_entry("m0", |m| m.allocate(4, 1, false, None))
            .unwrap();
        assert!(matches!(outcome, AllocOutcome::Rejected(_)));
        // Releasing the big job grants both queued jobs, in order.
        let granted = r.with_entry("m0", |m| m.release(1)).unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![2, 3]);
        r.with_entry("m0", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
    }

    #[test]
    fn cancelling_a_queued_head_unblocks_the_queue() {
        let r = registry_with_m0();
        r.with_entry("m0", |m| m.allocate(1, 250, false, None))
            .unwrap();
        r.with_entry("m0", |m| m.allocate(2, 100, true, None))
            .unwrap();
        r.with_entry("m0", |m| m.allocate(3, 5, true, None))
            .unwrap();
        // Cancel the blocking head; job 3 fits the 6 free processors.
        let granted = r.with_entry("m0", |m| m.release(2)).unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn duplicate_and_unknown_jobs_are_errors() {
        let r = registry_with_m0();
        r.with_entry("m0", |m| m.allocate(1, 4, false, None))
            .unwrap();
        assert_eq!(
            r.with_entry("m0", |m| m.allocate(1, 4, false, None)),
            Err(ServiceError::DuplicateJob {
                machine: "m0".to_string(),
                job_id: 1
            })
        );
        assert_eq!(
            r.with_entry("m0", |m| m.release(99)),
            Err(ServiceError::UnknownJob {
                machine: "m0".to_string(),
                job_id: 99
            })
        );
        assert!(matches!(
            r.with_entry("m0", |m| m.allocate(5, 0, false, None)),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            r.with_entry("m0", |m| m.allocate(5, 1000, false, None)),
            Err(ServiceError::InvalidRequest(_))
        ));
        for bad_walltime in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                r.with_entry("m0", |m| m.allocate(5, 1, false, Some(bad_walltime))),
                Err(ServiceError::InvalidRequest(_))
            ));
        }
        assert!(matches!(
            r.with_entry("nope", |m| m.allocate(1, 1, false, None)),
            Err(ServiceError::UnknownMachine(_))
        ));
    }

    #[test]
    fn first_fit_backfill_lets_fitting_jobs_jump_the_head() {
        let r = Registry::default();
        r.register_2d(
            "bf",
            Mesh2D::square_16x16(),
            AllocatorKind::HilbertBestFit,
            SchedulerKind::FirstFitBackfill,
        )
        .unwrap();
        r.with_entry("bf", |m| m.allocate(1, 250, false, None))
            .unwrap();
        // Job 2 blocks as the head; job 3 fits the 6 free processors and
        // starts immediately under first-fit backfill.
        assert_eq!(
            r.with_entry("bf", |m| m.allocate(2, 100, true, None))
                .unwrap(),
            AllocOutcome::Queued(1)
        );
        let outcome = r
            .with_entry("bf", |m| m.allocate(3, 5, true, None))
            .unwrap();
        assert!(
            matches!(outcome, AllocOutcome::Granted(ref nodes) if nodes.len() == 5),
            "backfill should start job 3 at once, got {outcome:?}"
        );
        r.with_entry("bf", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
    }

    #[test]
    fn easy_backfills_only_jobs_that_respect_the_reservation() {
        let r = Registry::default();
        r.register_2d(
            "easy",
            Mesh2D::square_16x16(),
            AllocatorKind::HilbertBestFit,
            SchedulerKind::EasyBackfill,
        )
        .unwrap();
        r.with_entry("easy", |m| {
            m.set_time(0.0);
            // 200 processors for 100 s: releases at t = 100.
            m.allocate(1, 200, false, Some(100.0))
        })
        .unwrap();
        // The head needs 100 (only 56 free): the shadow time is t = 100
        // (job 1's release), with 256 − 100 = 156 extra processors free
        // at that instant.
        assert_eq!(
            r.with_entry("easy", |m| m.allocate(2, 100, true, Some(50.0)))
                .unwrap(),
            AllocOutcome::Queued(1)
        );
        // A short job (done by t = 50 < 100) backfills.
        let outcome = r
            .with_entry("easy", |m| m.allocate(3, 40, true, Some(50.0)))
            .unwrap();
        assert!(
            matches!(outcome, AllocOutcome::Granted(_)),
            "short job should backfill, got {outcome:?}"
        );
        // A long job that fits both the 16 remaining free processors and
        // the 156 extras is granted even though it outlives the shadow
        // time (it can never delay the head).
        let outcome = r
            .with_entry("easy", |m| m.allocate(4, 16, true, Some(1000.0)))
            .unwrap();
        assert!(matches!(outcome, AllocOutcome::Granted(_)));
        // Nothing is free any more: the next job queues behind the head.
        assert_eq!(
            r.with_entry("easy", |m| m.allocate(5, 10, true, Some(1000.0)))
                .unwrap(),
            AllocOutcome::Queued(2)
        );
        r.with_entry("easy", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
    }

    #[test]
    fn conservative_protects_every_queued_reservation() {
        // The registry-level mirror of the core policy tests: the same
        // arrival sequence under conservative and EASY, diverging on the
        // final job — EASY protects only the head's reservation and
        // grants it; conservative also protects the mid-queue job's and
        // queues it.
        let sequence = |kind: SchedulerKind| {
            let r = Registry::default();
            r.register_2d(
                "m",
                Mesh2D::square_16x16(),
                AllocatorKind::HilbertBestFit,
                kind,
            )
            .unwrap();
            r.with_entry("m", |m| {
                m.set_time(0.0);
                // 200 processors until t = 100: 56 free.
                assert!(matches!(
                    m.allocate(1, 200, false, Some(100.0))?,
                    AllocOutcome::Granted(_)
                ));
                // Head: 100 processors, reserved at t = 100.
                assert_eq!(
                    m.allocate(2, 100, true, Some(50.0))?,
                    AllocOutcome::Queued(1)
                );
                // A short small job backfills under both policies.
                assert!(matches!(
                    m.allocate(3, 30, true, Some(40.0))?,
                    AllocOutcome::Granted(_)
                ));
                // 250 processors: reserved at t = 150 (after the head's
                // [100, 150) window) with only 6 spare during its run.
                assert_eq!(
                    m.allocate(4, 250, true, Some(100.0))?,
                    AllocOutcome::Queued(2)
                );
                // The probe: 26 processors (exactly the free count) for
                // 1000 seconds — it would hold processors job 4's
                // reservation needs at t = 150.
                m.allocate(5, 26, true, Some(1000.0))
            })
            .unwrap()
        };
        assert!(
            matches!(
                sequence(SchedulerKind::EasyBackfill),
                AllocOutcome::Granted(_)
            ),
            "EASY protects only the head and lets the long job through"
        );
        assert_eq!(
            sequence(SchedulerKind::Conservative),
            AllocOutcome::Queued(3),
            "conservative protects job 4's reservation too"
        );
    }

    #[test]
    fn conservative_cancel_mid_queue_recomputes_reservations() {
        let r = Registry::default();
        r.register_2d(
            "m",
            Mesh2D::square_16x16(),
            AllocatorKind::HilbertBestFit,
            SchedulerKind::Conservative,
        )
        .unwrap();
        r.with_entry("m", |m| {
            m.set_time(0.0);
            m.allocate(1, 200, false, Some(100.0))?;
            m.allocate(2, 100, true, Some(50.0))?;
            m.allocate(3, 30, true, Some(40.0))?;
            m.allocate(4, 250, true, Some(100.0))?;
            // Blocked only by job 4's carve (6 spare during [150, 250)).
            assert_eq!(
                m.allocate(5, 26, true, Some(1000.0))?,
                AllocOutcome::Queued(3)
            );
            Ok(())
        })
        .unwrap();
        // Cancelling the mid-queue job recomputes the table: job 5's
        // window no longer collides with any carve and it starts at once.
        let granted = r.with_entry("m", |m| m.release(4)).unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![5], "cancel must re-plan the queue");
        r.with_entry("m", |m| {
            assert_eq!(m.poll(4), JobStatus::Unknown);
            assert!(matches!(m.poll(5), JobStatus::Running(_)));
            assert!(matches!(m.poll(2), JobStatus::Queued(1)));
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
    }

    #[test]
    fn set_scheduler_redrains_the_queue() {
        let r = registry_with_m0();
        r.with_entry("m0", |m| m.allocate(1, 250, false, None))
            .unwrap();
        r.with_entry("m0", |m| m.allocate(2, 100, true, None))
            .unwrap();
        r.with_entry("m0", |m| m.allocate(3, 5, true, None))
            .unwrap();
        // FCFS blocks job 3 behind job 2; switching to backfill admits it.
        let granted = r
            .with_entry("m0", |m| {
                Ok(m.set_scheduler(SchedulerKind::FirstFitBackfill))
            })
            .unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![3]);
        assert_eq!(
            r.with_entry("m0", |m| Ok(m.scheduler())).unwrap(),
            SchedulerKind::FirstFitBackfill
        );
        assert_eq!(
            r.with_entry("m0", |m| Ok(m.snapshot())).unwrap().scheduler,
            "first-fit backfill"
        );
    }

    #[test]
    fn fair_share_reorders_tenants_without_breaking_arrival_order() {
        // Tenant "hog" commits far more node-seconds than "mouse"; with
        // fair-share on, mouse's queued jobs drain first even though hog
        // arrived earlier — while each tenant's own jobs keep arrival
        // order.
        let r = registry_with_m0();
        let tenants = Arc::clone(r.tenants());
        tenants.admit(Some("hog"), 1_000_000.0).unwrap();
        tenants.admit(Some("mouse"), 10.0).unwrap();
        let submit = |m: &mut MachineEntry, id: u64, tenant: &str| {
            m.allocate_placed(
                id,
                200,
                true,
                None,
                None,
                "direct",
                Some(tenant.to_string()),
                &RequestCtx::inert(),
            )
        };
        r.with_entry("m0", |m| {
            m.allocate(1, 250, false, None)?;
            submit(m, 2, "hog")?;
            submit(m, 3, "hog")?;
            submit(m, 4, "mouse")?;
            assert!(!m.fair_share());
            Ok(())
        })
        .unwrap();
        let granted = r
            .with_entry("m0", |m| {
                m.set_fair_share(true);
                assert!(m.fair_share());
                m.release(1)
            })
            .unwrap();
        let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![4], "mouse's job jumps the hog's earlier ones");
        r.with_entry("m0", |m| {
            assert_eq!(m.poll(2), JobStatus::Queued(1), "hog keeps arrival order");
            assert_eq!(m.poll(3), JobStatus::Queued(2));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn release_settles_the_tenant_ledger() {
        let r = registry_with_m0();
        let tenants = Arc::clone(r.tenants());
        tenants
            .admit(Some("acme"), job_cost(30, Some(100.0)))
            .unwrap();
        r.with_entry("m0", |m| {
            m.set_time(0.0);
            m.allocate_placed(
                1,
                30,
                false,
                Some(100.0),
                None,
                "direct",
                Some("acme".to_string()),
                &RequestCtx::inert(),
            )
        })
        .unwrap();
        r.with_entry("m0", |m| {
            m.set_time(40.0);
            m.release(1)
        })
        .unwrap();
        let row = tenants
            .export()
            .into_iter()
            .find(|row| row.tenant == "acme")
            .expect("acme row");
        assert_eq!(row.outstanding_node_seconds, 0.0);
        assert!(
            (row.consumed_node_seconds - 30.0 * 40.0).abs() < 1e-6,
            "30 nodes held 40 s, got {}",
            row.consumed_node_seconds
        );
    }

    #[test]
    fn virtual_time_is_monotonic_and_drives_wait_metrics() {
        let r = registry_with_m0();
        r.with_entry("m0", |m| {
            m.set_time(10.0);
            m.allocate(1, 250, false, None)
        })
        .unwrap();
        r.with_entry("m0", |m| m.allocate(2, 20, true, None))
            .unwrap();
        r.with_entry("m0", |m| {
            m.set_time(35.0);
            m.set_time(1.0); // clamped: virtual time never rewinds
            assert_eq!(m.now(), 35.0);
            Ok(())
        })
        .unwrap();
        let granted = r.with_entry("m0", |m| m.release(1)).unwrap();
        assert_eq!(granted.len(), 1);
        let (count, mean, max) = r
            .with_entry("m0", |m| {
                Ok((
                    m.metrics.wait.count,
                    m.metrics.wait.mean_seconds(),
                    m.metrics.wait.max_seconds,
                ))
            })
            .unwrap();
        assert_eq!(count, 1);
        assert!(
            (mean - 25.0).abs() < 1e-9,
            "waited 35 - 10 = 25 s, got {mean}"
        );
        assert!((max - 25.0).abs() < 1e-9);
    }

    #[test]
    fn restore_rebases_wall_clocks_past_recovered_stamps() {
        // Recovered stamps come from the previous incarnation's clock; a
        // wall clock restarting at zero would put them in the future
        // (negative waits, EASY shadow times hours ahead). restore_*
        // must drag the clock past every stamp it folds in.
        let r = registry_with_m0();
        r.with_entry("m0", |m| {
            m.restore_grant(1, vec![NodeId(0)], Some(10.0), 3600.0, None, None)
                .map_err(ServiceError::InvalidRequest)?;
            assert!(m.now() >= 3600.0, "clock not rebased past the grant");
            m.restore_queue(2, 4, None, 3610.0, None, None)
                .map_err(ServiceError::InvalidRequest)?;
            assert!(m.now() >= 3610.0, "clock not rebased past the enqueue");
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
        // Releasing the recovered job drains the recovered queue with a
        // sane (small, non-negative) recorded wait.
        let granted = r.with_entry("m0", |m| m.release(1)).unwrap();
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, 2);
        let mean = r
            .with_entry("m0", |m| Ok(m.metrics.wait.mean_seconds()))
            .unwrap();
        assert!(
            (0.0..60.0).contains(&mean),
            "recovered wait skewed by the clock base: {mean}"
        );
    }

    #[test]
    fn three_d_machines_allocate_contiguously_when_empty() {
        let r = Registry::default();
        r.register_3d(
            "cube",
            Mesh3D::new(8, 8, 8),
            Curve3Kind::Hilbert,
            SelectionStrategy::BestFit,
            SchedulerKind::Fcfs,
        )
        .unwrap();
        let AllocOutcome::Granted(nodes) = r
            .with_entry("cube", |m| m.allocate(1, 32, false, None))
            .unwrap()
        else {
            panic!("grant expected");
        };
        assert_eq!(nodes.len(), 32);
        // A Hilbert-curve prefix on an empty power-of-two cube is one
        // connected component.
        assert_eq!(Mesh3D::new(8, 8, 8).components(&nodes), 1);
        r.with_entry("cube", |m| {
            m.check_invariants().map_err(ServiceError::InvalidRequest)
        })
        .unwrap();
        let snap = r.with_entry("cube", |m| Ok(m.snapshot())).unwrap();
        assert_eq!(snap.dims, "8x8x8");
        assert_eq!(snap.busy, 32);
        assert_eq!(snap.live_jobs, 1);
    }
}
