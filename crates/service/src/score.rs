//! Predicted-contention scoring of candidate placements.
//!
//! A job that declares a [`CommPattern`] tells the service *which rank
//! pairs will talk*; a candidate placement fixes *where those ranks sit*.
//! Combining the two predicts how much the job's messages will contend
//! before a single processor is committed:
//!
//! * on a 2-D mesh, one pattern iteration is run through the
//!   message-level network simulator ([`commalloc_net::msglevel`]) over
//!   the candidate's actual nodes — per-link queueing included — and the
//!   mean message latency is the contention estimate;
//! * on a 3-D mesh (the message-level simulator is 2-D), the pattern's
//!   traffic matrix weights the pairwise mesh distances instead — the
//!   fluid-model proxy for the same quantity.
//!
//! Both scores add the placement's curve-locality terms (average pairwise
//! distance, a diameter-sized penalty per extra connected component), so
//! a compact-but-congested placement and a spread-but-quiet one land on a
//! single comparable axis. Lower is better.
//!
//! Every function here is deterministic: the only randomness (the
//! `Random` pattern's pair draws) is seeded from the job id via
//! SplitMix64, so the offline cluster router and the live service compute
//! byte-identical scores — the property the cluster sim-equivalence
//! harness extends over the comm-aware policy.

use commalloc_mesh::{Mesh2D, Mesh3D, NodeId};
use commalloc_net::msglevel::{Message, MessageLevelNetwork};
use commalloc_workload::CommPattern;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cap on simulated messages per score: one all-to-all iteration is
/// O(p²) messages, so large jobs are thinned (deterministically, by
/// stride) to keep a single score O(cap × hops) events.
const MAX_SCORED_MESSAGES: usize = 2048;

/// SplitMix64 (same finalizer as the cluster router's sampler): turns a
/// job id into the seed of the pattern's message draws.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A predicted-contention score, broken into the components that the
/// calibration plane records at grant time. The components live on one
/// comparable axis (lower is better) and [`ScoreBreakdown::total`] is
/// the scalar the allocator and router order candidates by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBreakdown {
    /// Network-simulation term: mean simulated message latency of one
    /// pattern iteration (2-D), or the traffic-matrix-weighted pairwise
    /// distance sum (3-D fluid proxy).
    pub network: f64,
    /// Locality term: average pairwise distance of the placement.
    pub locality: f64,
    /// Dispersal term: one mesh diameter per connected component beyond
    /// the first (a split placement pays for the traffic that must cross
    /// foreign regions even before queueing is modelled).
    pub dispersal: f64,
}

impl ScoreBreakdown {
    /// The scalar score: the sum of the components, associated exactly
    /// as the pre-breakdown scalar was (`network + (locality +
    /// dispersal)`), so the score ordering is bit-for-bit unchanged.
    pub fn total(&self) -> f64 {
        self.network + (self.locality + self.dispersal)
    }
}

/// The locality and dispersal terms shared by both meshes.
fn locality_and_dispersal(avg_pairwise: f64, components: usize, diameter: f64) -> (f64, f64) {
    (avg_pairwise, components.saturating_sub(1) as f64 * diameter)
}

/// Predicted contention of placing a `pattern`-declared job on exactly
/// `nodes` (rank `i` on `nodes[i]`) of a 2-D `mesh`: the mean message
/// latency of one simulated pattern iteration plus the locality terms,
/// returned per component. Deterministic in `(mesh, nodes, pattern,
/// job_id)`.
pub fn predicted_contention_2d(
    mesh: Mesh2D,
    nodes: &[NodeId],
    pattern: CommPattern,
    job_id: u64,
) -> ScoreBreakdown {
    let p = nodes.len();
    let mut rng = StdRng::seed_from_u64(splitmix64(job_id));
    let pairs = pattern.iteration_messages(p, &mut rng);
    let stride = pairs.len().div_ceil(MAX_SCORED_MESSAGES).max(1);
    let messages: Vec<Message> = pairs
        .iter()
        .step_by(stride)
        .enumerate()
        .map(|(i, &(src, dst))| Message {
            id: i as u64,
            src: nodes[src],
            dst: nodes[dst],
            inject_at: 0.0,
            service_time: 1.0,
        })
        .collect();
    let mean = MessageLevelNetwork::new(mesh)
        .simulate(&messages)
        .mean_latency();
    let diameter = (mesh.width() + mesh.height()) as f64;
    let (locality, dispersal) = locality_and_dispersal(
        mesh.avg_pairwise_distance(nodes),
        mesh.components(nodes),
        diameter,
    );
    ScoreBreakdown {
        network: mean,
        locality,
        dispersal,
    }
}

/// Predicted contention of placing a `pattern`-declared job on exactly
/// `nodes` of a 3-D `mesh`: the traffic-matrix-weighted mean pairwise
/// distance (the fluid proxy — the message-level simulator is 2-D only)
/// plus the locality terms, returned per component. Deterministic in
/// `(mesh, nodes, pattern, job_id)`.
pub fn predicted_contention_3d(
    mesh: Mesh3D,
    nodes: &[NodeId],
    pattern: CommPattern,
    job_id: u64,
) -> ScoreBreakdown {
    let p = nodes.len();
    let mut rng = StdRng::seed_from_u64(splitmix64(job_id));
    let quota = pattern.messages_per_iteration(p).max(1);
    let weighted: f64 = pattern
        .traffic(p, quota, &mut rng)
        .iter()
        .map(|e| e.weight * mesh.distance(nodes[e.src], nodes[e.dst]) as f64)
        .sum();
    let diameter = (mesh.width() + mesh.height() + mesh.depth()) as f64;
    let (locality, dispersal) = locality_and_dispersal(
        mesh.avg_pairwise_distance(nodes),
        mesh.components(nodes),
        diameter,
    );
    ScoreBreakdown {
        network: weighted,
        locality,
        dispersal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    fn row(mesh: Mesh2D, y: u16, count: usize) -> Vec<NodeId> {
        (0..count as u16)
            .map(|x| mesh.id_of(Coord::new(x, y)))
            .collect()
    }

    #[test]
    fn scores_are_deterministic_per_job() {
        let mesh = Mesh2D::new(8, 8);
        let nodes = row(mesh, 0, 8);
        for pattern in CommPattern::all() {
            let a = predicted_contention_2d(mesh, &nodes, pattern, 42);
            let b = predicted_contention_2d(mesh, &nodes, pattern, 42);
            assert_eq!(a, b, "{pattern} not deterministic");
            assert!(a.total().is_finite() && a.total() >= 0.0);
        }
    }

    #[test]
    fn breakdown_components_sum_to_the_scalar_score() {
        // The breakdown must be a decomposition, not a reformulation:
        // `network + (locality + dispersal)` — associated exactly as the
        // pre-breakdown scalar computed it — is the total, bit for bit.
        let mesh2 = Mesh2D::new(8, 8);
        let nodes2 = row(mesh2, 1, 6);
        let mesh3 = Mesh3D::new(4, 4, 4);
        let nodes3: Vec<NodeId> = (0..6).map(|i| NodeId(i * 5)).collect();
        for pattern in CommPattern::all() {
            let b2 = predicted_contention_2d(mesh2, &nodes2, pattern, 9);
            assert_eq!(
                b2.total(),
                b2.network + (b2.locality + b2.dispersal),
                "{pattern} 2-D breakdown must sum to the scalar"
            );
            let b3 = predicted_contention_3d(mesh3, &nodes3, pattern, 9);
            assert_eq!(
                b3.total(),
                b3.network + (b3.locality + b3.dispersal),
                "{pattern} 3-D breakdown must sum to the scalar"
            );
            assert!(b2.dispersal >= 0.0 && b3.dispersal >= 0.0);
        }
        // A split placement surfaces its penalty in the dispersal
        // component specifically, not smeared over the others.
        let split: Vec<NodeId> = [(0, 0), (1, 0), (6, 7), (7, 7)]
            .iter()
            .map(|&(x, y)| mesh2.id_of(Coord::new(x, y)))
            .collect();
        let b = predicted_contention_2d(mesh2, &split, CommPattern::Ring, 9);
        assert_eq!(b.dispersal, (mesh2.width() + mesh2.height()) as f64);
    }

    #[test]
    fn compact_placement_beats_scattered_for_all_to_all() {
        let mesh = Mesh2D::new(8, 8);
        // A 2x2 block versus the four mesh corners.
        let compact: Vec<NodeId> = [(0, 0), (1, 0), (0, 1), (1, 1)]
            .iter()
            .map(|&(x, y)| mesh.id_of(Coord::new(x, y)))
            .collect();
        let corners: Vec<NodeId> = [(0, 0), (7, 0), (0, 7), (7, 7)]
            .iter()
            .map(|&(x, y)| mesh.id_of(Coord::new(x, y)))
            .collect();
        let c = predicted_contention_2d(mesh, &compact, CommPattern::AllToAll, 1).total();
        let s = predicted_contention_2d(mesh, &corners, CommPattern::AllToAll, 1).total();
        assert!(c < s, "compact {c} should beat corners {s}");
    }

    #[test]
    fn split_components_pay_the_diameter_penalty() {
        let mesh = Mesh2D::new(8, 8);
        let contiguous = row(mesh, 0, 4);
        let split: Vec<NodeId> = [(0, 0), (1, 0), (6, 7), (7, 7)]
            .iter()
            .map(|&(x, y)| mesh.id_of(Coord::new(x, y)))
            .collect();
        let a = predicted_contention_2d(mesh, &contiguous, CommPattern::Ring, 3).total();
        let b = predicted_contention_2d(mesh, &split, CommPattern::Ring, 3).total();
        assert!(
            b > a + 8.0,
            "two components must cost a diameter: {a} vs {b}"
        );
    }

    #[test]
    fn three_d_proxy_prefers_compact_blocks() {
        let mesh = Mesh3D::new(4, 4, 4);
        let compact: Vec<NodeId> = (0..8).map(NodeId).collect();
        let spread: Vec<NodeId> = (0..8).map(|i| NodeId(i * 8)).collect();
        let c = predicted_contention_3d(mesh, &compact, CommPattern::AllToAll, 1).total();
        let s = predicted_contention_3d(mesh, &spread, CommPattern::AllToAll, 1).total();
        assert!(c < s, "compact {c} should beat spread {s}");
    }

    #[test]
    fn random_pattern_scores_differ_across_jobs_but_not_within() {
        let mesh = Mesh2D::new(8, 8);
        let nodes = row(mesh, 2, 6);
        let a1 = predicted_contention_2d(mesh, &nodes, CommPattern::Random, 1).total();
        let a2 = predicted_contention_2d(mesh, &nodes, CommPattern::Random, 1).total();
        assert_eq!(a1, a2);
        // Different jobs draw different pairs; scores need not be equal
        // for every pair of ids, but across a few ids at least one must
        // differ (the seed actually feeds the draw).
        let distinct = (1..8u64)
            .map(|id| predicted_contention_2d(mesh, &nodes, CommPattern::Random, id).total())
            .any(|s| s != a1);
        assert!(distinct, "job id must seed the random pattern's draws");
    }
}
