//! Cross-machine placement: routing policies and the pool router.
//!
//! The registry already holds many machines behind sharded locks, but every
//! request names its machine explicitly. This module adds the **cluster
//! layer** above admission: machines registered with a `pool` name become
//! members of that pool, and an `alloc` addressed to `"@pool"` is routed to
//! a member by a [`RoutingPolicy`] — the classic dispatcher design of
//! multi-cluster parallel job schedulers.
//!
//! ## Sample-then-commit, no global lock
//!
//! Routing never takes a lock over the whole cluster. A route call
//!
//! 1. reads the pool's member list and policy (a short read-lock on the
//!    pool table only — machine state is never touched under it),
//! 2. **samples** each member through the registry's per-shard
//!    [`crate::Registry::with_entry`] locks, one machine at a time,
//!    capturing `(free, queue length, generation)`,
//! 3. lets the policy **pick** a target from the eligible samples (a pure
//!    function — see [`RoutingPolicy::pick`]), and
//! 4. **commits** by locking only the chosen machine and allocating —
//!    re-checking its generation first, the same optimistic discipline as
//!    the free-interval index's pending-grant protocol from PR 1
//!    (`commalloc_alloc::MachineState::generation`): if another request
//!    moved the machine between sample and commit, the route is retried
//!    with fresh samples rather than committed against stale data. After a
//!    bounded number of retries the commit goes through regardless — a
//!    stale sample can only make the placement suboptimal, never unsound,
//!    because the per-machine admission path still enforces every
//!    occupancy invariant.
//!
//! ## Determinism
//!
//! All routing state advances through a per-pool sequence counter, and the
//! power-of-two-choices sampler derives its randomness from that counter
//! via SplitMix64 instead of an RNG or the clock. Driven single-threaded
//! (the [`crate::replay::replay_cluster`] harness), route decisions are
//! therefore a pure function of the request order, which is what lets the
//! cluster sim-equivalence tests replay a trace through an **offline**
//! router ([`route_offline`]) and demand byte-identical per-machine grant
//! logs from the live pooled service.

use crate::registry::ServiceError;
use crate::replay::ReplayJob;
use crate::service::AllocationService;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, RwLock};

/// The cluster-level placement disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingPolicy {
    /// Cycle through the eligible members in name order (the baseline —
    /// ignores load entirely).
    #[default]
    RoundRobin,
    /// The eligible member with the largest free-node *fraction* (so a
    /// half-empty small machine beats a quarter-empty big one).
    LeastLoaded,
    /// The eligible member with the fewest queued requests, breaking ties
    /// towards more free processors.
    ShortestQueue,
    /// Power-of-two-choices: sample two distinct eligible members
    /// pseudo-randomly (SplitMix64 of the route sequence) and take the
    /// less loaded of the pair — the classic low-coordination balancer.
    PowerOfTwoChoices,
    /// Communication-aware: the eligible member whose best candidate
    /// placement predicts the lowest contention for the job's declared
    /// communication pattern (the `contention` field of the scored
    /// sample). Members that cannot score the job — no pattern declared,
    /// or no contiguous window fits — are skipped; when *no* member
    /// scored, falls back to shortest-queue, so unpatterned traffic
    /// routes exactly as the queue-length baseline.
    CommAware,
}

impl RoutingPolicy {
    /// Every implemented policy.
    pub fn all() -> [RoutingPolicy; 5] {
        [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::ShortestQueue,
            RoutingPolicy::PowerOfTwoChoices,
            RoutingPolicy::CommAware,
        ]
    }

    /// Canonical name (also the wire spelling).
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::ShortestQueue => "shortest-queue",
            RoutingPolicy::PowerOfTwoChoices => "power-of-two",
            RoutingPolicy::CommAware => "comm-aware",
        }
    }

    /// Parses a policy spec: the canonical name or the short aliases
    /// `rr`, `ll`, `sq`, `p2c`, `ca` (case-insensitive).
    pub fn parse(spec: &str) -> Option<RoutingPolicy> {
        let spec = spec.trim();
        RoutingPolicy::all()
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(spec))
            .or(match spec.to_ascii_lowercase().as_str() {
                "rr" | "roundrobin" => Some(RoutingPolicy::RoundRobin),
                "ll" | "leastloaded" => Some(RoutingPolicy::LeastLoaded),
                "sq" | "shortestqueue" => Some(RoutingPolicy::ShortestQueue),
                "p2c" | "two-choices" | "power-of-two-choices" => {
                    Some(RoutingPolicy::PowerOfTwoChoices)
                }
                "ca" | "commaware" | "communication-aware" => Some(RoutingPolicy::CommAware),
                _ => None,
            })
    }

    /// Picks the index of the target machine among `eligible` samples
    /// (all large enough for the request, in sorted member-name order).
    /// Pure: the decision depends only on the samples and the route
    /// sequence number `seq`, never on clocks or thread identity — the
    /// property the cluster sim-equivalence harness relies on.
    ///
    /// # Panics
    ///
    /// Panics when `eligible` is empty (callers reject unroutable
    /// requests before picking).
    pub fn pick(&self, eligible: &[MachineSample], seq: u64) -> usize {
        assert!(!eligible.is_empty(), "pick needs at least one candidate");
        match self {
            RoutingPolicy::RoundRobin => (seq % eligible.len() as u64) as usize,
            RoutingPolicy::LeastLoaded => least_loaded_of(eligible, 0..eligible.len()),
            RoutingPolicy::ShortestQueue => {
                let mut best = 0usize;
                for i in 1..eligible.len() {
                    let (b, c) = (&eligible[best], &eligible[i]);
                    if (c.queue_len, std::cmp::Reverse(c.free))
                        < (b.queue_len, std::cmp::Reverse(b.free))
                    {
                        best = i;
                    }
                }
                best
            }
            RoutingPolicy::PowerOfTwoChoices => {
                let n = eligible.len();
                if n == 1 {
                    return 0;
                }
                let h = splitmix64(seq);
                let first = (h % n as u64) as usize;
                // Second choice drawn from the remaining n-1 members.
                let mut second = ((h >> 32) % (n as u64 - 1)) as usize;
                if second >= first {
                    second += 1;
                }
                least_loaded_of(eligible, [first, second])
            }
            RoutingPolicy::CommAware => {
                // Lowest predicted contention among the scored samples;
                // strict total_cmp-less keeps ties on the earlier index
                // (the lexicographically smaller member name).
                let mut best: Option<(usize, f64)> = None;
                for (i, s) in eligible.iter().enumerate() {
                    if let Some(c) = s.contention {
                        let better = match best {
                            None => true,
                            Some((_, b)) => c.total_cmp(&b) == std::cmp::Ordering::Less,
                        };
                        if better {
                            best = Some((i, c));
                        }
                    }
                }
                match best {
                    Some((i, _)) => i,
                    None => RoutingPolicy::ShortestQueue.pick(eligible, seq),
                }
            }
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Free-fraction comparison over a subset of samples: the candidate with
/// the largest `free / nodes` wins; ties break towards the earlier index,
/// i.e. the lexicographically smaller machine name (members are sampled
/// in sorted order), keeping the decision deterministic.
fn least_loaded_of(
    samples: &[MachineSample],
    candidates: impl IntoIterator<Item = usize>,
) -> usize {
    let mut candidates = candidates.into_iter();
    let mut best = candidates.next().expect("at least one candidate");
    for i in candidates {
        // a.free/a.nodes < b.free/b.nodes, cross-multiplied to stay exact
        // in integers (node counts are bounded by MAX_MACHINE_NODES, so
        // the products fit u64 comfortably).
        let (a, b) = (&samples[best], &samples[i]);
        let (lhs, rhs) = (
            a.free as u64 * b.nodes as u64,
            b.free as u64 * a.nodes as u64,
        );
        if rhs > lhs || (rhs == lhs && i < best) {
            best = i;
        }
    }
    best
}

/// SplitMix64: the standard 64-bit finalizer used to derive the
/// power-of-two-choices sample pair from the route sequence number.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One machine's routing-relevant state, captured under its shard lock.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSample {
    /// Machine name.
    pub name: String,
    /// Total processors.
    pub nodes: usize,
    /// Free processors right now.
    pub free: usize,
    /// Requests waiting in the admission queue right now.
    pub queue_len: usize,
    /// The entry's modification generation at sampling time (see
    /// [`crate::registry::MachineEntry::generation`]); the commit step
    /// re-checks it before allocating against the sample.
    pub generation: u64,
    /// The machine's best predicted contention for the specific request
    /// being routed, when it declared a communication pattern and a
    /// candidate window fits (see
    /// [`crate::registry::MachineEntry::sample_for`]); `None` on plain
    /// [`crate::registry::MachineEntry::sample`] captures. Only the
    /// comm-aware policy reads it.
    pub contention: Option<f64>,
}

/// One pool's shared state. Members are kept sorted by name so sampling
/// order — and therefore every tie-break — is deterministic and identical
/// across registry shard counts.
struct Pool {
    members: Vec<String>,
    policy: RoutingPolicy,
    /// Route sequence: advanced once per routing decision; drives the
    /// round-robin cursor and the power-of-two-choices sampler.
    seq: Arc<AtomicU64>,
}

/// An immutable view of a pool taken at route time.
pub(crate) struct PoolView {
    pub members: Vec<String>,
    pub policy: RoutingPolicy,
    pub seq: Arc<AtomicU64>,
}

/// The pool table: pool name → members + policy. Lives beside the
/// registry inside [`AllocationService`]; the lock here guards only this
/// small table (membership and policy), never machine state.
#[derive(Default)]
pub struct PlacementRouter {
    pools: RwLock<HashMap<String, Pool>>,
    /// Reverse lookup: member machine → pool it belongs to. Maintained
    /// by [`PlacementRouter::add_member`]; lets the service index a
    /// *direct* alloc to a pool member under its cluster-wide
    /// identity without walking every pool.
    member_pools: RwLock<HashMap<String, String>>,
}

impl PlacementRouter {
    /// Adds `machine` to `pool`, creating the pool (round-robin by
    /// default) on first use. Idempotent for an existing member.
    pub fn add_member(&self, pool: &str, machine: &str) {
        let mut pools = self.pools.write().expect("pool table poisoned");
        let entry = pools.entry(pool.to_string()).or_insert_with(|| Pool {
            members: Vec::new(),
            policy: RoutingPolicy::default(),
            seq: Arc::new(AtomicU64::new(0)),
        });
        if let Err(at) = entry.members.binary_search(&machine.to_string()) {
            entry.members.insert(at, machine.to_string());
        }
        drop(pools);
        self.member_pools
            .write()
            .expect("member table poisoned")
            .insert(machine.to_string(), pool.to_string());
    }

    /// The pool `machine` belongs to, if it joined one.
    pub fn pool_of_member(&self, machine: &str) -> Option<String> {
        self.member_pools
            .read()
            .expect("member table poisoned")
            .get(machine)
            .cloned()
    }

    /// Switches the routing policy of `pool`.
    pub fn set_policy(&self, pool: &str, policy: RoutingPolicy) -> Result<(), ServiceError> {
        let mut pools = self.pools.write().expect("pool table poisoned");
        match pools.get_mut(pool) {
            Some(p) => {
                p.policy = policy;
                Ok(())
            }
            None => Err(ServiceError::UnknownPool(pool.to_string())),
        }
    }

    /// The active routing policy of `pool`.
    pub fn policy(&self, pool: &str) -> Result<RoutingPolicy, ServiceError> {
        self.pools
            .read()
            .expect("pool table poisoned")
            .get(pool)
            .map(|p| p.policy)
            .ok_or_else(|| ServiceError::UnknownPool(pool.to_string()))
    }

    /// The members of `pool`, sorted by name.
    pub fn members(&self, pool: &str) -> Result<Vec<String>, ServiceError> {
        self.pools
            .read()
            .expect("pool table poisoned")
            .get(pool)
            .map(|p| p.members.clone())
            .ok_or_else(|| ServiceError::UnknownPool(pool.to_string()))
    }

    /// All pool names, sorted.
    pub fn pool_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .pools
            .read()
            .expect("pool table poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The route-time view: members, policy and the sequence handle.
    pub(crate) fn view(&self, pool: &str) -> Result<PoolView, ServiceError> {
        self.pools
            .read()
            .expect("pool table poisoned")
            .get(pool)
            .map(|p| PoolView {
                members: p.members.clone(),
                policy: p.policy,
                seq: Arc::clone(&p.seq),
            })
            .ok_or_else(|| ServiceError::UnknownPool(pool.to_string()))
    }
}

/// Strips the `@` pool sigil from a machine address, if present: `"@grid"`
/// is the pool `grid`, anything else is a plain machine name.
pub fn pool_of(machine: &str) -> Option<&str> {
    machine.strip_prefix('@')
}

/// Number of lock shards in the [`PoolJobIndex`]; like the registry's
/// shard count, a power of two comfortably above the worker count.
const JOB_INDEX_SHARDS: usize = 16;

/// The pool-level job index: `(pool, job id) → owning members`.
///
/// This is what makes a bare job id meaningful at cluster scope: a
/// `release`/`poll` addressed to `"@pool"` with a plain id resolves
/// through this index to the member that actually holds the job —
/// explicitly, instead of the silent first-match-miss a client got
/// when it sent the bare id to the wrong member.
///
/// Sharded by `(pool, job)` hash, so resolution and maintenance lock
/// one small shard, never the pool table or any machine shard — no
/// global lock anywhere on the path. Entries are inserted when a live
/// job (granted *or* queued) lands on a pool member and removed at
/// release/cancel/queue-rejection; recovery rebuilds the index from
/// the restored machines.
///
/// Duplicate ids across members *can* exist (two direct allocs to
/// different members may reuse an id — each machine's namespace is
/// still per-machine); the index keeps every owner, and resolution of
/// such an id through the pool is a hard typed
/// [`ServiceError::AmbiguousJob`] rather than first-match-wins.
#[derive(Debug)]
pub struct PoolJobIndex {
    shards: Vec<JobIndexShard>,
}

/// One lock-sharded slice of the pool job index: `(pool, job id)` to
/// every member currently holding that id (usually exactly one).
type JobIndexShard = Mutex<HashMap<(String, u64), Vec<String>>>;

impl Default for PoolJobIndex {
    fn default() -> Self {
        PoolJobIndex {
            shards: (0..JOB_INDEX_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }
}

impl PoolJobIndex {
    fn shard_of(&self, pool: &str, job: u64) -> &Mutex<HashMap<(String, u64), Vec<String>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        pool.hash(&mut hasher);
        job.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % JOB_INDEX_SHARDS]
    }

    /// Records `machine` as an owner of `(pool, job)`. Owners are kept
    /// sorted so collision errors list members deterministically.
    pub fn insert(&self, pool: &str, job: u64, machine: &str) {
        let mut shard = self.shard_of(pool, job).lock().expect("index poisoned");
        let owners = shard.entry((pool.to_string(), job)).or_default();
        if let Err(at) = owners.binary_search(&machine.to_string()) {
            owners.insert(at, machine.to_string());
        }
    }

    /// Drops `machine` from the owners of `(pool, job)`, removing the
    /// entry entirely when no owner remains.
    pub fn remove(&self, pool: &str, job: u64, machine: &str) {
        let mut shard = self.shard_of(pool, job).lock().expect("index poisoned");
        if let Some(owners) = shard.get_mut(&(pool.to_string(), job)) {
            if let Ok(at) = owners.binary_search(&machine.to_string()) {
                owners.remove(at);
            }
            if owners.is_empty() {
                shard.remove(&(pool.to_string(), job));
            }
        }
    }

    /// The owning members of `(pool, job)`, sorted by name (empty when
    /// the job is unknown to the pool).
    pub fn owners(&self, pool: &str, job: u64) -> Vec<String> {
        let shard = self.shard_of(pool, job).lock().expect("index poisoned");
        shard
            .get(&(pool.to_string(), job))
            .cloned()
            .unwrap_or_default()
    }

    /// Resolves `(pool, job)` to its unique owner: the explicit
    /// replacement for first-match-wins. Zero owners is
    /// [`ServiceError::UnknownJob`] (addressed to the pool), two or
    /// more is the typed [`ServiceError::AmbiguousJob`] collision.
    pub fn resolve(&self, pool: &str, job: u64) -> Result<String, ServiceError> {
        let mut owners = self.owners(pool, job);
        match owners.len() {
            0 => Err(ServiceError::UnknownJob {
                machine: format!("@{pool}"),
                job_id: job,
            }),
            1 => Ok(owners.remove(0)),
            _ => Err(ServiceError::AmbiguousJob {
                pool: pool.to_string(),
                job_id: job,
                machines: owners,
            }),
        }
    }

    /// Live entries across all shards (observability).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("index poisoned").len())
            .sum()
    }

    /// True when no live pool-scoped job is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the index (recovery: rebuilt from restored machines).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("index poisoned").clear();
        }
    }
}

/// One member of an offline-routed cluster, by registration spec (the
/// same string grammar as [`AllocationService::register`]).
#[derive(Debug, Clone)]
pub struct ClusterMember {
    /// Machine name.
    pub name: String,
    /// Mesh spec (`"WxH"` or `"WxHxD"`).
    pub mesh: String,
    /// Allocator (2-D) / curve (3-D) spec; `None` = default.
    pub allocator: Option<String>,
    /// Scheduling-policy spec; `None` = FCFS.
    pub scheduler: Option<String>,
}

impl ClusterMember {
    /// A member with default allocator, parameterised scheduler.
    pub fn new(name: &str, mesh: &str, scheduler: Option<&str>) -> ClusterMember {
        ClusterMember {
            name: name.to_string(),
            mesh: mesh.to_string(),
            allocator: None,
            scheduler: scheduler.map(str::to_string),
        }
    }
}

/// Routes a job trace **offline**: simulates the cluster single-threaded
/// in virtual time on a private service (one isolated machine per member,
/// no pool, no router plumbing) and applies [`RoutingPolicy::pick`]
/// directly to the sampled member states — the reference the online
/// pooled service is proven against. Returns, per trace job in arrival
/// order, the member it was routed to (`None` when no member is large
/// enough).
///
/// The event loop is the exact loop of [`crate::replay::replay_cluster`]:
/// arrivals win ties against completions, each machine's completions
/// reduce with the engine's `min_by(total_cmp)` rule over that machine's
/// **own** push/`swap_remove` running vector (cross-machine ties go to
/// the machine earliest in sorted-name order), and the route sequence
/// advances once per routed arrival — so a single-threaded online run
/// must take byte-identical routing decisions.
pub fn route_offline(
    members: &[ClusterMember],
    policy: RoutingPolicy,
    jobs: &[ReplayJob],
) -> Vec<(u64, Option<String>)> {
    let service = AllocationService::new();
    let mut names: Vec<String> = members.iter().map(|m| m.name.clone()).collect();
    names.sort();
    for m in members {
        service
            .register(
                &m.name,
                &m.mesh,
                m.allocator.as_deref(),
                None,
                m.scheduler.as_deref(),
            )
            .expect("offline cluster member registers");
    }

    let mut routes: Vec<(u64, Option<String>)> = Vec::with_capacity(jobs.len());
    // One (job_id, predicted completion) vector per member, in sorted
    // member order — the same shape as `replay_cluster`'s.
    let mut running: Vec<Vec<(u64, f64)>> = vec![Vec::new(); names.len()];
    let durations: HashMap<u64, f64> = jobs.iter().map(|j| (j.id, j.duration)).collect();
    let mut seq = 0u64;
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    loop {
        let arrival_time = jobs.get(next_arrival).map(|j| j.arrival);
        let completion = crate::replay::next_cluster_completion(&running);
        let Some((event_time, is_arrival)) =
            crate::replay::next_event(arrival_time, completion.map(|(c, _, _)| c))
        else {
            break;
        };
        now = event_time.max(now);
        for name in &names {
            service.set_time(name, now).expect("member exists");
        }

        if is_arrival {
            let job = jobs[next_arrival];
            next_arrival += 1;
            // Sample every member in sorted-name order — identical to the
            // online router's sampling order.
            let eligible: Vec<MachineSample> = names
                .iter()
                .map(|name| {
                    service
                        .sample_for(name, job.id, job.size, job.pattern)
                        .expect("member exists")
                })
                .filter(|s| job.size <= s.nodes)
                .collect();
            if eligible.is_empty() {
                routes.push((job.id, None));
                continue;
            }
            let at = policy.pick(&eligible, seq);
            seq += 1;
            let target = eligible[at].name.clone();
            let target_at = names.binary_search(&target).expect("member is registered");
            routes.push((job.id, Some(target.clone())));
            match service
                .allocate_patterned(
                    &target,
                    job.id,
                    job.size,
                    true,
                    Some(job.duration),
                    job.pattern,
                )
                .expect("well-formed offline route")
            {
                crate::registry::AllocOutcome::Granted(_) => {
                    running[target_at].push((job.id, now + job.duration));
                }
                crate::registry::AllocOutcome::Queued(_) => {}
                crate::registry::AllocOutcome::Rejected(_) => {}
            }
        } else {
            let (_, machine_at, idx) = completion.expect("completion event requires a running job");
            let machine = names[machine_at].clone();
            let (done, _) = running[machine_at].swap_remove(idx);
            let granted = service
                .release(&machine, done)
                .expect("running job releases cleanly");
            for (job_id, _) in granted {
                let duration = durations[&job_id];
                running[machine_at].push((job_id, now + duration));
            }
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, nodes: usize, free: usize, queue_len: usize) -> MachineSample {
        MachineSample {
            name: name.to_string(),
            nodes,
            free,
            queue_len,
            generation: 0,
            contention: None,
        }
    }

    fn scored(name: &str, contention: Option<f64>) -> MachineSample {
        MachineSample {
            contention,
            ..sample(name, 64, 64, 0)
        }
    }

    #[test]
    fn policy_names_parse_round_trip() {
        for policy in RoutingPolicy::all() {
            assert_eq!(RoutingPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(RoutingPolicy::parse("RR"), Some(RoutingPolicy::RoundRobin));
        assert_eq!(
            RoutingPolicy::parse("p2c"),
            Some(RoutingPolicy::PowerOfTwoChoices)
        );
        assert_eq!(RoutingPolicy::parse("nonsense"), None);
    }

    #[test]
    fn round_robin_cycles_with_the_sequence() {
        let e = vec![sample("a", 16, 16, 0), sample("b", 16, 16, 0)];
        let rr = RoutingPolicy::RoundRobin;
        assert_eq!(rr.pick(&e, 0), 0);
        assert_eq!(rr.pick(&e, 1), 1);
        assert_eq!(rr.pick(&e, 2), 0);
    }

    #[test]
    fn least_loaded_uses_fractions_not_absolutes() {
        // 32/256 free (12.5%) loses to 8/16 free (50%) despite more
        // absolute free nodes.
        let e = vec![sample("big", 256, 32, 0), sample("small", 16, 8, 0)];
        assert_eq!(RoutingPolicy::LeastLoaded.pick(&e, 0), 1);
        // Exact ties break towards the earlier (smaller) name.
        let tied = vec![sample("a", 64, 32, 0), sample("b", 128, 64, 0)];
        assert_eq!(RoutingPolicy::LeastLoaded.pick(&tied, 0), 0);
    }

    #[test]
    fn shortest_queue_breaks_ties_on_free_nodes() {
        let e = vec![
            sample("a", 64, 1, 2),
            sample("b", 64, 9, 1),
            sample("c", 64, 30, 1),
        ];
        assert_eq!(RoutingPolicy::ShortestQueue.pick(&e, 0), 2);
    }

    #[test]
    fn power_of_two_is_deterministic_in_seq_and_never_out_of_range() {
        let e = vec![
            sample("a", 64, 10, 0),
            sample("b", 64, 20, 0),
            sample("c", 64, 30, 0),
        ];
        let p = RoutingPolicy::PowerOfTwoChoices;
        for seq in 0..1000 {
            let at = p.pick(&e, seq);
            assert!(at < e.len());
            assert_eq!(at, p.pick(&e, seq), "same seq must pick the same");
        }
        // Single-member pools short-circuit.
        assert_eq!(p.pick(&e[..1], 7), 0);
        // Over many sequences every member is sampled eventually.
        let mut hit = [false; 3];
        for seq in 0..64 {
            hit[p.pick(&e, seq)] = true;
        }
        // "c" has the most free nodes, so it wins every pair it appears
        // in; "a" only wins (a, a)-impossible pairs, i.e. never.
        assert!(hit[2]);
    }

    #[test]
    fn comm_aware_picks_lowest_contention_and_breaks_ties_early() {
        let e = vec![
            scored("a", Some(9.0)),
            scored("b", Some(3.5)),
            scored("c", None),
            scored("d", Some(3.5)),
        ];
        assert_eq!(RoutingPolicy::CommAware.pick(&e, 0), 1, "lowest wins");
        let tied = vec![scored("a", Some(2.0)), scored("b", Some(2.0))];
        assert_eq!(RoutingPolicy::CommAware.pick(&tied, 7), 0, "tie → earlier");
    }

    #[test]
    fn comm_aware_falls_back_to_shortest_queue_when_nothing_scored() {
        // No member scored the job (unpatterned traffic): behave exactly
        // like shortest-queue, including its free-node tie-break.
        let e = vec![
            sample("a", 64, 1, 2),
            sample("b", 64, 9, 1),
            sample("c", 64, 30, 1),
        ];
        for seq in 0..8 {
            assert_eq!(
                RoutingPolicy::CommAware.pick(&e, seq),
                RoutingPolicy::ShortestQueue.pick(&e, seq)
            );
        }
    }

    #[test]
    fn router_membership_is_sorted_and_idempotent() {
        let router = PlacementRouter::default();
        router.add_member("grid", "m2");
        router.add_member("grid", "m0");
        router.add_member("grid", "m1");
        router.add_member("grid", "m0");
        assert_eq!(
            router.members("grid").unwrap(),
            vec!["m0".to_string(), "m1".to_string(), "m2".to_string()]
        );
        assert_eq!(router.policy("grid").unwrap(), RoutingPolicy::RoundRobin);
        router
            .set_policy("grid", RoutingPolicy::LeastLoaded)
            .unwrap();
        assert_eq!(router.policy("grid").unwrap(), RoutingPolicy::LeastLoaded);
        assert!(matches!(
            router.set_policy("nope", RoutingPolicy::RoundRobin),
            Err(ServiceError::UnknownPool(_))
        ));
        assert_eq!(router.pool_names(), vec!["grid".to_string()]);
    }

    #[test]
    fn pool_sigil_detection() {
        assert_eq!(pool_of("@grid"), Some("grid"));
        assert_eq!(pool_of("grid"), None);
        assert_eq!(pool_of("@"), Some(""));
    }

    #[test]
    fn member_pools_reverse_lookup() {
        let router = PlacementRouter::default();
        router.add_member("grid", "m0");
        router.add_member("grid", "m1");
        router.add_member("edge", "e0");
        assert_eq!(router.pool_of_member("m1"), Some("grid".to_string()));
        assert_eq!(router.pool_of_member("e0"), Some("edge".to_string()));
        assert_eq!(router.pool_of_member("loner"), None);
    }

    #[test]
    fn job_index_resolves_uniquely_and_types_collisions() {
        let index = PoolJobIndex::default();
        assert!(index.is_empty());
        index.insert("grid", 7, "m1");
        assert_eq!(index.resolve("grid", 7).unwrap(), "m1");
        // Same id on a second member: resolution is now a typed
        // collision, not first-match-wins.
        index.insert("grid", 7, "m0");
        match index.resolve("grid", 7) {
            Err(ServiceError::AmbiguousJob {
                pool,
                job_id,
                machines,
            }) => {
                assert_eq!(pool, "grid");
                assert_eq!(job_id, 7);
                assert_eq!(machines, vec!["m0".to_string(), "m1".to_string()]);
            }
            other => panic!("expected AmbiguousJob, got {other:?}"),
        }
        // Removing one owner restores unique resolution; removing the
        // last empties the entry.
        index.remove("grid", 7, "m0");
        assert_eq!(index.resolve("grid", 7).unwrap(), "m1");
        index.remove("grid", 7, "m1");
        assert!(matches!(
            index.resolve("grid", 7),
            Err(ServiceError::UnknownJob { .. })
        ));
        assert!(index.is_empty());
        // Unknown pools are simply unknown jobs at pool scope.
        assert!(matches!(
            index.resolve("nope", 1),
            Err(ServiceError::UnknownJob { .. })
        ));
        // Idempotent inserts keep one owner entry.
        index.insert("grid", 9, "m1");
        index.insert("grid", 9, "m1");
        assert_eq!(index.owners("grid", 9), vec!["m1".to_string()]);
        assert_eq!(index.len(), 1);
        index.clear();
        assert!(index.is_empty());
    }
}
