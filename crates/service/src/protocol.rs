//! The newline-delimited JSON wire protocol.
//!
//! One JSON object per line in each direction. Requests carry an `"op"`
//! discriminator; responses always carry `"ok"` plus op-specific fields
//! (see the crate docs for the full vocabulary). Node identifiers travel
//! as plain integers (dense [`commalloc_mesh::NodeId`] indices).
//!
//! The [`Request`] and [`Response`] enums implement conversion to and from
//! the JSON value tree by hand — the shapes are data-carrying enums, which
//! the workspace's derive shim deliberately does not cover, and hand-rolled
//! conversions double as precise wire-format documentation.

use commalloc_mesh::NodeId;
use commalloc_workload::CommPattern;
use serde::{Error, Map, Value};
use std::fmt;

/// A pool-scoped job reference: the cluster-wide spelling of "which
/// job".
///
/// Three forms travel on the wire:
///
/// - **Bare** — a plain integer, the per-machine compatibility form
///   (`"job": 7`). Meaningful only together with a machine address.
/// - **Member** — `"machine/id"` (`"job": "m0/7"`): names the owning
///   member explicitly, so no address field is needed.
/// - **Pooled** — `"pool/member/id"` (`"job": "grid/m0/7"`): the
///   fully qualified cluster-wide identity, as minted by pool-routed
///   `alloc` responses.
///
/// A bare ref renders as the integer it always was, so pre-refactor
/// wire lines are byte-identical; the string forms are strictly
/// additive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JobRef {
    /// Per-machine compatibility form: just the id.
    Bare(u64),
    /// `machine/id`.
    Member {
        /// Owning machine.
        machine: String,
        /// Job identifier on that machine.
        id: u64,
    },
    /// `pool/machine/id`.
    Pooled {
        /// Pool the machine belongs to.
        pool: String,
        /// Owning machine.
        machine: String,
        /// Job identifier on that machine.
        id: u64,
    },
}

impl JobRef {
    /// The job identifier common to every form.
    pub fn id(&self) -> u64 {
        match self {
            JobRef::Bare(id) => *id,
            JobRef::Member { id, .. } => *id,
            JobRef::Pooled { id, .. } => *id,
        }
    }

    /// The machine component, when the form names one.
    pub fn machine(&self) -> Option<&str> {
        match self {
            JobRef::Bare(_) => None,
            JobRef::Member { machine, .. } => Some(machine),
            JobRef::Pooled { machine, .. } => Some(machine),
        }
    }

    /// The pool component, when the form names one.
    pub fn pool(&self) -> Option<&str> {
        match self {
            JobRef::Pooled { pool, .. } => Some(pool),
            _ => None,
        }
    }

    /// Renders the wire value: bare refs stay plain integers,
    /// qualified refs become `/`-joined strings.
    pub fn to_wire(&self) -> Value {
        match self {
            JobRef::Bare(id) => Value::UInt(*id),
            _ => Value::Str(self.to_string()),
        }
    }

    /// Parses the textual spelling: `"7"`, `"m0/7"` or `"grid/m0/7"`.
    /// Segments must be non-empty and the id must be an integer; more
    /// than three segments is an error (machine and pool names cannot
    /// contain `/`).
    pub fn parse_str(s: &str) -> Result<JobRef, Error> {
        let parts: Vec<&str> = s.split('/').collect();
        let bad = || {
            Error::msg(format!(
                "malformed job ref {s:?} (want \"id\", \"machine/id\" or \"pool/machine/id\")"
            ))
        };
        if parts.iter().any(|p| p.is_empty()) {
            return Err(bad());
        }
        let id = parts
            .last()
            .and_then(|p| p.parse::<u64>().ok())
            .ok_or_else(bad)?;
        match parts.len() {
            1 => Ok(JobRef::Bare(id)),
            2 => Ok(JobRef::Member {
                machine: parts[0].to_string(),
                id,
            }),
            3 => Ok(JobRef::Pooled {
                pool: parts[0].to_string(),
                machine: parts[1].to_string(),
                id,
            }),
            _ => Err(bad()),
        }
    }

    /// Parses the wire value: an integer is a bare ref, a string is
    /// parsed per [`JobRef::parse_str`].
    pub fn from_wire(v: &Value) -> Result<JobRef, Error> {
        match v {
            Value::Str(s) => JobRef::parse_str(s),
            _ => v.as_u64().map(JobRef::Bare).ok_or_else(|| {
                Error::msg("job ref must be an integer id or a \"pool/machine/id\" string")
            }),
        }
    }
}

impl fmt::Display for JobRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobRef::Bare(id) => write!(f, "{id}"),
            JobRef::Member { machine, id } => write!(f, "{machine}/{id}"),
            JobRef::Pooled { pool, machine, id } => write!(f, "{pool}/{machine}/{id}"),
        }
    }
}

/// Parses the `job` field of `release`/`poll` as a [`JobRef`].
pub(crate) fn get_job_ref(v: &Value) -> Result<JobRef, Error> {
    let field = v
        .get("job")
        .ok_or_else(|| Error::msg("missing field \"job\""))?;
    JobRef::from_wire(field)
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a machine. `mesh` is `"WxH"` (2-D) or `"WxHxD"` (3-D);
    /// `allocator` names an [`commalloc_alloc::AllocatorKind`] (2-D) or a
    /// 3-D curve kind; `strategy` names a selection strategy (3-D only);
    /// `scheduler` names a scheduling policy (`"fcfs"`, `"backfill"`,
    /// `"easy"`, `"conservative"` or a full `SchedulerKind` name).
    Register {
        /// Machine name.
        machine: String,
        /// Mesh dimension spec.
        mesh: String,
        /// Allocator (2-D) or curve (3-D) spec; `None` = default.
        allocator: Option<String>,
        /// Selection strategy spec (3-D); `None` = Best Fit.
        strategy: Option<String>,
        /// Scheduling-policy spec; `None` = FCFS (the paper's policy).
        scheduler: Option<String>,
        /// Pool to join (cluster routing); `None` = standalone machine.
        pool: Option<String>,
    },
    /// Allocate `size` processors for `job` on `machine`; `wait` queues
    /// the request when it cannot be served immediately (admission is
    /// governed by the machine's scheduling policy). A machine of
    /// `"@pool"` routes the request across the pool's members under the
    /// pool's [`crate::cluster::RoutingPolicy`]; the response then names
    /// the machine that took the job.
    Alloc {
        /// Machine name, or `"@pool"` for cluster routing.
        machine: String,
        /// Job identifier (client-chosen, unique per machine).
        job: u64,
        /// Number of processors.
        size: usize,
        /// Queue instead of rejecting on capacity shortfall.
        wait: bool,
        /// Runtime estimate in seconds (the reservation input of EASY
        /// and conservative backfilling; FCFS/first-fit ignore it).
        /// Must be finite and positive when present — the wire parser
        /// and the service both reject anything else.
        walltime: Option<f64>,
        /// Declared communication pattern of the job (travels as the
        /// pattern's canonical name, e.g. `"all-to-all"`). Feeds the
        /// communication-aware routing policy and the allocator's
        /// contention-scored placement; `None` = pattern-oblivious.
        pattern: Option<CommPattern>,
        /// Tenant the job is attributed to. `None` inherits the
        /// connection's `hello` binding (or the default tenant).
        tenant: Option<String>,
    },
    /// Switch the scheduling policy of a machine at runtime.
    SetScheduler {
        /// Machine name.
        machine: String,
        /// Scheduling-policy spec (same grammar as `Register`).
        scheduler: String,
    },
    /// Switch the routing policy of a machine pool at runtime.
    SetRouter {
        /// Pool name (without the `@` sigil).
        pool: String,
        /// Routing-policy spec (`round-robin`/`rr`, `least-loaded`/`ll`,
        /// `shortest-queue`/`sq`, `power-of-two`/`p2c`).
        policy: String,
    },
    /// Release the processors of `job` (or cancel it while queued).
    /// `machine` may be a member name or `"@pool"` (the pool job
    /// index resolves a bare id to its owning member); it may be
    /// omitted entirely when the [`JobRef`] is qualified.
    Release {
        /// Machine name or `"@pool"`; `None` iff `job` names its
        /// machine itself.
        machine: Option<String>,
        /// The job, in any [`JobRef`] form.
        job: JobRef,
    },
    /// Ask where `job` currently stands. Addressing rules match
    /// [`Request::Release`].
    Poll {
        /// Machine name or `"@pool"`; `None` iff `job` names its
        /// machine itself.
        machine: Option<String>,
        /// The job, in any [`JobRef`] form.
        job: JobRef,
    },
    /// Bind this connection to a tenant: subsequent requests without
    /// an explicit `tenant` field are attributed to it. Creates the
    /// tenant (with default weight, no quota) when unknown.
    Hello {
        /// Tenant name.
        tenant: String,
    },
    /// Create or reconfigure a tenant: fair-share weight, node-second
    /// quota, in-flight wire cap. Omitted fields keep their current
    /// values (or the defaults for a new tenant); the resulting
    /// configuration is journaled absolutely.
    SetTenant {
        /// Tenant name.
        tenant: String,
        /// Fair-share weight (finite, positive).
        weight: Option<f64>,
        /// Node-second quota; `0` clears it back to unlimited.
        quota: Option<f64>,
        /// In-flight wire request cap; `0` clears it.
        max_in_flight: Option<u64>,
    },
    /// The tenant table: configuration plus live usage per tenant.
    Tenants,
    /// Toggle the weighted fair-share admission layer of a machine:
    /// while enabled, each queue drain first re-orders the pending
    /// queue by tenant fair-share key (outstanding node-seconds over
    /// weight, ties by arrival). Orthogonal to the scheduling policy.
    SetFairShare {
        /// Machine name.
        machine: String,
        /// Desired fair-share state.
        enabled: bool,
    },
    /// Occupancy snapshot of a machine.
    Query {
        /// Machine name.
        machine: String,
    },
    /// Operation counters of a machine (plus server totals).
    Stats {
        /// Machine name.
        machine: String,
    },
    /// Operational counters of the write-ahead journal (recovery epoch,
    /// appended records, segments, fsync policy); answers
    /// `{"enabled": false}` on a daemon running without `--journal`.
    JournalStats,
    /// Toggle the flight recorder (and optionally the placement
    /// calibration plane) at runtime. While off, request handling pays
    /// one relaxed atomic load per plane and emits nothing.
    SetTrace {
        /// Desired recorder state.
        enabled: bool,
        /// Desired calibration-plane state; `None` leaves it unchanged
        /// (the planes toggle independently).
        calibration: Option<bool>,
    },
    /// Drain the flight recorder: recent span events across all ring
    /// shards, merged in start-time order, plus buffered routing
    /// decisions.
    Trace {
        /// Keep only the most recent `limit` events; `None` = all.
        limit: Option<usize>,
        /// Reset the rings (and drop counters) after reading.
        clear: bool,
    },
    /// Stage-latency histograms and machine counters, as JSON
    /// (`format: "json"`, the default) or a Prometheus-style text
    /// exposition (`format: "prometheus"`).
    Metrics {
        /// `"json"` or `"prometheus"` (validated at parse time).
        format: String,
        /// Restrict stage and pool histograms to a trailing time
        /// window: `"10s"` or `"60s"` (validated at parse time);
        /// `None` = cumulative since boot.
        window: Option<String>,
    },
    /// The placement calibration report: per-pattern × per-policy
    /// predicted-vs-realized histograms and rank correlations, joined
    /// at release time.
    Calibration,
    /// Names of all registered machines.
    List,
    /// Liveness check.
    Ping,
    /// Several requests on one wire line, answered by one
    /// [`Response::Batch`] in the same order — the round-trip saver for
    /// closed-loop clients. Batches do not nest.
    Batch(Vec<Request>),
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed (unknown machine, duplicate job, parse
    /// error, ...).
    Error {
        /// Human-readable reason.
        message: String,
        /// Machine-readable error class for errors clients are
        /// expected to branch on (`"quota_exceeded"`,
        /// `"ambiguous_job"`); absent for garden-variety failures.
        code: Option<String>,
        /// Structured detail for coded errors (e.g. `usage`/`limit`
        /// for quota denials, the owning `machines` for collisions).
        detail: Option<Value>,
    },
    /// Registration succeeded.
    Registered {
        /// Machine name.
        machine: String,
    },
    /// Allocation granted immediately.
    Granted {
        /// Job identifier.
        job: u64,
        /// Granted processors, in rank order.
        nodes: Vec<NodeId>,
        /// The machine that took the job — present exactly when the
        /// request was routed through a pool (`"@pool"` address).
        machine: Option<String>,
    },
    /// Allocation queued (FCFS).
    Queued {
        /// Job identifier.
        job: u64,
        /// 1-based queue position at enqueue time.
        position: usize,
        /// The machine the job queues on (pool-routed requests only).
        machine: Option<String>,
    },
    /// Allocation rejected (no capacity, `wait` unset).
    Rejected {
        /// Job identifier.
        job: u64,
        /// Human-readable reason.
        reason: String,
        /// The machine that rejected the job (pool-routed requests only).
        machine: Option<String>,
    },
    /// Release succeeded; `granted` lists jobs admitted from the queue.
    Released {
        /// The released (or cancelled) job.
        job: u64,
        /// Jobs granted from the queue by this release, in grant order.
        granted: Vec<(u64, Vec<NodeId>)>,
        /// The machine the job was resolved to — present exactly when
        /// the request addressed a pool or a qualified [`JobRef`].
        machine: Option<String>,
    },
    /// The scheduling policy was switched; `granted` lists jobs the
    /// re-drain admitted from the queue.
    SchedulerSet {
        /// Machine name.
        machine: String,
        /// Canonical name of the now-active policy.
        scheduler: String,
        /// Jobs granted by the policy switch, in grant order.
        granted: Vec<(u64, Vec<NodeId>)>,
    },
    /// The routing policy of a pool was switched.
    RouterSet {
        /// Pool name.
        pool: String,
        /// Canonical name of the now-active routing policy.
        policy: String,
    },
    /// Poll result: the job runs on these processors.
    Running {
        /// Job identifier.
        job: u64,
        /// The processors the job holds.
        nodes: Vec<NodeId>,
        /// The machine the job was resolved to (pool-addressed and
        /// qualified-ref polls only).
        machine: Option<String>,
    },
    /// Poll result: the job waits at this 1-based position.
    Waiting {
        /// Job identifier.
        job: u64,
        /// 1-based queue position.
        position: usize,
        /// The start time the scheduler currently promises the job
        /// (machine clock), when the policy plans one and it is finite:
        /// conservative backfilling reserves a start for every queued
        /// job, EASY for the head. Absent under FCFS/first-fit and for
        /// unplannable reservations.
        reserved_start: Option<f64>,
        /// Machine-readable explanation of what blocks the job right
        /// now (`code`, `detail`, and optionally `blocking_job` /
        /// `until` — the rendering of a scheduler
        /// [`commalloc::scheduler::BlockReason`]).
        explain: Option<Value>,
        /// The machine the job was resolved to (pool-addressed and
        /// qualified-ref polls only).
        machine: Option<String>,
    },
    /// Poll result: the job is not present.
    Unknown {
        /// Job identifier.
        job: u64,
    },
    /// The connection is now bound to a tenant.
    Hello {
        /// The bound tenant.
        tenant: String,
    },
    /// A tenant was created or reconfigured.
    TenantSet {
        /// Tenant name.
        tenant: String,
        /// The now-active fair-share weight.
        weight: f64,
        /// The now-active node-second quota, if any.
        quota: Option<f64>,
        /// The now-active in-flight cap, if any.
        max_in_flight: Option<u64>,
    },
    /// The tenant table (configuration plus live usage, rendered as
    /// one object per tenant, sorted by name).
    Tenants(Value),
    /// The fair-share admission layer of a machine was toggled;
    /// `granted` lists jobs the re-drain admitted from the queue.
    FairShareSet {
        /// Machine name.
        machine: String,
        /// The fair-share state after the toggle.
        enabled: bool,
        /// Jobs granted by the toggle's re-drain, in grant order.
        granted: Vec<(u64, Vec<NodeId>)>,
    },
    /// Occupancy snapshot (the `MachineSnapshot` serialised fields).
    Snapshot(Value),
    /// Counter snapshot.
    Stats(Value),
    /// Journal counter snapshot.
    JournalStats(Value),
    /// The flight recorder was toggled.
    TraceSet {
        /// The recorder state after the toggle.
        enabled: bool,
    },
    /// Drained flight-recorder events (each rendered per
    /// [`crate::trace::FlightRecorder::event_to_value`]).
    Trace {
        /// Span events in start-time order.
        events: Vec<Value>,
        /// Events overwritten in the rings before this drain.
        dropped: u64,
        /// Whether the recorder is currently enabled.
        enabled: bool,
        /// Buffered routing-decision records, oldest first (drained and
        /// cleared together with the span rings).
        decisions: Vec<Value>,
    },
    /// The placement calibration report.
    Calibration(Value),
    /// Metrics export: `metrics` is a JSON object for `format: "json"`,
    /// a string holding the text exposition for `format: "prometheus"`.
    Metrics {
        /// The format the payload is in.
        format: String,
        /// The payload.
        metrics: Value,
    },
    /// Registered machine names.
    Machines(Vec<String>),
    /// Liveness answer.
    Pong,
    /// Per-request answers to a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
}

pub(crate) fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

pub(crate) fn str_value(s: &str) -> Value {
    Value::Str(s.to_string())
}

pub(crate) fn nodes_value(nodes: &[NodeId]) -> Value {
    Value::Array(nodes.iter().map(|n| Value::UInt(n.0 as u64)).collect())
}

pub(crate) fn get_str(v: &Value, key: &str) -> Result<String, Error> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| Error::msg(format!("missing or non-string field {key:?}")))
}

pub(crate) fn get_u64(v: &Value, key: &str) -> Result<u64, Error> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::msg(format!("missing or non-integer field {key:?}")))
}

pub(crate) fn get_f64_opt(v: &Value, key: &str) -> Result<Option<f64>, Error> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_f64()
            .map(Some)
            .ok_or_else(|| Error::msg(format!("non-numeric field {key:?}"))),
    }
}

/// The single boundary rule on walltime estimates: when present, an
/// estimate must be a finite, positive number of seconds. Every
/// validation site — the wire parser below, the typed client, the live
/// `allocate` path and the journal-restore fold — consults this one
/// predicate, so the rule cannot drift between layers.
pub(crate) fn walltime_is_valid(w: f64) -> bool {
    w.is_finite() && w > 0.0
}

/// A walltime estimate: optional, but gated on [`walltime_is_valid`].
/// JSON itself cannot spell `NaN`, but it can spell `1e999` (which
/// parses to infinity) and `0` / negatives — none of which may reach
/// the reservation math, where non-finite ordering silently corrupts
/// shadow times. Rejected here, at the wire boundary, so a malformed
/// estimate is a parse error rather than a grant with poisoned
/// scheduling state.
pub(crate) fn get_walltime(v: &Value) -> Result<Option<f64>, Error> {
    match get_f64_opt(v, "walltime")? {
        Some(w) if !walltime_is_valid(w) => Err(Error::msg(format!(
            "field \"walltime\" must be a finite, positive number of seconds, got {w}"
        ))),
        other => Ok(other),
    }
}

/// An optional communication pattern, validated against the known
/// pattern names at the wire boundary — an unknown name is a parse
/// error rather than a silently pattern-oblivious job.
pub(crate) fn get_pattern(v: &Value) -> Result<Option<CommPattern>, Error> {
    match get_str_opt(v, "pattern")? {
        None => Ok(None),
        Some(name) => CommPattern::parse(&name)
            .map(Some)
            .ok_or_else(|| Error::msg(format!("unknown communication pattern {name:?}"))),
    }
}

/// An optional string field: absent/null is `None`, but a present value
/// of the wrong type is a parse error rather than a silent `None` (a
/// mistyped `"scheduler":5` must not quietly register an FCFS machine).
pub(crate) fn get_str_opt(v: &Value, key: &str) -> Result<Option<String>, Error> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| Error::msg(format!("non-string field {key:?}"))),
    }
}

/// Renders a `(job, nodes)` grant list (shared by the `release` and
/// `set_scheduler` responses).
fn granted_value(granted: &[(u64, Vec<NodeId>)]) -> Value {
    Value::Array(
        granted
            .iter()
            .map(|(id, nodes)| {
                obj(vec![
                    ("job", Value::UInt(*id)),
                    ("nodes", nodes_value(nodes)),
                ])
            })
            .collect(),
    )
}

/// Parses a `(job, nodes)` grant list.
fn get_granted(v: &Value) -> Result<Vec<(u64, Vec<NodeId>)>, Error> {
    let arr = v
        .get("granted")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::msg("missing \"granted\" array"))?;
    arr.iter()
        .map(|entry| Ok((get_u64(entry, "job")?, get_nodes(entry, "nodes")?)))
        .collect()
}

pub(crate) fn get_nodes(v: &Value, key: &str) -> Result<Vec<NodeId>, Error> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| Error::msg(format!("missing or non-array field {key:?}")))?;
    arr.iter()
        .map(|n| {
            n.as_u64()
                .map(|id| NodeId(id as u32))
                .ok_or_else(|| Error::msg("non-integer node id"))
        })
        .collect()
}

impl Request {
    /// Renders the request as its wire value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
                pool,
            } => {
                let mut entries = vec![
                    ("op", str_value("register")),
                    ("machine", str_value(machine)),
                    ("mesh", str_value(mesh)),
                ];
                if let Some(a) = allocator {
                    entries.push(("allocator", str_value(a)));
                }
                if let Some(s) = strategy {
                    entries.push(("strategy", str_value(s)));
                }
                if let Some(s) = scheduler {
                    entries.push(("scheduler", str_value(s)));
                }
                if let Some(p) = pool {
                    entries.push(("pool", str_value(p)));
                }
                obj(entries)
            }
            Request::Alloc {
                machine,
                job,
                size,
                wait,
                walltime,
                pattern,
                tenant,
            } => {
                let mut entries = vec![
                    ("op", str_value("alloc")),
                    ("machine", str_value(machine)),
                    ("job", Value::UInt(*job)),
                    ("size", Value::UInt(*size as u64)),
                    ("wait", Value::Bool(*wait)),
                ];
                if let Some(w) = walltime {
                    entries.push(("walltime", Value::Float(*w)));
                }
                if let Some(p) = pattern {
                    entries.push(("pattern", str_value(p.name())));
                }
                if let Some(t) = tenant {
                    entries.push(("tenant", str_value(t)));
                }
                obj(entries)
            }
            Request::SetScheduler { machine, scheduler } => obj(vec![
                ("op", str_value("set_scheduler")),
                ("machine", str_value(machine)),
                ("scheduler", str_value(scheduler)),
            ]),
            Request::SetRouter { pool, policy } => obj(vec![
                ("op", str_value("set_router")),
                ("pool", str_value(pool)),
                ("policy", str_value(policy)),
            ]),
            Request::Release { machine, job } => {
                let mut entries = vec![("op", str_value("release"))];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                entries.push(("job", job.to_wire()));
                obj(entries)
            }
            Request::Poll { machine, job } => {
                let mut entries = vec![("op", str_value("poll"))];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                entries.push(("job", job.to_wire()));
                obj(entries)
            }
            Request::Hello { tenant } => obj(vec![
                ("op", str_value("hello")),
                ("tenant", str_value(tenant)),
            ]),
            Request::SetTenant {
                tenant,
                weight,
                quota,
                max_in_flight,
            } => {
                let mut entries = vec![
                    ("op", str_value("set_tenant")),
                    ("tenant", str_value(tenant)),
                ];
                if let Some(w) = weight {
                    entries.push(("weight", Value::Float(*w)));
                }
                if let Some(q) = quota {
                    entries.push(("quota", Value::Float(*q)));
                }
                if let Some(c) = max_in_flight {
                    entries.push(("max_in_flight", Value::UInt(*c)));
                }
                obj(entries)
            }
            Request::Tenants => obj(vec![("op", str_value("tenants"))]),
            Request::SetFairShare { machine, enabled } => obj(vec![
                ("op", str_value("set_fair_share")),
                ("machine", str_value(machine)),
                ("enabled", Value::Bool(*enabled)),
            ]),
            Request::Query { machine } => obj(vec![
                ("op", str_value("query")),
                ("machine", str_value(machine)),
            ]),
            Request::Stats { machine } => obj(vec![
                ("op", str_value("stats")),
                ("machine", str_value(machine)),
            ]),
            Request::JournalStats => obj(vec![("op", str_value("journal_stats"))]),
            Request::SetTrace {
                enabled,
                calibration,
            } => {
                let mut entries = vec![
                    ("op", str_value("set_trace")),
                    ("enabled", Value::Bool(*enabled)),
                ];
                if let Some(c) = calibration {
                    entries.push(("calibration", Value::Bool(*c)));
                }
                obj(entries)
            }
            Request::Trace { limit, clear } => {
                let mut entries = vec![("op", str_value("trace"))];
                if let Some(limit) = limit {
                    entries.push(("limit", Value::UInt(*limit as u64)));
                }
                if *clear {
                    entries.push(("clear", Value::Bool(true)));
                }
                obj(entries)
            }
            Request::Metrics { format, window } => {
                let mut entries = vec![("op", str_value("metrics")), ("format", str_value(format))];
                if let Some(w) = window {
                    entries.push(("window", str_value(w)));
                }
                obj(entries)
            }
            Request::Calibration => obj(vec![("op", str_value("calibration"))]),
            Request::List => obj(vec![("op", str_value("list"))]),
            Request::Ping => obj(vec![("op", str_value("ping"))]),
            Request::Batch(requests) => obj(vec![
                ("op", str_value("batch")),
                (
                    "requests",
                    Value::Array(requests.iter().map(Request::to_value).collect()),
                ),
            ]),
        }
    }

    /// Parses a request from its wire value.
    pub fn from_value(v: &Value) -> Result<Request, Error> {
        let op = get_str(v, "op")?;
        match op.as_str() {
            "register" => Ok(Request::Register {
                machine: get_str(v, "machine")?,
                mesh: get_str(v, "mesh")?,
                allocator: get_str_opt(v, "allocator")?,
                strategy: get_str_opt(v, "strategy")?,
                scheduler: get_str_opt(v, "scheduler")?,
                pool: get_str_opt(v, "pool")?,
            }),
            "alloc" => Ok(Request::Alloc {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
                size: get_u64(v, "size")? as usize,
                wait: match v.get("wait") {
                    None | Some(Value::Null) => false,
                    Some(value) => value
                        .as_bool()
                        .ok_or_else(|| Error::msg("non-boolean field \"wait\""))?,
                },
                walltime: get_walltime(v)?,
                pattern: get_pattern(v)?,
                tenant: get_str_opt(v, "tenant")?,
            }),
            "set_scheduler" => Ok(Request::SetScheduler {
                machine: get_str(v, "machine")?,
                scheduler: get_str(v, "scheduler")?,
            }),
            "set_router" => Ok(Request::SetRouter {
                pool: get_str(v, "pool")?,
                policy: get_str(v, "policy")?,
            }),
            "batch" => {
                let arr = v
                    .get("requests")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"requests\" array"))?;
                let requests = arr
                    .iter()
                    .map(Request::from_value)
                    .collect::<Result<Vec<_>, Error>>()?;
                if requests.iter().any(|r| matches!(r, Request::Batch(_))) {
                    return Err(Error::msg("batches do not nest"));
                }
                Ok(Request::Batch(requests))
            }
            "release" => {
                let machine = get_str_opt(v, "machine")?;
                let job = get_job_ref(v)?;
                if machine.is_none() && job.machine().is_none() {
                    return Err(Error::msg(
                        "release needs a \"machine\" or a qualified job ref",
                    ));
                }
                Ok(Request::Release { machine, job })
            }
            "poll" => {
                let machine = get_str_opt(v, "machine")?;
                let job = get_job_ref(v)?;
                if machine.is_none() && job.machine().is_none() {
                    return Err(Error::msg(
                        "poll needs a \"machine\" or a qualified job ref",
                    ));
                }
                Ok(Request::Poll { machine, job })
            }
            "hello" => Ok(Request::Hello {
                tenant: get_str(v, "tenant")?,
            }),
            "set_tenant" => {
                let weight = get_f64_opt(v, "weight")?;
                if let Some(w) = weight {
                    if !(w.is_finite() && w > 0.0) {
                        return Err(Error::msg(format!(
                            "field \"weight\" must be a finite, positive number, got {w}"
                        )));
                    }
                }
                let quota = get_f64_opt(v, "quota")?;
                if let Some(q) = quota {
                    if !(q.is_finite() && q >= 0.0) {
                        return Err(Error::msg(format!(
                            "field \"quota\" must be a finite, non-negative number of node-seconds, got {q}"
                        )));
                    }
                }
                let max_in_flight = match v.get("max_in_flight") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(
                        value
                            .as_u64()
                            .ok_or_else(|| Error::msg("non-integer field \"max_in_flight\""))?,
                    ),
                };
                Ok(Request::SetTenant {
                    tenant: get_str(v, "tenant")?,
                    weight,
                    quota,
                    max_in_flight,
                })
            }
            "tenants" => Ok(Request::Tenants),
            "set_fair_share" => Ok(Request::SetFairShare {
                machine: get_str(v, "machine")?,
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
            }),
            "query" => Ok(Request::Query {
                machine: get_str(v, "machine")?,
            }),
            "stats" => Ok(Request::Stats {
                machine: get_str(v, "machine")?,
            }),
            "journal_stats" => Ok(Request::JournalStats),
            "set_trace" => Ok(Request::SetTrace {
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
                calibration: match v.get("calibration") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(
                        value
                            .as_bool()
                            .ok_or_else(|| Error::msg("non-boolean field \"calibration\""))?,
                    ),
                },
            }),
            "trace" => Ok(Request::Trace {
                limit: match v.get("limit") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(
                        value
                            .as_u64()
                            .ok_or_else(|| Error::msg("non-integer field \"limit\""))?
                            as usize,
                    ),
                },
                clear: match v.get("clear") {
                    None | Some(Value::Null) => false,
                    Some(value) => value
                        .as_bool()
                        .ok_or_else(|| Error::msg("non-boolean field \"clear\""))?,
                },
            }),
            "metrics" => {
                let format = get_str_opt(v, "format")?.unwrap_or_else(|| "json".to_string());
                if format != "json" && format != "prometheus" {
                    return Err(Error::msg(format!(
                        "unknown metrics format {format:?} (expected \"json\" or \"prometheus\")"
                    )));
                }
                let window = get_str_opt(v, "window")?;
                if let Some(w) = &window {
                    if w != "10s" && w != "60s" {
                        return Err(Error::msg(format!(
                            "unknown metrics window {w:?} (expected \"10s\" or \"60s\")"
                        )));
                    }
                }
                Ok(Request::Metrics { format, window })
            }
            "calibration" => Ok(Request::Calibration),
            "list" => Ok(Request::List),
            "ping" => Ok(Request::Ping),
            other => Err(Error::msg(format!("unknown op {other:?}"))),
        }
    }

    /// Parses a request from one wire line.
    pub fn from_line(line: &str) -> Result<Request, Error> {
        let value: Value = serde_json::from_str(line)?;
        Request::from_value(&value)
    }

    /// Renders the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("value rendering is infallible")
    }
}

impl Response {
    /// Renders the response as its wire value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Error {
                message,
                code,
                detail,
            } => {
                let mut entries = vec![("ok", Value::Bool(false)), ("error", str_value(message))];
                if let Some(c) = code {
                    entries.push(("code", str_value(c)));
                }
                if let Some(d) = detail {
                    entries.push(("detail", d.clone()));
                }
                obj(entries)
            }
            Response::Registered { machine } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("register")),
                ("machine", str_value(machine)),
            ]),
            Response::Granted {
                job,
                nodes,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("alloc")),
                    ("status", str_value("granted")),
                    ("job", Value::UInt(*job)),
                    ("nodes", nodes_value(nodes)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Queued {
                job,
                position,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("alloc")),
                    ("status", str_value("queued")),
                    ("job", Value::UInt(*job)),
                    ("position", Value::UInt(*position as u64)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Rejected {
                job,
                reason,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("alloc")),
                    ("status", str_value("rejected")),
                    ("job", Value::UInt(*job)),
                    ("reason", str_value(reason)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Released {
                job,
                granted,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("release")),
                    ("job", Value::UInt(*job)),
                    ("granted", granted_value(granted)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::SchedulerSet {
                machine,
                scheduler,
                granted,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_scheduler")),
                ("machine", str_value(machine)),
                ("scheduler", str_value(scheduler)),
                ("granted", granted_value(granted)),
            ]),
            Response::RouterSet { pool, policy } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_router")),
                ("pool", str_value(pool)),
                ("policy", str_value(policy)),
            ]),
            Response::Running {
                job,
                nodes,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("poll")),
                    ("state", str_value("running")),
                    ("job", Value::UInt(*job)),
                    ("nodes", nodes_value(nodes)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Waiting {
                job,
                position,
                reserved_start,
                explain,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("poll")),
                    ("state", str_value("queued")),
                    ("job", Value::UInt(*job)),
                    ("position", Value::UInt(*position as u64)),
                ];
                // Only finite promises travel: JSON cannot spell the
                // infinity an unplannable reservation would need, and
                // the explain already marks that case.
                if let Some(start) = reserved_start.filter(|s| s.is_finite()) {
                    entries.push(("reserved_start", Value::Float(start)));
                }
                if let Some(explain) = explain {
                    entries.push(("explain", explain.clone()));
                }
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Unknown { job } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("poll")),
                ("state", str_value("unknown")),
                ("job", Value::UInt(*job)),
            ]),
            Response::Hello { tenant } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("hello")),
                ("tenant", str_value(tenant)),
            ]),
            Response::TenantSet {
                tenant,
                weight,
                quota,
                max_in_flight,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("set_tenant")),
                    ("tenant", str_value(tenant)),
                    ("weight", Value::Float(*weight)),
                ];
                if let Some(q) = quota {
                    entries.push(("quota", Value::Float(*q)));
                }
                if let Some(c) = max_in_flight {
                    entries.push(("max_in_flight", Value::UInt(*c)));
                }
                obj(entries)
            }
            Response::Tenants(table) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("tenants")),
                ("tenants", table.clone()),
            ]),
            Response::FairShareSet {
                machine,
                enabled,
                granted,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_fair_share")),
                ("machine", str_value(machine)),
                ("enabled", Value::Bool(*enabled)),
                ("granted", granted_value(granted)),
            ]),
            Response::Snapshot(snapshot) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("query")),
                ("snapshot", snapshot.clone()),
            ]),
            Response::Stats(stats) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("stats")),
                ("stats", stats.clone()),
            ]),
            Response::JournalStats(stats) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("journal_stats")),
                ("journal", stats.clone()),
            ]),
            Response::TraceSet { enabled } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_trace")),
                ("enabled", Value::Bool(*enabled)),
            ]),
            Response::Trace {
                events,
                dropped,
                enabled,
                decisions,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("trace")),
                ("enabled", Value::Bool(*enabled)),
                ("dropped", Value::UInt(*dropped)),
                ("events", Value::Array(events.clone())),
                ("decisions", Value::Array(decisions.clone())),
            ]),
            Response::Calibration(report) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("calibration")),
                ("calibration", report.clone()),
            ]),
            Response::Metrics { format, metrics } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("metrics")),
                ("format", str_value(format)),
                ("metrics", metrics.clone()),
            ]),
            Response::Machines(names) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("list")),
                (
                    "machines",
                    Value::Array(names.iter().map(|n| str_value(n)).collect()),
                ),
            ]),
            Response::Pong => obj(vec![("ok", Value::Bool(true)), ("op", str_value("pong"))]),
            Response::Batch(responses) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("batch")),
                (
                    "responses",
                    Value::Array(responses.iter().map(Response::to_value).collect()),
                ),
            ]),
        }
    }

    /// Parses a response from its wire value.
    pub fn from_value(v: &Value) -> Result<Response, Error> {
        let ok = v
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| Error::msg("missing \"ok\" field"))?;
        if !ok {
            return Ok(Response::Error {
                message: get_str(v, "error")?,
                code: get_str_opt(v, "code")?,
                detail: match v.get("detail") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(value.clone()),
                },
            });
        }
        let op = get_str(v, "op")?;
        match op.as_str() {
            "register" => Ok(Response::Registered {
                machine: get_str(v, "machine")?,
            }),
            "alloc" => match get_str(v, "status")?.as_str() {
                "granted" => Ok(Response::Granted {
                    job: get_u64(v, "job")?,
                    nodes: get_nodes(v, "nodes")?,
                    machine: get_str_opt(v, "machine")?,
                }),
                "queued" => Ok(Response::Queued {
                    job: get_u64(v, "job")?,
                    position: get_u64(v, "position")? as usize,
                    machine: get_str_opt(v, "machine")?,
                }),
                "rejected" => Ok(Response::Rejected {
                    job: get_u64(v, "job")?,
                    reason: get_str(v, "reason")?,
                    machine: get_str_opt(v, "machine")?,
                }),
                other => Err(Error::msg(format!("unknown alloc status {other:?}"))),
            },
            "release" => Ok(Response::Released {
                job: get_u64(v, "job")?,
                granted: get_granted(v)?,
                machine: get_str_opt(v, "machine")?,
            }),
            "set_scheduler" => Ok(Response::SchedulerSet {
                machine: get_str(v, "machine")?,
                scheduler: get_str(v, "scheduler")?,
                granted: get_granted(v)?,
            }),
            "set_router" => Ok(Response::RouterSet {
                pool: get_str(v, "pool")?,
                policy: get_str(v, "policy")?,
            }),
            "hello" => Ok(Response::Hello {
                tenant: get_str(v, "tenant")?,
            }),
            "set_tenant" => Ok(Response::TenantSet {
                tenant: get_str(v, "tenant")?,
                weight: v
                    .get("weight")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| Error::msg("missing or non-numeric field \"weight\""))?,
                quota: get_f64_opt(v, "quota")?,
                max_in_flight: match v.get("max_in_flight") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(
                        value
                            .as_u64()
                            .ok_or_else(|| Error::msg("non-integer field \"max_in_flight\""))?,
                    ),
                },
            }),
            "tenants" => Ok(Response::Tenants(
                v.get("tenants")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"tenants\""))?,
            )),
            "set_fair_share" => Ok(Response::FairShareSet {
                machine: get_str(v, "machine")?,
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
                granted: get_granted(v)?,
            }),
            "poll" => match get_str(v, "state")?.as_str() {
                "running" => Ok(Response::Running {
                    job: get_u64(v, "job")?,
                    nodes: get_nodes(v, "nodes")?,
                    machine: get_str_opt(v, "machine")?,
                }),
                "queued" => Ok(Response::Waiting {
                    job: get_u64(v, "job")?,
                    position: get_u64(v, "position")? as usize,
                    reserved_start: get_f64_opt(v, "reserved_start")?,
                    explain: match v.get("explain") {
                        None | Some(Value::Null) => None,
                        Some(value) => Some(value.clone()),
                    },
                    machine: get_str_opt(v, "machine")?,
                }),
                "unknown" => Ok(Response::Unknown {
                    job: get_u64(v, "job")?,
                }),
                other => Err(Error::msg(format!("unknown poll state {other:?}"))),
            },
            "query" => Ok(Response::Snapshot(
                v.get("snapshot")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"snapshot\""))?,
            )),
            "stats" => Ok(Response::Stats(
                v.get("stats")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"stats\""))?,
            )),
            "journal_stats" => Ok(Response::JournalStats(
                v.get("journal")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"journal\""))?,
            )),
            "set_trace" => Ok(Response::TraceSet {
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
            }),
            "trace" => Ok(Response::Trace {
                events: v
                    .get("events")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"events\" array"))?
                    .to_vec(),
                dropped: get_u64(v, "dropped")?,
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
                // Absent on lines from pre-calibration daemons: decode
                // as an empty drain rather than a parse error.
                decisions: match v.get("decisions") {
                    None | Some(Value::Null) => Vec::new(),
                    Some(value) => value
                        .as_array()
                        .ok_or_else(|| Error::msg("non-array field \"decisions\""))?
                        .to_vec(),
                },
            }),
            "calibration" => Ok(Response::Calibration(
                v.get("calibration")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"calibration\""))?,
            )),
            "metrics" => Ok(Response::Metrics {
                format: get_str(v, "format")?,
                metrics: v
                    .get("metrics")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"metrics\""))?,
            }),
            "list" => {
                let arr = v
                    .get("machines")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"machines\" array"))?;
                arr.iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| Error::msg("non-string machine name"))
                    })
                    .collect::<Result<Vec<_>, Error>>()
                    .map(Response::Machines)
            }
            "pong" => Ok(Response::Pong),
            "batch" => {
                let arr = v
                    .get("responses")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"responses\" array"))?;
                arr.iter()
                    .map(Response::from_value)
                    .collect::<Result<Vec<_>, Error>>()
                    .map(Response::Batch)
            }
            other => Err(Error::msg(format!("unknown response op {other:?}"))),
        }
    }

    /// Parses a response from one wire line.
    pub fn from_line(line: &str) -> Result<Response, Error> {
        let value: Value = serde_json::from_str(line)?;
        Response::from_value(&value)
    }

    /// Renders the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("value rendering is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = vec![
            Request::Register {
                machine: "m0".into(),
                mesh: "16x16".into(),
                allocator: Some("Hilbert w/BF".into()),
                strategy: None,
                scheduler: Some("easy".into()),
                pool: Some("grid".into()),
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 7,
                size: 17,
                wait: true,
                walltime: Some(120.5),
                pattern: None,
                tenant: None,
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 8,
                size: 1,
                wait: false,
                walltime: None,
                pattern: Some(CommPattern::AllToAll),
                tenant: Some("acme".into()),
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 12,
                size: 9,
                wait: true,
                walltime: Some(60.0),
                pattern: Some(CommPattern::NBody),
                tenant: None,
            },
            Request::SetScheduler {
                machine: "m0".into(),
                scheduler: "first-fit backfill".into(),
            },
            Request::SetRouter {
                pool: "grid".into(),
                policy: "power-of-two".into(),
            },
            Request::Batch(vec![
                Request::Ping,
                Request::Alloc {
                    machine: "@grid".into(),
                    job: 9,
                    size: 3,
                    wait: true,
                    walltime: None,
                    pattern: Some(CommPattern::Stencil2D),
                    tenant: None,
                },
            ]),
            Request::Release {
                machine: Some("m0".into()),
                job: JobRef::Bare(7),
            },
            Request::Release {
                machine: Some("@grid".into()),
                job: JobRef::Bare(7),
            },
            Request::Release {
                machine: None,
                job: JobRef::Member {
                    machine: "m0".into(),
                    id: 7,
                },
            },
            Request::Release {
                machine: None,
                job: JobRef::Pooled {
                    pool: "grid".into(),
                    machine: "m0".into(),
                    id: 7,
                },
            },
            Request::Poll {
                machine: Some("m0".into()),
                job: JobRef::Bare(8),
            },
            Request::Poll {
                machine: Some("@grid".into()),
                job: JobRef::Member {
                    machine: "m1".into(),
                    id: 8,
                },
            },
            Request::Hello {
                tenant: "acme".into(),
            },
            Request::SetTenant {
                tenant: "acme".into(),
                weight: Some(2.5),
                quota: Some(1000.5),
                max_in_flight: Some(64),
            },
            Request::SetTenant {
                tenant: "basic".into(),
                weight: None,
                quota: None,
                max_in_flight: None,
            },
            Request::Tenants,
            Request::SetFairShare {
                machine: "m0".into(),
                enabled: true,
            },
            Request::Query {
                machine: "m0".into(),
            },
            Request::Stats {
                machine: "m0".into(),
            },
            Request::JournalStats,
            Request::SetTrace {
                enabled: true,
                calibration: None,
            },
            Request::SetTrace {
                enabled: false,
                calibration: Some(true),
            },
            Request::SetTrace {
                enabled: true,
                calibration: Some(false),
            },
            Request::Trace {
                limit: None,
                clear: false,
            },
            Request::Trace {
                limit: Some(100),
                clear: true,
            },
            Request::Metrics {
                format: "json".into(),
                window: None,
            },
            Request::Metrics {
                format: "prometheus".into(),
                window: Some("10s".into()),
            },
            Request::Metrics {
                format: "json".into(),
                window: Some("60s".into()),
            },
            Request::Calibration,
            Request::List,
            Request::Ping,
        ];
        for request in requests {
            let line = request.to_line();
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let parsed = Request::from_line(&line).unwrap();
            assert_eq!(parsed, request, "line was {line}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_format() {
        let responses = vec![
            Response::Error {
                message: "unknown machine \"x\"".into(),
                code: None,
                detail: None,
            },
            Response::Error {
                message: "tenant \"acme\" over quota".into(),
                code: Some("quota_exceeded".into()),
                detail: Some(obj(vec![
                    ("tenant", str_value("acme")),
                    ("usage", Value::Float(90.5)),
                    // Fractional: an integral float would parse back as
                    // an `Int`, which is fine on the wire but not for
                    // this exact-equality fixture.
                    ("limit", Value::Float(100.5)),
                ])),
            },
            Response::Registered {
                machine: "m0".into(),
            },
            Response::Granted {
                job: 1,
                nodes: vec![NodeId(0), NodeId(255)],
                machine: None,
            },
            Response::Granted {
                job: 11,
                nodes: vec![NodeId(4)],
                machine: Some("m1".into()),
            },
            Response::Queued {
                job: 2,
                position: 3,
                machine: None,
            },
            Response::Rejected {
                job: 3,
                reason: "17 processors requested, 4 free".into(),
                machine: Some("m2".into()),
            },
            Response::Released {
                job: 1,
                granted: vec![(2, vec![NodeId(9)]), (4, vec![])],
                machine: None,
            },
            Response::Released {
                job: 1,
                granted: vec![],
                machine: Some("m1".into()),
            },
            Response::SchedulerSet {
                machine: "m0".into(),
                scheduler: "EASY backfill".into(),
                granted: vec![(7, vec![NodeId(1), NodeId(2)])],
            },
            Response::Running {
                job: 2,
                nodes: vec![NodeId(9)],
                machine: None,
            },
            Response::Running {
                job: 2,
                nodes: vec![NodeId(9)],
                machine: Some("m0".into()),
            },
            Response::Waiting {
                job: 5,
                position: 1,
                reserved_start: None,
                explain: None,
                machine: Some("m1".into()),
            },
            Response::Waiting {
                job: 5,
                position: 2,
                reserved_start: Some(120.5),
                explain: Some(obj(vec![
                    ("code", str_value("would_delay_reservation")),
                    ("blocking_job", Value::Int(3)),
                    ("until", Value::Float(120.5)),
                    (
                        "detail",
                        str_value("would delay job 3's reservation at t=120.5"),
                    ),
                ])),
                machine: None,
            },
            Response::Hello {
                tenant: "acme".into(),
            },
            Response::TenantSet {
                tenant: "acme".into(),
                weight: 2.5,
                quota: Some(1000.5),
                max_in_flight: Some(64),
            },
            Response::TenantSet {
                tenant: "basic".into(),
                weight: 1.5,
                quota: None,
                max_in_flight: None,
            },
            Response::Tenants(Value::Array(vec![obj(vec![
                ("tenant", str_value("acme")),
                ("weight", Value::Float(2.5)),
                ("admitted", Value::Int(3)),
            ])])),
            Response::FairShareSet {
                machine: "m0".into(),
                enabled: true,
                granted: vec![(7, vec![NodeId(1)])],
            },
            Response::Unknown { job: 6 },
            Response::RouterSet {
                pool: "grid".into(),
                policy: "least-loaded".into(),
            },
            Response::JournalStats(Value::Object({
                let mut m = Map::new();
                m.insert("enabled".into(), Value::Bool(false));
                m
            })),
            Response::TraceSet { enabled: true },
            Response::Trace {
                events: vec![obj(vec![
                    ("request", Value::Int(1)),
                    ("stage", str_value("parse")),
                    ("ts_micros", Value::Int(12)),
                    ("dur_micros", Value::Int(3)),
                ])],
                dropped: 2,
                enabled: true,
                decisions: vec![obj(vec![
                    ("pool", str_value("grid")),
                    ("policy", str_value("comm-aware")),
                    ("winner", str_value("m1")),
                ])],
            },
            Response::Calibration(obj(vec![
                ("enabled", Value::Bool(true)),
                // `Int`, not `UInt`: the parser normalises i64-ranged
                // integers to `Int`, and the fixture must round-trip.
                ("joined", Value::Int(12)),
                ("cells", Value::Array(vec![])),
            ])),
            Response::Metrics {
                format: "json".into(),
                metrics: obj(vec![("stages", Value::Object(Map::new()))]),
            },
            Response::Metrics {
                format: "prometheus".into(),
                metrics: str_value("x_count 3\n"),
            },
            Response::Machines(vec!["a".into(), "b".into()]),
            Response::Pong,
            Response::Batch(vec![
                Response::Pong,
                Response::Error {
                    message: "unknown pool \"x\"".into(),
                    code: None,
                    detail: None,
                },
            ]),
        ];
        for response in responses {
            let line = response.to_line();
            let parsed = Response::from_line(&line).unwrap();
            assert_eq!(parsed, response, "line was {line}");
        }
    }

    #[test]
    fn alloc_wait_and_walltime_default_to_absent() {
        let parsed =
            Request::from_line(r#"{"op":"alloc","machine":"m0","job":1,"size":4}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Alloc {
                machine: "m0".into(),
                job: 1,
                size: 4,
                wait: false,
                walltime: None,
                pattern: None,
                tenant: None,
            }
        );
        // An integer walltime is accepted (JSON does not distinguish).
        let parsed = Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"wait":true,"walltime":30}"#,
        )
        .unwrap();
        assert_eq!(
            parsed,
            Request::Alloc {
                machine: "m0".into(),
                job: 1,
                size: 4,
                wait: true,
                walltime: Some(30.0),
                pattern: None,
                tenant: None,
            }
        );
        // Pattern names are validated at the boundary: an unknown name is
        // a parse error, not a silently pattern-oblivious job, and a
        // non-string pattern is refused like any other mistyped field.
        let parsed = Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"pattern":"n-body"}"#,
        )
        .unwrap();
        assert!(matches!(
            parsed,
            Request::Alloc {
                pattern: Some(CommPattern::NBody),
                ..
            }
        ));
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"pattern":"zigzag"}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"pattern":7}"#
        )
        .is_err());
        // A non-numeric walltime is a parse error, not a silent None.
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"walltime":"soon"}"#
        )
        .is_err());
        // So are non-finite and non-positive estimates: `1e999` parses
        // to infinity, and zero/negative walltimes would corrupt the
        // reservation comparisons downstream. All refused at the wire.
        for bad in ["1e999", "-1e999", "0", "-30", "0.0"] {
            let line =
                format!(r#"{{"op":"alloc","machine":"m0","job":1,"size":4,"walltime":{bad}}}"#);
            assert!(
                Request::from_line(&line).is_err(),
                "walltime {bad} must be rejected at the protocol boundary"
            );
        }
        // So are non-string register specs (they must not fall back to
        // the FCFS/Hilbert defaults).
        assert!(Request::from_line(
            r#"{"op":"register","machine":"m0","mesh":"4x4","scheduler":5}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"register","machine":"m0","mesh":"4x4","allocator":5}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"register","machine":"m0","mesh":"4x4","strategy":[]}"#
        )
        .is_err());
        // And a non-boolean wait (it must not silently reject-on-full).
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"wait":"true"}"#
        )
        .is_err());
    }

    #[test]
    fn job_refs_cover_bare_member_and_pooled_forms() {
        // The bare compatibility form renders exactly the pre-refactor
        // wire bytes.
        let release = Request::Release {
            machine: Some("m0".into()),
            job: JobRef::Bare(7),
        };
        assert_eq!(
            release.to_line(),
            r#"{"op":"release","machine":"m0","job":7}"#
        );
        // Qualified refs parse from their string spellings.
        assert_eq!(JobRef::parse_str("7").unwrap(), JobRef::Bare(7),);
        assert_eq!(
            JobRef::parse_str("m0/7").unwrap(),
            JobRef::Member {
                machine: "m0".into(),
                id: 7,
            }
        );
        assert_eq!(
            JobRef::parse_str("grid/m0/7").unwrap(),
            JobRef::Pooled {
                pool: "grid".into(),
                machine: "m0".into(),
                id: 7,
            }
        );
        // Display round-trips every form.
        for s in ["7", "m0/7", "grid/m0/7"] {
            assert_eq!(JobRef::parse_str(s).unwrap().to_string(), s);
        }
        // Malformed spellings are parse errors.
        for bad in ["", "/", "m0/", "/7", "a/b/c/7", "m0/seven", "grid/m0/"] {
            assert!(JobRef::parse_str(bad).is_err(), "ref {bad:?} must fail");
        }
        // A machine-less release parses only with a qualified ref.
        assert!(Request::from_line(r#"{"op":"release","job":"m0/7"}"#).is_ok());
        assert!(Request::from_line(r#"{"op":"release","job":7}"#).is_err());
        assert!(Request::from_line(r#"{"op":"poll","job":"grid/m0/7"}"#).is_ok());
        assert!(Request::from_line(r#"{"op":"poll","job":9}"#).is_err());
        // Non-integer, non-string refs are refused.
        assert!(Request::from_line(r#"{"op":"release","machine":"m0","job":[7]}"#).is_err());
    }

    #[test]
    fn tenant_ops_validate_their_fields() {
        // hello requires the tenant name.
        assert!(Request::from_line(r#"{"op":"hello"}"#).is_err());
        // set_tenant bounds: weight finite positive, quota finite
        // non-negative.
        for bad in [
            r#"{"op":"set_tenant","tenant":"t","weight":0}"#,
            r#"{"op":"set_tenant","tenant":"t","weight":-2}"#,
            r#"{"op":"set_tenant","tenant":"t","weight":1e999}"#,
            r#"{"op":"set_tenant","tenant":"t","quota":-1}"#,
            r#"{"op":"set_tenant","tenant":"t","quota":1e999}"#,
            r#"{"op":"set_tenant","tenant":"t","max_in_flight":"many"}"#,
            r#"{"op":"set_tenant","weight":1.0}"#,
        ] {
            assert!(Request::from_line(bad).is_err(), "line {bad} must fail");
        }
        // A mistyped alloc tenant is a parse error, not a silent
        // default-tenant attribution.
        assert!(
            Request::from_line(r#"{"op":"alloc","machine":"m0","job":1,"size":4,"tenant":7}"#)
                .is_err()
        );
        assert!(Request::from_line(r#"{"op":"set_fair_share","machine":"m0"}"#).is_err());
        // Coded errors round-trip their detail payloads.
        let line = r#"{"ok":false,"error":"over quota","code":"quota_exceeded","detail":{"usage":90.5,"limit":100.5}}"#;
        match Response::from_line(line).unwrap() {
            Response::Error { code, detail, .. } => {
                assert_eq!(code.as_deref(), Some("quota_exceeded"));
                let d = detail.unwrap();
                assert_eq!(d.get("usage").and_then(Value::as_f64), Some(90.5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"alloc","machine":"m0"}"#).is_err());
        assert!(
            Response::from_line(r#"{"op":"pong"}"#).is_err(),
            "missing ok"
        );
    }

    #[test]
    fn observability_ops_validate_their_fields() {
        // set_trace requires a boolean.
        assert!(Request::from_line(r#"{"op":"set_trace"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"set_trace","enabled":"yes"}"#).is_err());
        // trace defaults are all-events, no-clear.
        assert_eq!(
            Request::from_line(r#"{"op":"trace"}"#).unwrap(),
            Request::Trace {
                limit: None,
                clear: false,
            }
        );
        assert!(Request::from_line(r#"{"op":"trace","limit":"many"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"trace","clear":1}"#).is_err());
        // set_trace's calibration rider is optional but typed.
        assert_eq!(
            Request::from_line(r#"{"op":"set_trace","enabled":true}"#).unwrap(),
            Request::SetTrace {
                enabled: true,
                calibration: None,
            }
        );
        assert!(
            Request::from_line(r#"{"op":"set_trace","enabled":true,"calibration":1}"#).is_err()
        );
        // metrics defaults to JSON and refuses unknown formats.
        assert_eq!(
            Request::from_line(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics {
                format: "json".into(),
                window: None,
            }
        );
        assert!(Request::from_line(r#"{"op":"metrics","format":"xml"}"#).is_err());
        // Windows are validated at the boundary: only the two canonical
        // trailing spans exist.
        assert_eq!(
            Request::from_line(r#"{"op":"metrics","window":"10s"}"#).unwrap(),
            Request::Metrics {
                format: "json".into(),
                window: Some("10s".into()),
            }
        );
        assert!(Request::from_line(r#"{"op":"metrics","window":"5m"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"metrics","window":10}"#).is_err());
        // A trace line without "decisions" (a pre-calibration daemon)
        // still parses, as an empty decision drain.
        assert_eq!(
            Response::from_line(
                r#"{"ok":true,"op":"trace","enabled":false,"dropped":0,"events":[]}"#
            )
            .unwrap(),
            Response::Trace {
                events: vec![],
                dropped: 0,
                enabled: false,
                decisions: vec![],
            }
        );
        // An infinite reserved start never travels: the rendering drops
        // it rather than emitting invalid JSON.
        let waiting = Response::Waiting {
            job: 1,
            position: 1,
            reserved_start: Some(f64::INFINITY),
            explain: None,
            machine: None,
        };
        let line = waiting.to_line();
        assert!(!line.contains("reserved_start"), "line was {line}");
        assert_eq!(
            Response::from_line(&line).unwrap(),
            Response::Waiting {
                job: 1,
                position: 1,
                reserved_start: None,
                explain: None,
                machine: None,
            }
        );
    }

    #[test]
    fn batches_do_not_nest_and_propagate_member_errors() {
        assert!(
            Request::from_line(r#"{"op":"batch","requests":[{"op":"batch","requests":[]}]}"#)
                .is_err()
        );
        // One malformed member rejects the whole batch (a silent drop
        // would desynchronise request/response pairing).
        assert!(Request::from_line(
            r#"{"op":"batch","requests":[{"op":"ping"},{"op":"frobnicate"}]}"#
        )
        .is_err());
        assert!(Request::from_line(r#"{"op":"batch"}"#).is_err());
        let parsed = Request::from_line(r#"{"op":"batch","requests":[{"op":"ping"}]}"#).unwrap();
        assert_eq!(parsed, Request::Batch(vec![Request::Ping]));
    }
}
