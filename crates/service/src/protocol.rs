//! The newline-delimited JSON wire protocol.
//!
//! One JSON object per line in each direction. Requests carry an `"op"`
//! discriminator; responses always carry `"ok"` plus op-specific fields
//! (see the crate docs for the full vocabulary). Node identifiers travel
//! as plain integers (dense [`commalloc_mesh::NodeId`] indices).
//!
//! The [`Request`] and [`Response`] enums implement conversion to and from
//! the JSON value tree by hand — the shapes are data-carrying enums, which
//! the workspace's derive shim deliberately does not cover, and hand-rolled
//! conversions double as precise wire-format documentation.

use commalloc_mesh::NodeId;
use commalloc_workload::CommPattern;
use serde::{Error, Map, Value};

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a machine. `mesh` is `"WxH"` (2-D) or `"WxHxD"` (3-D);
    /// `allocator` names an [`commalloc_alloc::AllocatorKind`] (2-D) or a
    /// 3-D curve kind; `strategy` names a selection strategy (3-D only);
    /// `scheduler` names a scheduling policy (`"fcfs"`, `"backfill"`,
    /// `"easy"`, `"conservative"` or a full `SchedulerKind` name).
    Register {
        /// Machine name.
        machine: String,
        /// Mesh dimension spec.
        mesh: String,
        /// Allocator (2-D) or curve (3-D) spec; `None` = default.
        allocator: Option<String>,
        /// Selection strategy spec (3-D); `None` = Best Fit.
        strategy: Option<String>,
        /// Scheduling-policy spec; `None` = FCFS (the paper's policy).
        scheduler: Option<String>,
        /// Pool to join (cluster routing); `None` = standalone machine.
        pool: Option<String>,
    },
    /// Allocate `size` processors for `job` on `machine`; `wait` queues
    /// the request when it cannot be served immediately (admission is
    /// governed by the machine's scheduling policy). A machine of
    /// `"@pool"` routes the request across the pool's members under the
    /// pool's [`crate::cluster::RoutingPolicy`]; the response then names
    /// the machine that took the job.
    Alloc {
        /// Machine name, or `"@pool"` for cluster routing.
        machine: String,
        /// Job identifier (client-chosen, unique per machine).
        job: u64,
        /// Number of processors.
        size: usize,
        /// Queue instead of rejecting on capacity shortfall.
        wait: bool,
        /// Runtime estimate in seconds (the reservation input of EASY
        /// and conservative backfilling; FCFS/first-fit ignore it).
        /// Must be finite and positive when present — the wire parser
        /// and the service both reject anything else.
        walltime: Option<f64>,
        /// Declared communication pattern of the job (travels as the
        /// pattern's canonical name, e.g. `"all-to-all"`). Feeds the
        /// communication-aware routing policy and the allocator's
        /// contention-scored placement; `None` = pattern-oblivious.
        pattern: Option<CommPattern>,
    },
    /// Switch the scheduling policy of a machine at runtime.
    SetScheduler {
        /// Machine name.
        machine: String,
        /// Scheduling-policy spec (same grammar as `Register`).
        scheduler: String,
    },
    /// Switch the routing policy of a machine pool at runtime.
    SetRouter {
        /// Pool name (without the `@` sigil).
        pool: String,
        /// Routing-policy spec (`round-robin`/`rr`, `least-loaded`/`ll`,
        /// `shortest-queue`/`sq`, `power-of-two`/`p2c`).
        policy: String,
    },
    /// Release the processors of `job` (or cancel it while queued).
    Release {
        /// Machine name.
        machine: String,
        /// Job identifier.
        job: u64,
    },
    /// Ask where `job` currently stands.
    Poll {
        /// Machine name.
        machine: String,
        /// Job identifier.
        job: u64,
    },
    /// Occupancy snapshot of a machine.
    Query {
        /// Machine name.
        machine: String,
    },
    /// Operation counters of a machine (plus server totals).
    Stats {
        /// Machine name.
        machine: String,
    },
    /// Operational counters of the write-ahead journal (recovery epoch,
    /// appended records, segments, fsync policy); answers
    /// `{"enabled": false}` on a daemon running without `--journal`.
    JournalStats,
    /// Toggle the flight recorder (and optionally the placement
    /// calibration plane) at runtime. While off, request handling pays
    /// one relaxed atomic load per plane and emits nothing.
    SetTrace {
        /// Desired recorder state.
        enabled: bool,
        /// Desired calibration-plane state; `None` leaves it unchanged
        /// (the planes toggle independently).
        calibration: Option<bool>,
    },
    /// Drain the flight recorder: recent span events across all ring
    /// shards, merged in start-time order, plus buffered routing
    /// decisions.
    Trace {
        /// Keep only the most recent `limit` events; `None` = all.
        limit: Option<usize>,
        /// Reset the rings (and drop counters) after reading.
        clear: bool,
    },
    /// Stage-latency histograms and machine counters, as JSON
    /// (`format: "json"`, the default) or a Prometheus-style text
    /// exposition (`format: "prometheus"`).
    Metrics {
        /// `"json"` or `"prometheus"` (validated at parse time).
        format: String,
        /// Restrict stage and pool histograms to a trailing time
        /// window: `"10s"` or `"60s"` (validated at parse time);
        /// `None` = cumulative since boot.
        window: Option<String>,
    },
    /// The placement calibration report: per-pattern × per-policy
    /// predicted-vs-realized histograms and rank correlations, joined
    /// at release time.
    Calibration,
    /// Names of all registered machines.
    List,
    /// Liveness check.
    Ping,
    /// Several requests on one wire line, answered by one
    /// [`Response::Batch`] in the same order — the round-trip saver for
    /// closed-loop clients. Batches do not nest.
    Batch(Vec<Request>),
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed (unknown machine, duplicate job, parse
    /// error, ...).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Registration succeeded.
    Registered {
        /// Machine name.
        machine: String,
    },
    /// Allocation granted immediately.
    Granted {
        /// Job identifier.
        job: u64,
        /// Granted processors, in rank order.
        nodes: Vec<NodeId>,
        /// The machine that took the job — present exactly when the
        /// request was routed through a pool (`"@pool"` address).
        machine: Option<String>,
    },
    /// Allocation queued (FCFS).
    Queued {
        /// Job identifier.
        job: u64,
        /// 1-based queue position at enqueue time.
        position: usize,
        /// The machine the job queues on (pool-routed requests only).
        machine: Option<String>,
    },
    /// Allocation rejected (no capacity, `wait` unset).
    Rejected {
        /// Job identifier.
        job: u64,
        /// Human-readable reason.
        reason: String,
        /// The machine that rejected the job (pool-routed requests only).
        machine: Option<String>,
    },
    /// Release succeeded; `granted` lists jobs admitted from the queue.
    Released {
        /// The released (or cancelled) job.
        job: u64,
        /// Jobs granted from the queue by this release, in grant order.
        granted: Vec<(u64, Vec<NodeId>)>,
    },
    /// The scheduling policy was switched; `granted` lists jobs the
    /// re-drain admitted from the queue.
    SchedulerSet {
        /// Machine name.
        machine: String,
        /// Canonical name of the now-active policy.
        scheduler: String,
        /// Jobs granted by the policy switch, in grant order.
        granted: Vec<(u64, Vec<NodeId>)>,
    },
    /// The routing policy of a pool was switched.
    RouterSet {
        /// Pool name.
        pool: String,
        /// Canonical name of the now-active routing policy.
        policy: String,
    },
    /// Poll result: the job runs on these processors.
    Running {
        /// Job identifier.
        job: u64,
        /// The processors the job holds.
        nodes: Vec<NodeId>,
    },
    /// Poll result: the job waits at this 1-based position.
    Waiting {
        /// Job identifier.
        job: u64,
        /// 1-based queue position.
        position: usize,
        /// The start time the scheduler currently promises the job
        /// (machine clock), when the policy plans one and it is finite:
        /// conservative backfilling reserves a start for every queued
        /// job, EASY for the head. Absent under FCFS/first-fit and for
        /// unplannable reservations.
        reserved_start: Option<f64>,
        /// Machine-readable explanation of what blocks the job right
        /// now (`code`, `detail`, and optionally `blocking_job` /
        /// `until` — the rendering of a scheduler
        /// [`commalloc::scheduler::BlockReason`]).
        explain: Option<Value>,
    },
    /// Poll result: the job is not present.
    Unknown {
        /// Job identifier.
        job: u64,
    },
    /// Occupancy snapshot (the `MachineSnapshot` serialised fields).
    Snapshot(Value),
    /// Counter snapshot.
    Stats(Value),
    /// Journal counter snapshot.
    JournalStats(Value),
    /// The flight recorder was toggled.
    TraceSet {
        /// The recorder state after the toggle.
        enabled: bool,
    },
    /// Drained flight-recorder events (each rendered per
    /// [`crate::trace::FlightRecorder::event_to_value`]).
    Trace {
        /// Span events in start-time order.
        events: Vec<Value>,
        /// Events overwritten in the rings before this drain.
        dropped: u64,
        /// Whether the recorder is currently enabled.
        enabled: bool,
        /// Buffered routing-decision records, oldest first (drained and
        /// cleared together with the span rings).
        decisions: Vec<Value>,
    },
    /// The placement calibration report.
    Calibration(Value),
    /// Metrics export: `metrics` is a JSON object for `format: "json"`,
    /// a string holding the text exposition for `format: "prometheus"`.
    Metrics {
        /// The format the payload is in.
        format: String,
        /// The payload.
        metrics: Value,
    },
    /// Registered machine names.
    Machines(Vec<String>),
    /// Liveness answer.
    Pong,
    /// Per-request answers to a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
}

pub(crate) fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in entries {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

pub(crate) fn str_value(s: &str) -> Value {
    Value::Str(s.to_string())
}

pub(crate) fn nodes_value(nodes: &[NodeId]) -> Value {
    Value::Array(nodes.iter().map(|n| Value::UInt(n.0 as u64)).collect())
}

pub(crate) fn get_str(v: &Value, key: &str) -> Result<String, Error> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| Error::msg(format!("missing or non-string field {key:?}")))
}

pub(crate) fn get_u64(v: &Value, key: &str) -> Result<u64, Error> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::msg(format!("missing or non-integer field {key:?}")))
}

pub(crate) fn get_f64_opt(v: &Value, key: &str) -> Result<Option<f64>, Error> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_f64()
            .map(Some)
            .ok_or_else(|| Error::msg(format!("non-numeric field {key:?}"))),
    }
}

/// The single boundary rule on walltime estimates: when present, an
/// estimate must be a finite, positive number of seconds. Every
/// validation site — the wire parser below, the typed client, the live
/// `allocate` path and the journal-restore fold — consults this one
/// predicate, so the rule cannot drift between layers.
pub(crate) fn walltime_is_valid(w: f64) -> bool {
    w.is_finite() && w > 0.0
}

/// A walltime estimate: optional, but gated on [`walltime_is_valid`].
/// JSON itself cannot spell `NaN`, but it can spell `1e999` (which
/// parses to infinity) and `0` / negatives — none of which may reach
/// the reservation math, where non-finite ordering silently corrupts
/// shadow times. Rejected here, at the wire boundary, so a malformed
/// estimate is a parse error rather than a grant with poisoned
/// scheduling state.
pub(crate) fn get_walltime(v: &Value) -> Result<Option<f64>, Error> {
    match get_f64_opt(v, "walltime")? {
        Some(w) if !walltime_is_valid(w) => Err(Error::msg(format!(
            "field \"walltime\" must be a finite, positive number of seconds, got {w}"
        ))),
        other => Ok(other),
    }
}

/// An optional communication pattern, validated against the known
/// pattern names at the wire boundary — an unknown name is a parse
/// error rather than a silently pattern-oblivious job.
pub(crate) fn get_pattern(v: &Value) -> Result<Option<CommPattern>, Error> {
    match get_str_opt(v, "pattern")? {
        None => Ok(None),
        Some(name) => CommPattern::parse(&name)
            .map(Some)
            .ok_or_else(|| Error::msg(format!("unknown communication pattern {name:?}"))),
    }
}

/// An optional string field: absent/null is `None`, but a present value
/// of the wrong type is a parse error rather than a silent `None` (a
/// mistyped `"scheduler":5` must not quietly register an FCFS machine).
pub(crate) fn get_str_opt(v: &Value, key: &str) -> Result<Option<String>, Error> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| Error::msg(format!("non-string field {key:?}"))),
    }
}

/// Renders a `(job, nodes)` grant list (shared by the `release` and
/// `set_scheduler` responses).
fn granted_value(granted: &[(u64, Vec<NodeId>)]) -> Value {
    Value::Array(
        granted
            .iter()
            .map(|(id, nodes)| {
                obj(vec![
                    ("job", Value::UInt(*id)),
                    ("nodes", nodes_value(nodes)),
                ])
            })
            .collect(),
    )
}

/// Parses a `(job, nodes)` grant list.
fn get_granted(v: &Value) -> Result<Vec<(u64, Vec<NodeId>)>, Error> {
    let arr = v
        .get("granted")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::msg("missing \"granted\" array"))?;
    arr.iter()
        .map(|entry| Ok((get_u64(entry, "job")?, get_nodes(entry, "nodes")?)))
        .collect()
}

pub(crate) fn get_nodes(v: &Value, key: &str) -> Result<Vec<NodeId>, Error> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| Error::msg(format!("missing or non-array field {key:?}")))?;
    arr.iter()
        .map(|n| {
            n.as_u64()
                .map(|id| NodeId(id as u32))
                .ok_or_else(|| Error::msg("non-integer node id"))
        })
        .collect()
}

impl Request {
    /// Renders the request as its wire value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
                pool,
            } => {
                let mut entries = vec![
                    ("op", str_value("register")),
                    ("machine", str_value(machine)),
                    ("mesh", str_value(mesh)),
                ];
                if let Some(a) = allocator {
                    entries.push(("allocator", str_value(a)));
                }
                if let Some(s) = strategy {
                    entries.push(("strategy", str_value(s)));
                }
                if let Some(s) = scheduler {
                    entries.push(("scheduler", str_value(s)));
                }
                if let Some(p) = pool {
                    entries.push(("pool", str_value(p)));
                }
                obj(entries)
            }
            Request::Alloc {
                machine,
                job,
                size,
                wait,
                walltime,
                pattern,
            } => {
                let mut entries = vec![
                    ("op", str_value("alloc")),
                    ("machine", str_value(machine)),
                    ("job", Value::UInt(*job)),
                    ("size", Value::UInt(*size as u64)),
                    ("wait", Value::Bool(*wait)),
                ];
                if let Some(w) = walltime {
                    entries.push(("walltime", Value::Float(*w)));
                }
                if let Some(p) = pattern {
                    entries.push(("pattern", str_value(p.name())));
                }
                obj(entries)
            }
            Request::SetScheduler { machine, scheduler } => obj(vec![
                ("op", str_value("set_scheduler")),
                ("machine", str_value(machine)),
                ("scheduler", str_value(scheduler)),
            ]),
            Request::SetRouter { pool, policy } => obj(vec![
                ("op", str_value("set_router")),
                ("pool", str_value(pool)),
                ("policy", str_value(policy)),
            ]),
            Request::Release { machine, job } => obj(vec![
                ("op", str_value("release")),
                ("machine", str_value(machine)),
                ("job", Value::UInt(*job)),
            ]),
            Request::Poll { machine, job } => obj(vec![
                ("op", str_value("poll")),
                ("machine", str_value(machine)),
                ("job", Value::UInt(*job)),
            ]),
            Request::Query { machine } => obj(vec![
                ("op", str_value("query")),
                ("machine", str_value(machine)),
            ]),
            Request::Stats { machine } => obj(vec![
                ("op", str_value("stats")),
                ("machine", str_value(machine)),
            ]),
            Request::JournalStats => obj(vec![("op", str_value("journal_stats"))]),
            Request::SetTrace {
                enabled,
                calibration,
            } => {
                let mut entries = vec![
                    ("op", str_value("set_trace")),
                    ("enabled", Value::Bool(*enabled)),
                ];
                if let Some(c) = calibration {
                    entries.push(("calibration", Value::Bool(*c)));
                }
                obj(entries)
            }
            Request::Trace { limit, clear } => {
                let mut entries = vec![("op", str_value("trace"))];
                if let Some(limit) = limit {
                    entries.push(("limit", Value::UInt(*limit as u64)));
                }
                if *clear {
                    entries.push(("clear", Value::Bool(true)));
                }
                obj(entries)
            }
            Request::Metrics { format, window } => {
                let mut entries = vec![("op", str_value("metrics")), ("format", str_value(format))];
                if let Some(w) = window {
                    entries.push(("window", str_value(w)));
                }
                obj(entries)
            }
            Request::Calibration => obj(vec![("op", str_value("calibration"))]),
            Request::List => obj(vec![("op", str_value("list"))]),
            Request::Ping => obj(vec![("op", str_value("ping"))]),
            Request::Batch(requests) => obj(vec![
                ("op", str_value("batch")),
                (
                    "requests",
                    Value::Array(requests.iter().map(Request::to_value).collect()),
                ),
            ]),
        }
    }

    /// Parses a request from its wire value.
    pub fn from_value(v: &Value) -> Result<Request, Error> {
        let op = get_str(v, "op")?;
        match op.as_str() {
            "register" => Ok(Request::Register {
                machine: get_str(v, "machine")?,
                mesh: get_str(v, "mesh")?,
                allocator: get_str_opt(v, "allocator")?,
                strategy: get_str_opt(v, "strategy")?,
                scheduler: get_str_opt(v, "scheduler")?,
                pool: get_str_opt(v, "pool")?,
            }),
            "alloc" => Ok(Request::Alloc {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
                size: get_u64(v, "size")? as usize,
                wait: match v.get("wait") {
                    None | Some(Value::Null) => false,
                    Some(value) => value
                        .as_bool()
                        .ok_or_else(|| Error::msg("non-boolean field \"wait\""))?,
                },
                walltime: get_walltime(v)?,
                pattern: get_pattern(v)?,
            }),
            "set_scheduler" => Ok(Request::SetScheduler {
                machine: get_str(v, "machine")?,
                scheduler: get_str(v, "scheduler")?,
            }),
            "set_router" => Ok(Request::SetRouter {
                pool: get_str(v, "pool")?,
                policy: get_str(v, "policy")?,
            }),
            "batch" => {
                let arr = v
                    .get("requests")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"requests\" array"))?;
                let requests = arr
                    .iter()
                    .map(Request::from_value)
                    .collect::<Result<Vec<_>, Error>>()?;
                if requests.iter().any(|r| matches!(r, Request::Batch(_))) {
                    return Err(Error::msg("batches do not nest"));
                }
                Ok(Request::Batch(requests))
            }
            "release" => Ok(Request::Release {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
            }),
            "poll" => Ok(Request::Poll {
                machine: get_str(v, "machine")?,
                job: get_u64(v, "job")?,
            }),
            "query" => Ok(Request::Query {
                machine: get_str(v, "machine")?,
            }),
            "stats" => Ok(Request::Stats {
                machine: get_str(v, "machine")?,
            }),
            "journal_stats" => Ok(Request::JournalStats),
            "set_trace" => Ok(Request::SetTrace {
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
                calibration: match v.get("calibration") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(
                        value
                            .as_bool()
                            .ok_or_else(|| Error::msg("non-boolean field \"calibration\""))?,
                    ),
                },
            }),
            "trace" => Ok(Request::Trace {
                limit: match v.get("limit") {
                    None | Some(Value::Null) => None,
                    Some(value) => Some(
                        value
                            .as_u64()
                            .ok_or_else(|| Error::msg("non-integer field \"limit\""))?
                            as usize,
                    ),
                },
                clear: match v.get("clear") {
                    None | Some(Value::Null) => false,
                    Some(value) => value
                        .as_bool()
                        .ok_or_else(|| Error::msg("non-boolean field \"clear\""))?,
                },
            }),
            "metrics" => {
                let format = get_str_opt(v, "format")?.unwrap_or_else(|| "json".to_string());
                if format != "json" && format != "prometheus" {
                    return Err(Error::msg(format!(
                        "unknown metrics format {format:?} (expected \"json\" or \"prometheus\")"
                    )));
                }
                let window = get_str_opt(v, "window")?;
                if let Some(w) = &window {
                    if w != "10s" && w != "60s" {
                        return Err(Error::msg(format!(
                            "unknown metrics window {w:?} (expected \"10s\" or \"60s\")"
                        )));
                    }
                }
                Ok(Request::Metrics { format, window })
            }
            "calibration" => Ok(Request::Calibration),
            "list" => Ok(Request::List),
            "ping" => Ok(Request::Ping),
            other => Err(Error::msg(format!("unknown op {other:?}"))),
        }
    }

    /// Parses a request from one wire line.
    pub fn from_line(line: &str) -> Result<Request, Error> {
        let value: Value = serde_json::from_str(line)?;
        Request::from_value(&value)
    }

    /// Renders the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("value rendering is infallible")
    }
}

impl Response {
    /// Renders the response as its wire value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Error { message } => obj(vec![
                ("ok", Value::Bool(false)),
                ("error", str_value(message)),
            ]),
            Response::Registered { machine } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("register")),
                ("machine", str_value(machine)),
            ]),
            Response::Granted {
                job,
                nodes,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("alloc")),
                    ("status", str_value("granted")),
                    ("job", Value::UInt(*job)),
                    ("nodes", nodes_value(nodes)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Queued {
                job,
                position,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("alloc")),
                    ("status", str_value("queued")),
                    ("job", Value::UInt(*job)),
                    ("position", Value::UInt(*position as u64)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Rejected {
                job,
                reason,
                machine,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("alloc")),
                    ("status", str_value("rejected")),
                    ("job", Value::UInt(*job)),
                    ("reason", str_value(reason)),
                ];
                if let Some(m) = machine {
                    entries.push(("machine", str_value(m)));
                }
                obj(entries)
            }
            Response::Released { job, granted } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("release")),
                ("job", Value::UInt(*job)),
                ("granted", granted_value(granted)),
            ]),
            Response::SchedulerSet {
                machine,
                scheduler,
                granted,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_scheduler")),
                ("machine", str_value(machine)),
                ("scheduler", str_value(scheduler)),
                ("granted", granted_value(granted)),
            ]),
            Response::RouterSet { pool, policy } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_router")),
                ("pool", str_value(pool)),
                ("policy", str_value(policy)),
            ]),
            Response::Running { job, nodes } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("poll")),
                ("state", str_value("running")),
                ("job", Value::UInt(*job)),
                ("nodes", nodes_value(nodes)),
            ]),
            Response::Waiting {
                job,
                position,
                reserved_start,
                explain,
            } => {
                let mut entries = vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("poll")),
                    ("state", str_value("queued")),
                    ("job", Value::UInt(*job)),
                    ("position", Value::UInt(*position as u64)),
                ];
                // Only finite promises travel: JSON cannot spell the
                // infinity an unplannable reservation would need, and
                // the explain already marks that case.
                if let Some(start) = reserved_start.filter(|s| s.is_finite()) {
                    entries.push(("reserved_start", Value::Float(start)));
                }
                if let Some(explain) = explain {
                    entries.push(("explain", explain.clone()));
                }
                obj(entries)
            }
            Response::Unknown { job } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("poll")),
                ("state", str_value("unknown")),
                ("job", Value::UInt(*job)),
            ]),
            Response::Snapshot(snapshot) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("query")),
                ("snapshot", snapshot.clone()),
            ]),
            Response::Stats(stats) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("stats")),
                ("stats", stats.clone()),
            ]),
            Response::JournalStats(stats) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("journal_stats")),
                ("journal", stats.clone()),
            ]),
            Response::TraceSet { enabled } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("set_trace")),
                ("enabled", Value::Bool(*enabled)),
            ]),
            Response::Trace {
                events,
                dropped,
                enabled,
                decisions,
            } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("trace")),
                ("enabled", Value::Bool(*enabled)),
                ("dropped", Value::UInt(*dropped)),
                ("events", Value::Array(events.clone())),
                ("decisions", Value::Array(decisions.clone())),
            ]),
            Response::Calibration(report) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("calibration")),
                ("calibration", report.clone()),
            ]),
            Response::Metrics { format, metrics } => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("metrics")),
                ("format", str_value(format)),
                ("metrics", metrics.clone()),
            ]),
            Response::Machines(names) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("list")),
                (
                    "machines",
                    Value::Array(names.iter().map(|n| str_value(n)).collect()),
                ),
            ]),
            Response::Pong => obj(vec![("ok", Value::Bool(true)), ("op", str_value("pong"))]),
            Response::Batch(responses) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("batch")),
                (
                    "responses",
                    Value::Array(responses.iter().map(Response::to_value).collect()),
                ),
            ]),
        }
    }

    /// Parses a response from its wire value.
    pub fn from_value(v: &Value) -> Result<Response, Error> {
        let ok = v
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| Error::msg("missing \"ok\" field"))?;
        if !ok {
            return Ok(Response::Error {
                message: get_str(v, "error")?,
            });
        }
        let op = get_str(v, "op")?;
        match op.as_str() {
            "register" => Ok(Response::Registered {
                machine: get_str(v, "machine")?,
            }),
            "alloc" => match get_str(v, "status")?.as_str() {
                "granted" => Ok(Response::Granted {
                    job: get_u64(v, "job")?,
                    nodes: get_nodes(v, "nodes")?,
                    machine: get_str_opt(v, "machine")?,
                }),
                "queued" => Ok(Response::Queued {
                    job: get_u64(v, "job")?,
                    position: get_u64(v, "position")? as usize,
                    machine: get_str_opt(v, "machine")?,
                }),
                "rejected" => Ok(Response::Rejected {
                    job: get_u64(v, "job")?,
                    reason: get_str(v, "reason")?,
                    machine: get_str_opt(v, "machine")?,
                }),
                other => Err(Error::msg(format!("unknown alloc status {other:?}"))),
            },
            "release" => Ok(Response::Released {
                job: get_u64(v, "job")?,
                granted: get_granted(v)?,
            }),
            "set_scheduler" => Ok(Response::SchedulerSet {
                machine: get_str(v, "machine")?,
                scheduler: get_str(v, "scheduler")?,
                granted: get_granted(v)?,
            }),
            "set_router" => Ok(Response::RouterSet {
                pool: get_str(v, "pool")?,
                policy: get_str(v, "policy")?,
            }),
            "poll" => match get_str(v, "state")?.as_str() {
                "running" => Ok(Response::Running {
                    job: get_u64(v, "job")?,
                    nodes: get_nodes(v, "nodes")?,
                }),
                "queued" => Ok(Response::Waiting {
                    job: get_u64(v, "job")?,
                    position: get_u64(v, "position")? as usize,
                    reserved_start: get_f64_opt(v, "reserved_start")?,
                    explain: match v.get("explain") {
                        None | Some(Value::Null) => None,
                        Some(value) => Some(value.clone()),
                    },
                }),
                "unknown" => Ok(Response::Unknown {
                    job: get_u64(v, "job")?,
                }),
                other => Err(Error::msg(format!("unknown poll state {other:?}"))),
            },
            "query" => Ok(Response::Snapshot(
                v.get("snapshot")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"snapshot\""))?,
            )),
            "stats" => Ok(Response::Stats(
                v.get("stats")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"stats\""))?,
            )),
            "journal_stats" => Ok(Response::JournalStats(
                v.get("journal")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"journal\""))?,
            )),
            "set_trace" => Ok(Response::TraceSet {
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
            }),
            "trace" => Ok(Response::Trace {
                events: v
                    .get("events")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"events\" array"))?
                    .to_vec(),
                dropped: get_u64(v, "dropped")?,
                enabled: v
                    .get("enabled")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| Error::msg("missing or non-boolean field \"enabled\""))?,
                // Absent on lines from pre-calibration daemons: decode
                // as an empty drain rather than a parse error.
                decisions: match v.get("decisions") {
                    None | Some(Value::Null) => Vec::new(),
                    Some(value) => value
                        .as_array()
                        .ok_or_else(|| Error::msg("non-array field \"decisions\""))?
                        .to_vec(),
                },
            }),
            "calibration" => Ok(Response::Calibration(
                v.get("calibration")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"calibration\""))?,
            )),
            "metrics" => Ok(Response::Metrics {
                format: get_str(v, "format")?,
                metrics: v
                    .get("metrics")
                    .cloned()
                    .ok_or_else(|| Error::msg("missing \"metrics\""))?,
            }),
            "list" => {
                let arr = v
                    .get("machines")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"machines\" array"))?;
                arr.iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| Error::msg("non-string machine name"))
                    })
                    .collect::<Result<Vec<_>, Error>>()
                    .map(Response::Machines)
            }
            "pong" => Ok(Response::Pong),
            "batch" => {
                let arr = v
                    .get("responses")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::msg("missing \"responses\" array"))?;
                arr.iter()
                    .map(Response::from_value)
                    .collect::<Result<Vec<_>, Error>>()
                    .map(Response::Batch)
            }
            other => Err(Error::msg(format!("unknown response op {other:?}"))),
        }
    }

    /// Parses a response from one wire line.
    pub fn from_line(line: &str) -> Result<Response, Error> {
        let value: Value = serde_json::from_str(line)?;
        Response::from_value(&value)
    }

    /// Renders the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("value rendering is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let requests = vec![
            Request::Register {
                machine: "m0".into(),
                mesh: "16x16".into(),
                allocator: Some("Hilbert w/BF".into()),
                strategy: None,
                scheduler: Some("easy".into()),
                pool: Some("grid".into()),
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 7,
                size: 17,
                wait: true,
                walltime: Some(120.5),
                pattern: None,
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 8,
                size: 1,
                wait: false,
                walltime: None,
                pattern: Some(CommPattern::AllToAll),
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 12,
                size: 9,
                wait: true,
                walltime: Some(60.0),
                pattern: Some(CommPattern::NBody),
            },
            Request::SetScheduler {
                machine: "m0".into(),
                scheduler: "first-fit backfill".into(),
            },
            Request::SetRouter {
                pool: "grid".into(),
                policy: "power-of-two".into(),
            },
            Request::Batch(vec![
                Request::Ping,
                Request::Alloc {
                    machine: "@grid".into(),
                    job: 9,
                    size: 3,
                    wait: true,
                    walltime: None,
                    pattern: Some(CommPattern::Stencil2D),
                },
            ]),
            Request::Release {
                machine: "m0".into(),
                job: 7,
            },
            Request::Poll {
                machine: "m0".into(),
                job: 8,
            },
            Request::Query {
                machine: "m0".into(),
            },
            Request::Stats {
                machine: "m0".into(),
            },
            Request::JournalStats,
            Request::SetTrace {
                enabled: true,
                calibration: None,
            },
            Request::SetTrace {
                enabled: false,
                calibration: Some(true),
            },
            Request::SetTrace {
                enabled: true,
                calibration: Some(false),
            },
            Request::Trace {
                limit: None,
                clear: false,
            },
            Request::Trace {
                limit: Some(100),
                clear: true,
            },
            Request::Metrics {
                format: "json".into(),
                window: None,
            },
            Request::Metrics {
                format: "prometheus".into(),
                window: Some("10s".into()),
            },
            Request::Metrics {
                format: "json".into(),
                window: Some("60s".into()),
            },
            Request::Calibration,
            Request::List,
            Request::Ping,
        ];
        for request in requests {
            let line = request.to_line();
            assert!(!line.contains('\n'), "wire lines must be single lines");
            let parsed = Request::from_line(&line).unwrap();
            assert_eq!(parsed, request, "line was {line}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_format() {
        let responses = vec![
            Response::Error {
                message: "unknown machine \"x\"".into(),
            },
            Response::Registered {
                machine: "m0".into(),
            },
            Response::Granted {
                job: 1,
                nodes: vec![NodeId(0), NodeId(255)],
                machine: None,
            },
            Response::Granted {
                job: 11,
                nodes: vec![NodeId(4)],
                machine: Some("m1".into()),
            },
            Response::Queued {
                job: 2,
                position: 3,
                machine: None,
            },
            Response::Rejected {
                job: 3,
                reason: "17 processors requested, 4 free".into(),
                machine: Some("m2".into()),
            },
            Response::Released {
                job: 1,
                granted: vec![(2, vec![NodeId(9)]), (4, vec![])],
            },
            Response::SchedulerSet {
                machine: "m0".into(),
                scheduler: "EASY backfill".into(),
                granted: vec![(7, vec![NodeId(1), NodeId(2)])],
            },
            Response::Running {
                job: 2,
                nodes: vec![NodeId(9)],
            },
            Response::Waiting {
                job: 5,
                position: 1,
                reserved_start: None,
                explain: None,
            },
            Response::Waiting {
                job: 5,
                position: 2,
                reserved_start: Some(120.5),
                explain: Some(obj(vec![
                    ("code", str_value("would_delay_reservation")),
                    ("blocking_job", Value::Int(3)),
                    ("until", Value::Float(120.5)),
                    (
                        "detail",
                        str_value("would delay job 3's reservation at t=120.5"),
                    ),
                ])),
            },
            Response::Unknown { job: 6 },
            Response::RouterSet {
                pool: "grid".into(),
                policy: "least-loaded".into(),
            },
            Response::JournalStats(Value::Object({
                let mut m = Map::new();
                m.insert("enabled".into(), Value::Bool(false));
                m
            })),
            Response::TraceSet { enabled: true },
            Response::Trace {
                events: vec![obj(vec![
                    ("request", Value::Int(1)),
                    ("stage", str_value("parse")),
                    ("ts_micros", Value::Int(12)),
                    ("dur_micros", Value::Int(3)),
                ])],
                dropped: 2,
                enabled: true,
                decisions: vec![obj(vec![
                    ("pool", str_value("grid")),
                    ("policy", str_value("comm-aware")),
                    ("winner", str_value("m1")),
                ])],
            },
            Response::Calibration(obj(vec![
                ("enabled", Value::Bool(true)),
                // `Int`, not `UInt`: the parser normalises i64-ranged
                // integers to `Int`, and the fixture must round-trip.
                ("joined", Value::Int(12)),
                ("cells", Value::Array(vec![])),
            ])),
            Response::Metrics {
                format: "json".into(),
                metrics: obj(vec![("stages", Value::Object(Map::new()))]),
            },
            Response::Metrics {
                format: "prometheus".into(),
                metrics: str_value("x_count 3\n"),
            },
            Response::Machines(vec!["a".into(), "b".into()]),
            Response::Pong,
            Response::Batch(vec![
                Response::Pong,
                Response::Error {
                    message: "unknown pool \"x\"".into(),
                },
            ]),
        ];
        for response in responses {
            let line = response.to_line();
            let parsed = Response::from_line(&line).unwrap();
            assert_eq!(parsed, response, "line was {line}");
        }
    }

    #[test]
    fn alloc_wait_and_walltime_default_to_absent() {
        let parsed =
            Request::from_line(r#"{"op":"alloc","machine":"m0","job":1,"size":4}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Alloc {
                machine: "m0".into(),
                job: 1,
                size: 4,
                wait: false,
                walltime: None,
                pattern: None,
            }
        );
        // An integer walltime is accepted (JSON does not distinguish).
        let parsed = Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"wait":true,"walltime":30}"#,
        )
        .unwrap();
        assert_eq!(
            parsed,
            Request::Alloc {
                machine: "m0".into(),
                job: 1,
                size: 4,
                wait: true,
                walltime: Some(30.0),
                pattern: None,
            }
        );
        // Pattern names are validated at the boundary: an unknown name is
        // a parse error, not a silently pattern-oblivious job, and a
        // non-string pattern is refused like any other mistyped field.
        let parsed = Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"pattern":"n-body"}"#,
        )
        .unwrap();
        assert!(matches!(
            parsed,
            Request::Alloc {
                pattern: Some(CommPattern::NBody),
                ..
            }
        ));
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"pattern":"zigzag"}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"pattern":7}"#
        )
        .is_err());
        // A non-numeric walltime is a parse error, not a silent None.
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"walltime":"soon"}"#
        )
        .is_err());
        // So are non-finite and non-positive estimates: `1e999` parses
        // to infinity, and zero/negative walltimes would corrupt the
        // reservation comparisons downstream. All refused at the wire.
        for bad in ["1e999", "-1e999", "0", "-30", "0.0"] {
            let line =
                format!(r#"{{"op":"alloc","machine":"m0","job":1,"size":4,"walltime":{bad}}}"#);
            assert!(
                Request::from_line(&line).is_err(),
                "walltime {bad} must be rejected at the protocol boundary"
            );
        }
        // So are non-string register specs (they must not fall back to
        // the FCFS/Hilbert defaults).
        assert!(Request::from_line(
            r#"{"op":"register","machine":"m0","mesh":"4x4","scheduler":5}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"register","machine":"m0","mesh":"4x4","allocator":5}"#
        )
        .is_err());
        assert!(Request::from_line(
            r#"{"op":"register","machine":"m0","mesh":"4x4","strategy":[]}"#
        )
        .is_err());
        // And a non-boolean wait (it must not silently reject-on-full).
        assert!(Request::from_line(
            r#"{"op":"alloc","machine":"m0","job":1,"size":4,"wait":"true"}"#
        )
        .is_err());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"alloc","machine":"m0"}"#).is_err());
        assert!(
            Response::from_line(r#"{"op":"pong"}"#).is_err(),
            "missing ok"
        );
    }

    #[test]
    fn observability_ops_validate_their_fields() {
        // set_trace requires a boolean.
        assert!(Request::from_line(r#"{"op":"set_trace"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"set_trace","enabled":"yes"}"#).is_err());
        // trace defaults are all-events, no-clear.
        assert_eq!(
            Request::from_line(r#"{"op":"trace"}"#).unwrap(),
            Request::Trace {
                limit: None,
                clear: false,
            }
        );
        assert!(Request::from_line(r#"{"op":"trace","limit":"many"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"trace","clear":1}"#).is_err());
        // set_trace's calibration rider is optional but typed.
        assert_eq!(
            Request::from_line(r#"{"op":"set_trace","enabled":true}"#).unwrap(),
            Request::SetTrace {
                enabled: true,
                calibration: None,
            }
        );
        assert!(
            Request::from_line(r#"{"op":"set_trace","enabled":true,"calibration":1}"#).is_err()
        );
        // metrics defaults to JSON and refuses unknown formats.
        assert_eq!(
            Request::from_line(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics {
                format: "json".into(),
                window: None,
            }
        );
        assert!(Request::from_line(r#"{"op":"metrics","format":"xml"}"#).is_err());
        // Windows are validated at the boundary: only the two canonical
        // trailing spans exist.
        assert_eq!(
            Request::from_line(r#"{"op":"metrics","window":"10s"}"#).unwrap(),
            Request::Metrics {
                format: "json".into(),
                window: Some("10s".into()),
            }
        );
        assert!(Request::from_line(r#"{"op":"metrics","window":"5m"}"#).is_err());
        assert!(Request::from_line(r#"{"op":"metrics","window":10}"#).is_err());
        // A trace line without "decisions" (a pre-calibration daemon)
        // still parses, as an empty decision drain.
        assert_eq!(
            Response::from_line(
                r#"{"ok":true,"op":"trace","enabled":false,"dropped":0,"events":[]}"#
            )
            .unwrap(),
            Response::Trace {
                events: vec![],
                dropped: 0,
                enabled: false,
                decisions: vec![],
            }
        );
        // An infinite reserved start never travels: the rendering drops
        // it rather than emitting invalid JSON.
        let waiting = Response::Waiting {
            job: 1,
            position: 1,
            reserved_start: Some(f64::INFINITY),
            explain: None,
        };
        let line = waiting.to_line();
        assert!(!line.contains("reserved_start"), "line was {line}");
        assert_eq!(
            Response::from_line(&line).unwrap(),
            Response::Waiting {
                job: 1,
                position: 1,
                reserved_start: None,
                explain: None,
            }
        );
    }

    #[test]
    fn batches_do_not_nest_and_propagate_member_errors() {
        assert!(
            Request::from_line(r#"{"op":"batch","requests":[{"op":"batch","requests":[]}]}"#)
                .is_err()
        );
        // One malformed member rejects the whole batch (a silent drop
        // would desynchronise request/response pairing).
        assert!(Request::from_line(
            r#"{"op":"batch","requests":[{"op":"ping"},{"op":"frobnicate"}]}"#
        )
        .is_err());
        assert!(Request::from_line(r#"{"op":"batch"}"#).is_err());
        let parsed = Request::from_line(r#"{"op":"batch","requests":[{"op":"ping"}]}"#).unwrap();
        assert_eq!(parsed, Request::Batch(vec![Request::Ping]));
    }
}
