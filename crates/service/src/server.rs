//! The TCP transport: a thread-per-core readiness loop speaking NDJSON
//! and length-prefixed binary frames on the same port.
//!
//! [`Server`] is the wire front end: an accept thread pins each incoming
//! connection to one of `workers` event-loop threads (round-robin at
//! accept, shared-nothing thereafter — a connection's frames are only
//! ever touched by its worker). Each worker drives its connections with
//! the `polling` compat shim (epoll on Linux, `poll(2)` elsewhere):
//! nonblocking reads drain every complete frame per readiness wakeup
//! (pipelining), responses accumulate in a per-connection outbox and go
//! out in one write, and an outbox above the high-water mark pauses read
//! interest until the peer drains it (backpressure).
//!
//! Framing is discriminated per frame by the first byte (see
//! [`crate::framing`]); responses return in the framing the request
//! arrived in, so `nc` keeps working while binary clients skip JSON
//! entirely.
//!
//! The original blocking thread-per-connection pool survives as
//! [`BlockingServer`] — it is the measured baseline for the
//! `wire_throughput` bench, not a fallback the service selects at
//! runtime. Everything is `std`-only.

use crate::framing::{self, Frame, FrameBuffer, Framing};
use crate::metrics::ServiceMetrics;
use crate::protocol::{Request, Response};
use crate::service::AllocationService;
use crate::trace::Stage;
use polling::{Event, Poller, Waker};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Outbox size above which a connection's read interest is paused until
/// the peer drains responses (per-connection backpressure).
const OUTBOX_HIGH_WATER: usize = 1 << 20;

/// Poller key reserved for each worker's cross-thread waker.
const WAKER_KEY: usize = usize::MAX;

/// Per-wakeup cap on read passes for one connection, so a firehose peer
/// cannot starve its worker's other connections (level-triggered
/// readiness re-reports whatever is left on the next wait).
const MAX_READS_PER_WAKEUP: usize = 16;

/// A bound, not-yet-running readiness-loop server.
pub struct Server {
    listener: TcpListener,
    service: AllocationService,
    workers: usize,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) serving
    /// `service` with `workers` event-loop threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: AllocationService,
        workers: usize,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            workers: workers.max(1),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until the process
    /// exits or the listener fails.
    pub fn run(self) -> io::Result<()> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let (accept_result, workers) = self.serve(shutdown);
        for worker in workers {
            let _ = worker.join();
        }
        accept_result
    }

    /// Runs the server on background threads, returning a handle that can
    /// stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_for_accept = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            let (result, workers) = self.serve(shutdown_for_accept);
            for worker in workers {
                let _ = worker.join();
            }
            result
        });
        Ok(ServerHandle {
            addr,
            shutdown,
            accept_thread,
        })
    }

    /// The accept loop proper: spins up the event-loop workers, pins each
    /// accepted connection to one (round-robin), and on exit wakes every
    /// worker so they drop their connections and join. Returns the accept
    /// result plus the worker handles.
    fn serve(self, shutdown: Arc<AtomicBool>) -> (io::Result<()>, Vec<JoinHandle<()>>) {
        let mut loops = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            match EventLoop::new() {
                Ok(event_loop) => loops.push(Arc::new(event_loop)),
                Err(e) => return (Err(e), Vec::new()),
            }
        }
        let handles: Vec<JoinHandle<()>> = loops
            .iter()
            .map(|event_loop| {
                let event_loop = Arc::clone(event_loop);
                let service = self.service.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || event_loop.run(&service, &shutdown))
            })
            .collect();
        let mut next = 0usize;
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    ServiceMetrics::bump(&self.service.metrics().connections);
                    let target = &loops[next % loops.len()];
                    next = next.wrapping_add(1);
                    target
                        .inject
                        .lock()
                        .expect("inject queue poisoned")
                        .push(stream);
                    target.waker.wake();
                }
                Err(e) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    break Err(e);
                }
            }
        };
        // Whatever ended the accept loop ends the workers too.
        shutdown.store(true, Ordering::SeqCst);
        for event_loop in &loops {
            event_loop.waker.wake();
        }
        (result, handles)
    }
}

/// One worker's shared face: the poller it sleeps on, the waker the
/// accept thread pokes, and the queue of freshly accepted connections.
struct EventLoop {
    poller: Poller,
    waker: Waker,
    inject: Mutex<Vec<TcpStream>>,
}

impl EventLoop {
    fn new() -> io::Result<EventLoop> {
        let poller = Poller::new()?;
        let waker = Waker::new(&poller, WAKER_KEY)?;
        Ok(EventLoop {
            poller,
            waker,
            inject: Mutex::new(Vec::new()),
        })
    }

    /// The worker thread body: sleep on readiness, serve every ready
    /// connection, pick up injected connections, exit on shutdown.
    fn run(&self, service: &AllocationService, shutdown: &AtomicBool) {
        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut events: Vec<Event> = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        loop {
            events.clear();
            if self.poller.wait(&mut events, None).is_err() {
                return;
            }
            if events.iter().any(|e| e.key == WAKER_KEY) {
                self.waker.drain();
                if shutdown.load(Ordering::SeqCst) {
                    // Dropping the map closes every connection.
                    return;
                }
                let fresh: Vec<TcpStream> = self
                    .inject
                    .lock()
                    .expect("inject queue poisoned")
                    .drain(..)
                    .collect();
                for stream in fresh {
                    self.adopt(&mut conns, stream, service, &mut scratch);
                }
            }
            for event in &events {
                if event.key == WAKER_KEY {
                    continue;
                }
                self.service_conn(&mut conns, event.key, service, &mut scratch);
            }
        }
    }

    /// Registers a fresh connection and eagerly serves any bytes the
    /// client sent before registration (level-triggered readiness would
    /// also report them, but serving now saves a wakeup of latency).
    fn adopt(
        &self,
        conns: &mut HashMap<usize, Conn>,
        stream: TcpStream,
        service: &AllocationService,
        scratch: &mut [u8],
    ) {
        // Responses are batched per wakeup but still small; without
        // TCP_NODELAY the request/response cycle stalls on Nagle +
        // delayed ACK (~40 ms/op).
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let key = stream.as_raw_fd() as usize;
        let interest = Event::readable(key);
        if self.poller.add(stream.as_raw_fd(), interest).is_err() {
            return;
        }
        conns.insert(key, Conn::new(stream, interest));
        self.service_conn(conns, key, service, scratch);
    }

    /// Serves one ready connection: drain reads, dispatch frames, flush
    /// the outbox, retune interest. Removes the connection on close or
    /// on a handler panic (a panic drops one connection, never a worker).
    fn service_conn(
        &self,
        conns: &mut HashMap<usize, Conn>,
        key: usize,
        service: &AllocationService,
        scratch: &mut [u8],
    ) {
        let Some(conn) = conns.get_mut(&key) else {
            return;
        };
        let keep = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            conn.serve(service, scratch)
        }))
        .unwrap_or_else(|_| {
            eprintln!("commalloc-service: connection handler panicked; worker continuing");
            false
        });
        if !keep {
            let conn = conns.remove(&key).expect("connection vanished mid-serve");
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            // Release the tenant's in-flight slots held by responses the
            // peer will never read.
            if conn.unflushed > 0 {
                service
                    .tenants()
                    .wire_dec(conn.inflight_tenant.as_deref(), conn.unflushed);
            }
            return; // dropping the stream closes it
        }
        let conn = conns.get_mut(&key).expect("connection vanished mid-serve");
        let desired = conn.desired_interest(key, service);
        if conn.interest.readable && !desired.readable && !conn.closing {
            service
                .tenants()
                .note_backpressure_pause(conn.inflight_tenant.as_deref());
        }
        if desired != conn.interest && self.poller.modify(conn.stream.as_raw_fd(), desired).is_ok()
        {
            conn.interest = desired;
        }
    }
}

/// One pinned connection's state: the incremental frame splitter and the
/// response outbox.
struct Conn {
    stream: TcpStream,
    buffer: FrameBuffer,
    outbox: Vec<u8>,
    outpos: usize,
    interest: Event,
    /// Reads are done (EOF or fatal framing error); the connection stays
    /// only until the outbox flushes.
    closing: bool,
    /// The tenant this connection is bound to (`hello`); requests
    /// without their own `tenant` field inherit it.
    tenant: Option<String>,
    /// Responses queued but not yet fully flushed — the figure the
    /// per-tenant in-flight cap rides on.
    unflushed: u64,
    /// The tenant the unflushed responses were billed to (snapshotted
    /// at the first inc so a mid-stream `hello` cannot unbalance the
    /// ledger).
    inflight_tenant: Option<String>,
}

impl Conn {
    fn new(stream: TcpStream, interest: Event) -> Conn {
        Conn {
            stream,
            buffer: FrameBuffer::new(),
            outbox: Vec::new(),
            outpos: 0,
            interest,
            closing: false,
            tenant: None,
            unflushed: 0,
            inflight_tenant: None,
        }
    }

    fn pending_out(&self) -> usize {
        self.outbox.len() - self.outpos
    }

    /// True while this connection's tenant sits at or above its
    /// in-flight cap *and* this connection contributes to it — the
    /// second condition guarantees a writable event is pending, so the
    /// pause always has a wakeup that ends it.
    fn over_tenant_cap(&self, service: &AllocationService) -> bool {
        self.unflushed > 0
            && service
                .tenants()
                .over_in_flight_cap(self.inflight_tenant.as_deref())
    }

    fn desired_interest(&self, key: usize, service: &AllocationService) -> Event {
        Event {
            key,
            // Backpressure: stop reading while the peer lags on responses
            // or the tenant sits at its in-flight cap.
            readable: !self.closing
                && self.pending_out() <= OUTBOX_HIGH_WATER
                && !self.over_tenant_cap(service),
            writable: self.pending_out() > 0,
        }
    }

    /// One readiness wakeup's worth of work. Returns false when the
    /// connection should be dropped.
    fn serve(&mut self, service: &AllocationService, scratch: &mut [u8]) -> bool {
        // Frames can outlive the read that delivered them (a tenant-cap
        // pause leaves them buffered): dispatch leftovers before
        // reading more.
        if !self.closing && !self.drain_frames(service) {
            self.closing = true;
        }
        if !self.closing
            && self.pending_out() <= OUTBOX_HIGH_WATER
            && !self.over_tenant_cap(service)
        {
            let mut reads = 0;
            while reads < MAX_READS_PER_WAKEUP {
                reads += 1;
                match self.stream.read(scratch) {
                    Ok(0) => {
                        // EOF. A partial frame left in the buffer is a torn
                        // final frame: reject it (there is nobody left to
                        // answer, but the books must balance).
                        if self.buffer.finish().is_err() {
                            ServiceMetrics::bump(&service.metrics().protocol_errors);
                        }
                        self.closing = true;
                        break;
                    }
                    Ok(n) => {
                        self.buffer.extend(&scratch[..n]);
                        if !self.drain_frames(service) {
                            self.closing = true;
                            break;
                        }
                        if self.pending_out() > OUTBOX_HIGH_WATER || self.over_tenant_cap(service) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
        }
        if self.flush_outbox().is_err() {
            return false;
        }
        if self.pending_out() == 0 && self.unflushed > 0 {
            service
                .tenants()
                .wire_dec(self.inflight_tenant.as_deref(), self.unflushed);
            self.unflushed = 0;
        }
        // Closing and nothing left to say: drop.
        !(self.closing && self.pending_out() == 0)
    }

    /// Dispatches every complete frame currently buffered (pipelining),
    /// pausing while the connection's tenant is at its in-flight cap
    /// (the rest dispatch after the outbox flushes). Returns false on a
    /// fatal framing error (stream desync): an error response is queued
    /// and the connection closes once it flushes.
    fn drain_frames(&mut self, service: &AllocationService) -> bool {
        loop {
            if self.over_tenant_cap(service) {
                return true;
            }
            match self.buffer.next_frame() {
                Ok(Some(frame)) => {
                    dispatch_frame(service, frame, &mut self.outbox, &mut self.tenant);
                    if self.unflushed == 0 {
                        self.inflight_tenant = self.tenant.clone();
                    }
                    self.unflushed += 1;
                    service
                        .tenants()
                        .wire_inc(self.inflight_tenant.as_deref(), 1);
                }
                Ok(None) => return true,
                Err(e) => {
                    ServiceMetrics::bump(&service.metrics().protocol_errors);
                    let response = Response::Error {
                        message: format!("bad frame: {e}"),
                        code: None,
                        detail: None,
                    };
                    append_response(&mut self.outbox, Framing::Binary, &response);
                    return false;
                }
            }
        }
    }

    /// Writes as much of the outbox as the socket accepts right now.
    fn flush_outbox(&mut self) -> io::Result<()> {
        while self.outpos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.outpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.outpos == self.outbox.len() {
            self.outbox.clear();
            self.outpos = 0;
        } else if self.outpos >= 64 * 1024 {
            // Reclaim the flushed prefix of a slow-draining outbox.
            self.outbox.drain(..self.outpos);
            self.outpos = 0;
        }
        Ok(())
    }
}

/// Parses one frame into a `Request`, dispatches it, and queues the
/// response in the framing the request arrived in. Blank NDJSON lines
/// are ignored (so interactive `nc` sessions can hit return freely).
/// `conn_tenant` is the connection's `hello` binding: it is injected
/// into requests that carry no tenant of their own, and a successful
/// `hello` rebinds it.
fn dispatch_frame(
    service: &AllocationService,
    frame: Frame,
    outbox: &mut Vec<u8>,
    conn_tenant: &mut Option<String>,
) {
    if frame.framing == Framing::Ndjson && frame.payload.iter().all(u8::is_ascii_whitespace) {
        return;
    }
    // Mint the request id before parsing so the parse itself is on the
    // timeline; a disabled recorder makes this ctx inert.
    let ctx = service.recorder().begin();
    let parse_start = ctx.now_micros();
    let response = match parse_frame(&frame) {
        Ok(mut request) => {
            ctx.span(Stage::Parse, 0, 0, parse_start, ctx.now_micros());
            bind_tenant(&mut request, conn_tenant);
            let response = service.handle_traced(&request, &ctx);
            if let (Request::Hello { tenant }, Response::Hello { .. }) = (&request, &response) {
                *conn_tenant = Some(tenant.clone());
            }
            response
        }
        Err(message) => {
            ctx.span(Stage::Parse, 0, 1, parse_start, ctx.now_micros());
            ServiceMetrics::bump(&service.metrics().protocol_errors);
            Response::Error {
                message,
                code: None,
                detail: None,
            }
        }
    };
    append_response(outbox, frame.framing, &response);
}

/// Injects the connection's bound tenant into requests that carry no
/// explicit tenant (recursing into batches). Explicit per-request
/// tenants always win.
fn bind_tenant(request: &mut Request, conn_tenant: &Option<String>) {
    let Some(bound) = conn_tenant else { return };
    match request {
        Request::Alloc {
            tenant: tenant @ None,
            ..
        } => *tenant = Some(bound.clone()),
        Request::Batch(requests) => {
            for member in requests {
                bind_tenant(member, conn_tenant);
            }
        }
        _ => {}
    }
}

fn parse_frame(frame: &Frame) -> Result<Request, String> {
    match frame.framing {
        Framing::Ndjson => {
            let line = std::str::from_utf8(&frame.payload)
                .map_err(|_| "bad request: line is not UTF-8".to_string())?;
            Request::from_line(line).map_err(|e| format!("bad request: {e}"))
        }
        Framing::Binary => {
            let value =
                framing::decode_value(&frame.payload).map_err(|e| format!("bad request: {e}"))?;
            Request::from_value(&value).map_err(|e| format!("bad request: {e}"))
        }
    }
}

/// Appends `response` to the outbox in the given framing.
fn append_response(outbox: &mut Vec<u8>, framing: Framing, response: &Response) {
    match framing {
        Framing::Ndjson => {
            outbox.extend_from_slice(response.to_line().as_bytes());
            outbox.push(b'\n');
        }
        Framing::Binary => {
            if let Err(e) = framing::encode_frame_into(&response.to_value(), outbox) {
                let fallback = Response::Error {
                    message: format!("response unencodable: {e}"),
                    code: None,
                    detail: None,
                };
                framing::encode_frame_into(&fallback.to_value(), outbox)
                    .expect("a small error response always encodes");
            }
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drops every live connection and joins all
    /// threads. Clients should disconnect before calling this.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_thread
            .join()
            .map_err(|_| io::Error::other("server accept thread panicked"))?
    }
}

// ---------------------------------------------------------------------------
// The blocking baseline.
// ---------------------------------------------------------------------------

/// The original transport: newline-delimited JSON over a bounded
/// thread-per-connection worker pool (at most `workers` connections are
/// served at once; further accepted connections wait in the channel).
///
/// Kept as the measured baseline for the `wire_throughput` bench — the
/// readiness-loop [`Server`] is what `serve` runs.
pub struct BlockingServer {
    listener: TcpListener,
    service: AllocationService,
    workers: usize,
}

impl BlockingServer {
    /// Binds to `addr` serving `service` with a pool of `workers`
    /// connection handlers.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: AllocationService,
        workers: usize,
    ) -> io::Result<BlockingServer> {
        Ok(BlockingServer {
            listener: TcpListener::bind(addr)?,
            service,
            workers: workers.max(1),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the server on background threads, returning a handle that can
    /// stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_for_accept = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            let (result, workers) = self.serve(shutdown_for_accept);
            for worker in workers {
                let _ = worker.join();
            }
            result
        });
        Ok(ServerHandle {
            addr,
            shutdown,
            accept_thread,
        })
    }

    fn serve(self, shutdown: Arc<AtomicBool>) -> (io::Result<()>, Vec<JoinHandle<()>>) {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = self.service.clone();
                std::thread::spawn(move || loop {
                    // Hold the lock only while receiving, not while serving.
                    let next = rx.lock().expect("worker queue poisoned").recv();
                    match next {
                        Ok(stream) => {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle_blocking_connection(stream, &service)
                                }));
                            if outcome.is_err() {
                                eprintln!(
                                    "commalloc-service: connection handler \
                                     panicked; worker continuing"
                                );
                            }
                        }
                        Err(_) => break, // channel closed: server shutting down
                    }
                })
            })
            .collect();
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    ServiceMetrics::bump(&self.service.metrics().connections);
                    if tx.send(stream).is_err() {
                        break Ok(());
                    }
                }
                Err(e) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    break Err(e);
                }
            }
        };
        drop(tx); // close the channel: idle workers wake up and exit
        (result, workers)
    }
}

/// Serves one blocking connection: one JSON request per line, one JSON
/// response per line, flushed per response.
fn handle_blocking_connection(stream: TcpStream, service: &AllocationService) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    let mut conn_tenant: Option<String> = None;
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let ctx = service.recorder().begin();
        let parse_start = ctx.now_micros();
        let response = match Request::from_line(&line) {
            Ok(mut request) => {
                ctx.span(Stage::Parse, 0, 0, parse_start, ctx.now_micros());
                bind_tenant(&mut request, &conn_tenant);
                let response = service.handle_traced(&request, &ctx);
                if let (Request::Hello { tenant }, Response::Hello { .. }) = (&request, &response) {
                    conn_tenant = Some(tenant.clone());
                }
                response
            }
            Err(e) => {
                ctx.span(Stage::Parse, 0, 1, parse_start, ctx.now_micros());
                ServiceMetrics::bump(&service.metrics().protocol_errors);
                Response::Error {
                    message: format!("bad request: {e}"),
                    code: None,
                    detail: None,
                }
            }
        };
        if writeln!(writer, "{}", response.to_line())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Shutdown;

    fn spawn_server() -> (AllocationService, ServerHandle) {
        let service = AllocationService::new();
        let server = Server::bind("127.0.0.1:0", service.clone(), 2).unwrap();
        let handle = server.spawn().unwrap();
        (service, handle)
    }

    /// Reads frames off `stream` until `want` have arrived or EOF.
    fn read_frames(stream: &mut TcpStream, want: usize) -> Vec<Frame> {
        let mut buffer = FrameBuffer::new();
        let mut frames = Vec::new();
        let mut chunk = [0u8; 4096];
        while frames.len() < want {
            let n = stream.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            buffer.extend(&chunk[..n]);
            while let Some(frame) = buffer.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        frames
    }

    fn decode_response(frame: &Frame) -> Response {
        match frame.framing {
            Framing::Ndjson => {
                Response::from_line(std::str::from_utf8(&frame.payload).unwrap()).unwrap()
            }
            Framing::Binary => {
                Response::from_value(&framing::decode_value(&frame.payload).unwrap()).unwrap()
            }
        }
    }

    #[test]
    fn spawn_serve_shutdown_round_trip() {
        let (service, handle) = spawn_server();
        let addr = handle.addr();

        {
            let mut stream = TcpStream::connect(addr).unwrap();
            writeln!(stream, "{}", Request::Ping.to_line()).unwrap();
            writeln!(
                stream,
                "{}",
                Request::Register {
                    machine: "m0".into(),
                    mesh: "8x8".into(),
                    allocator: None,
                    strategy: None,
                    scheduler: None,
                    pool: None,
                }
                .to_line()
            )
            .unwrap();
            writeln!(stream, "this is not json").unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(Response::from_line(&line).unwrap(), Response::Pong);
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                Response::from_line(&line).unwrap(),
                Response::Registered {
                    machine: "m0".into()
                }
            );
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                Response::from_line(&line).unwrap(),
                Response::Error { .. }
            ));
        }

        // The machine registered over TCP is visible in-process.
        assert_eq!(service.list(), vec!["m0".to_string()]);
        assert_eq!(service.metrics().protocol_errors.load(Ordering::Relaxed), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn binary_and_ndjson_frames_interleave_on_one_connection() {
        let (_service, handle) = spawn_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();

        // One write carrying three pipelined requests in mixed framings.
        let mut wire = Vec::new();
        wire.extend_from_slice(&framing::encode_frame(&Request::Ping.to_value()).unwrap());
        wire.extend_from_slice(
            Request::Register {
                machine: "mixed".into(),
                mesh: "8x8".into(),
                allocator: None,
                strategy: None,
                scheduler: None,
                pool: None,
            }
            .to_line()
            .as_bytes(),
        );
        wire.push(b'\n');
        wire.extend_from_slice(&framing::encode_frame(&Request::List.to_value()).unwrap());
        stream.write_all(&wire).unwrap();
        stream.flush().unwrap();

        let frames = read_frames(&mut stream, 3);
        assert_eq!(frames.len(), 3);
        // Responses come back in order, each in its request's framing.
        assert_eq!(frames[0].framing, Framing::Binary);
        assert_eq!(decode_response(&frames[0]), Response::Pong);
        assert_eq!(frames[1].framing, Framing::Ndjson);
        assert_eq!(
            decode_response(&frames[1]),
            Response::Registered {
                machine: "mixed".into()
            }
        );
        assert_eq!(frames[2].framing, Framing::Binary);
        assert_eq!(
            decode_response(&frames[2]),
            Response::Machines(vec!["mixed".into()])
        );

        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn pipelined_binary_requests_drain_in_order() {
        let (_service, handle) = spawn_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let n = 500;
        let mut wire = Vec::new();
        for _ in 0..n {
            wire.extend_from_slice(&framing::encode_frame(&Request::Ping.to_value()).unwrap());
        }
        stream.write_all(&wire).unwrap();
        let frames = read_frames(&mut stream, n);
        assert_eq!(frames.len(), n);
        for frame in &frames {
            assert_eq!(decode_response(frame), Response::Pong);
        }
        drop(stream);
        handle.shutdown().unwrap();
    }

    #[test]
    fn torn_final_binary_frame_is_rejected() {
        let (service, handle) = spawn_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let full = framing::encode_frame(&Request::Ping.to_value()).unwrap();
        stream.write_all(&full[..full.len() - 2]).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Server closes without answering the torn frame…
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "unexpected bytes {rest:?}");
        // …and books it as a protocol error.
        assert_eq!(service.metrics().protocol_errors.load(Ordering::Relaxed), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn oversized_frame_length_closes_with_an_error() {
        let (service, handle) = spawn_server();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut wire = vec![framing::MAGIC];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&wire).unwrap();
        let frames = read_frames(&mut stream, 1);
        assert_eq!(frames.len(), 1);
        assert!(matches!(
            decode_response(&frames[0]),
            Response::Error { .. }
        ));
        // The connection is closed after the error.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(service.metrics().protocol_errors.load(Ordering::Relaxed), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn blocking_baseline_still_serves_ndjson() {
        let service = AllocationService::new();
        let server = BlockingServer::bind("127.0.0.1:0", service.clone(), 2).unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        writeln!(stream, "{}", Request::Ping.to_line()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::from_line(&line).unwrap(), Response::Pong);
        drop(reader);
        handle.shutdown().unwrap();
    }
}
