//! The TCP transport: newline-delimited JSON over a bounded worker pool.
//!
//! An accept thread hands connections to a fixed set of worker threads
//! through a channel (thread-per-connection with bounded concurrency:
//! at most `workers` connections are served at once; further accepted
//! connections wait in the channel). Everything is `std`-only.

use crate::metrics::ServiceMetrics;
use crate::protocol::{Request, Response};
use crate::service::AllocationService;
use crate::trace::Stage;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: AllocationService,
    workers: usize,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) serving
    /// `service` with a pool of `workers` connection handlers.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: AllocationService,
        workers: usize,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            workers: workers.max(1),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the calling thread until the process
    /// exits or the listener fails.
    pub fn run(self) -> io::Result<()> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let (accept_result, workers) = self.serve(shutdown);
        for worker in workers {
            let _ = worker.join();
        }
        accept_result
    }

    /// Runs the server on background threads, returning a handle that can
    /// stop it.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_for_accept = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            let (result, workers) = self.serve(shutdown_for_accept);
            for worker in workers {
                let _ = worker.join();
            }
            result
        });
        Ok(ServerHandle {
            addr,
            shutdown,
            accept_thread,
        })
    }

    /// The accept loop proper: spawns the worker pool, accepts until
    /// `shutdown` is set, then closes the channel so workers drain and
    /// exit. Returns the accept result plus the worker handles to join.
    fn serve(self, shutdown: Arc<AtomicBool>) -> (io::Result<()>, Vec<JoinHandle<()>>) {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..self.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = self.service.clone();
                std::thread::spawn(move || loop {
                    // Hold the lock only while receiving, not while serving.
                    let next = rx.lock().expect("worker queue poisoned").recv();
                    match next {
                        Ok(stream) => {
                            // A panic in one connection must not shrink the
                            // pool: catch it, drop the connection, keep
                            // serving.
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle_connection(stream, &service)
                                }));
                            if outcome.is_err() {
                                eprintln!(
                                    "commalloc-service: connection handler \
                                     panicked; worker continuing"
                                );
                            }
                        }
                        Err(_) => break, // channel closed: server shutting down
                    }
                })
            })
            .collect();
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    ServiceMetrics::bump(&self.service.metrics().connections);
                    if tx.send(stream).is_err() {
                        break Ok(());
                    }
                }
                Err(e) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break Ok(());
                    }
                    break Err(e);
                }
            }
        };
        drop(tx); // close the channel: idle workers wake up and exit
        (result, workers)
    }
}

/// Serves one connection: one JSON request per line, one JSON response
/// per line. Unparseable lines get an error response and the connection
/// stays open; I/O errors close it.
fn handle_connection(stream: TcpStream, service: &AllocationService) {
    // Responses are one small line each; without TCP_NODELAY the
    // request/response cycle stalls on Nagle + delayed ACK (~40 ms/op).
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        // Mint the request id before parsing so the parse itself is on
        // the timeline; a disabled recorder makes this ctx inert.
        let ctx = service.recorder().begin();
        let parse_start = ctx.now_micros();
        let response = match Request::from_line(&line) {
            Ok(request) => {
                ctx.span(Stage::Parse, 0, 0, parse_start, ctx.now_micros());
                service.handle_traced(&request, &ctx)
            }
            Err(e) => {
                ctx.span(Stage::Parse, 0, 1, parse_start, ctx.now_micros());
                ServiceMetrics::bump(&service.metrics().protocol_errors);
                Response::Error {
                    message: format!("bad request: {e}"),
                }
            }
        };
        if writeln!(writer, "{}", response.to_line())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool and joins all threads.
    /// Connections already being served finish their current line first;
    /// clients should disconnect before calling this.
    pub fn shutdown(self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept_thread
            .join()
            .map_err(|_| io::Error::other("server accept thread panicked"))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_serve_shutdown_round_trip() {
        let service = AllocationService::new();
        let server = Server::bind("127.0.0.1:0", service.clone(), 2).unwrap();
        let handle = server.spawn().unwrap();
        let addr = handle.addr();

        {
            let mut stream = TcpStream::connect(addr).unwrap();
            writeln!(stream, "{}", Request::Ping.to_line()).unwrap();
            writeln!(
                stream,
                "{}",
                Request::Register {
                    machine: "m0".into(),
                    mesh: "8x8".into(),
                    allocator: None,
                    strategy: None,
                    scheduler: None,
                    pool: None,
                }
                .to_line()
            )
            .unwrap();
            writeln!(stream, "this is not json").unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(Response::from_line(&line).unwrap(), Response::Pong);
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                Response::from_line(&line).unwrap(),
                Response::Registered {
                    machine: "m0".into()
                }
            );
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(matches!(
                Response::from_line(&line).unwrap(),
                Response::Error { .. }
            ));
        }

        // The machine registered over TCP is visible in-process.
        assert_eq!(service.list(), vec!["m0".to_string()]);
        assert_eq!(service.metrics().protocol_errors.load(Ordering::Relaxed), 1);
        handle.shutdown().unwrap();
    }
}
