//! The tenant plane: who submitted the work, and how much of the
//! cluster they may hold.
//!
//! Every connection (and every request) can name a tenant; untagged
//! traffic is attributed to the [`DEFAULT_TENANT`]. The table tracks,
//! per tenant:
//!
//! - a **fair-share weight** (heavier tenants drain sooner under the
//!   weighted fair-share admission layer — see
//!   [`crate::admission::AdmissionQueue::resequence`]),
//! - an optional **node-second quota** enforced at admission: every
//!   live job commits `size × walltime` node-seconds (estimate-less
//!   jobs are charged [`DEFAULT_QUOTA_WALLTIME`]); a request that
//!   would push the tenant's outstanding commitment past its quota is
//!   denied with a typed `QuotaExceeded` carrying usage and limit,
//! - an optional **in-flight request cap** applied at the wire: a
//!   tenant whose unflushed responses exceed the cap has its
//!   connections' read interest paused, riding the same machinery as
//!   the per-connection outbox high-water mark,
//! - admitted/denied/queue-depth/node-second series for `metrics`.
//!
//! The accounting is deliberately *commitment-based* (charged at
//! admission from declared walltimes, refunded at release/cancel)
//! rather than measured: commitments are deterministic, replayable
//! from the journal, and exactly recomputable after recovery from the
//! restored running and queued jobs. Untenanted traffic journals no
//! tenant field at all, so pre-tenant journals and untenanted grant
//! logs stay byte-identical.

use std::collections::HashMap;
use std::sync::Mutex;

/// The tenant untagged connections and requests are attributed to.
pub const DEFAULT_TENANT: &str = "default";

/// The walltime, in seconds, a job with no estimate is charged against
/// its tenant's node-second quota. Chosen as one hour: long enough
/// that estimate-less jobs are not free, short enough that a single
/// unestimated job does not consume a reasonable quota.
pub const DEFAULT_QUOTA_WALLTIME: f64 = 3600.0;

/// The node-second commitment of a job: `size × walltime`, with
/// estimate-less jobs charged [`DEFAULT_QUOTA_WALLTIME`]. The single
/// cost formula — admission, refund, release settlement and the
/// recovery recomputation all consult this one function, so the
/// ledger cannot drift between layers.
pub fn job_cost(size: usize, walltime: Option<f64>) -> f64 {
    size as f64 * walltime.unwrap_or(DEFAULT_QUOTA_WALLTIME)
}

/// Per-tenant configuration: weight, quota, wire cap.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Fair-share weight; finite and positive. Default 1.0.
    pub weight: f64,
    /// Node-second quota; `None` = unlimited.
    pub quota_node_seconds: Option<f64>,
    /// In-flight wire request cap; `None` = uncapped.
    pub max_in_flight: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1.0,
            quota_node_seconds: None,
            max_in_flight: None,
        }
    }
}

#[derive(Debug, Default)]
struct TenantState {
    config: TenantConfig,
    /// Node-seconds committed by live (running or queued) jobs.
    outstanding: f64,
    /// Cumulative node-seconds of finished holds (`size × held`).
    consumed: f64,
    admitted: u64,
    denied: u64,
    /// Live queued jobs across all machines.
    queued: u64,
    /// Wire requests whose responses are not yet flushed.
    in_flight: u64,
    /// Times a connection's reads were paused by the in-flight cap.
    backpressure_pauses: u64,
    /// Σ wait/weight over granted jobs (tenant-weighted mean wait).
    weighted_wait_sum: f64,
    waits: u64,
}

/// An exported per-tenant row (for `metrics`, the `tenants` op, and
/// snapshot capture), sorted by tenant name.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantExport {
    pub tenant: String,
    pub config: TenantConfig,
    pub outstanding_node_seconds: f64,
    pub consumed_node_seconds: f64,
    pub admitted: u64,
    pub denied: u64,
    pub queued: u64,
    pub in_flight: u64,
    pub backpressure_pauses: u64,
    pub weighted_wait_sum: f64,
    pub waits: u64,
}

/// The verdict of a quota check that failed.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaDenied {
    pub usage: f64,
    pub limit: f64,
}

/// The journaled tenant table. One process-wide instance hangs off the
/// service and is shared (via `Arc`) with every machine entry, so
/// admission, drain-order keys and release settlement all read the
/// same ledger. A single mutex suffices: every operation is a few
/// loads and stores, and the table is consulted at most once per
/// request — the sharded machine locks stay the concurrency story.
#[derive(Debug, Default)]
pub struct TenantTable {
    inner: Mutex<HashMap<String, TenantState>>,
}

/// Maps an optional request tenant to the attribution name.
pub fn tenant_or_default(tenant: Option<&str>) -> &str {
    match tenant {
        Some(t) if !t.is_empty() => t,
        _ => DEFAULT_TENANT,
    }
}

impl TenantTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the tenant exists (default config when new).
    pub fn touch(&self, tenant: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.entry(tenant.to_string()).or_default();
    }

    /// Installs an absolute configuration (create-or-replace). The
    /// journal records the *resulting* configuration, so replay is
    /// last-writer-wins regardless of which fields the original
    /// request spelled out.
    pub fn configure(&self, tenant: &str, config: TenantConfig) {
        let mut inner = self.inner.lock().unwrap();
        inner.entry(tenant.to_string()).or_default().config = config;
    }

    /// The current configuration (default when the tenant is unknown).
    pub fn config_of(&self, tenant: Option<&str>) -> TenantConfig {
        let name = tenant_or_default(tenant);
        let inner = self.inner.lock().unwrap();
        inner
            .get(name)
            .map(|s| s.config.clone())
            .unwrap_or_default()
    }

    /// Quota check-and-commit: atomically verifies the tenant's
    /// outstanding commitment plus `cost` fits the quota and commits
    /// it. On denial nothing is committed and the denial counter
    /// bumps.
    pub fn admit(&self, tenant: Option<&str>, cost: f64) -> Result<(), QuotaDenied> {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(name.to_string()).or_default();
        if let Some(limit) = state.config.quota_node_seconds {
            if state.outstanding + cost > limit {
                state.denied += 1;
                return Err(QuotaDenied {
                    usage: state.outstanding,
                    limit,
                });
            }
        }
        state.outstanding += cost;
        state.admitted += 1;
        Ok(())
    }

    /// Returns a committed cost (the request was rejected downstream
    /// of admission, or an error unwound it). Also un-counts the
    /// admission.
    pub fn refund(&self, tenant: Option<&str>, cost: f64) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(name.to_string()).or_default();
        state.outstanding = (state.outstanding - cost).max(0.0);
        state.admitted = state.admitted.saturating_sub(1);
    }

    /// Settles a finished hold: releases the committed node-seconds
    /// and accrues the realized consumption (`size × held`; cancelled
    /// queued jobs settle with zero consumption).
    pub fn settle(&self, tenant: Option<&str>, cost: f64, consumed: f64) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(name.to_string()).or_default();
        state.outstanding = (state.outstanding - cost).max(0.0);
        if consumed.is_finite() && consumed > 0.0 {
            state.consumed += consumed;
        }
    }

    /// Queue-depth gauge: a job of the tenant entered a queue.
    pub fn note_enqueued(&self, tenant: Option<&str>) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        inner.entry(name.to_string()).or_default().queued += 1;
    }

    /// Queue-depth gauge: a queued job of the tenant left its queue
    /// (granted or cancelled).
    pub fn note_dequeued(&self, tenant: Option<&str>) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(name.to_string()).or_default();
        state.queued = state.queued.saturating_sub(1);
    }

    /// Records a grant's queue wait, tenant-weighted (`wait/weight`).
    pub fn note_wait(&self, tenant: Option<&str>, wait: f64) {
        if !wait.is_finite() || wait < 0.0 {
            return;
        }
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(name.to_string()).or_default();
        let weight = if state.config.weight > 0.0 {
            state.config.weight
        } else {
            1.0
        };
        state.weighted_wait_sum += wait / weight;
        state.waits += 1;
    }

    /// The fair-share drain key of a tenant: outstanding node-seconds
    /// divided by weight. Lower keys drain first, so a tenant holding
    /// little of the cluster (or weighted heavily) goes ahead of one
    /// holding much. Deterministic given the ledger.
    pub fn fair_key(&self, tenant: Option<&str>) -> f64 {
        let name = tenant_or_default(tenant);
        let inner = self.inner.lock().unwrap();
        match inner.get(name) {
            Some(state) => {
                let weight = if state.config.weight > 0.0 {
                    state.config.weight
                } else {
                    1.0
                };
                state.outstanding / weight
            }
            None => 0.0,
        }
    }

    /// Wire accounting: a request from the tenant was read off a
    /// connection; its response is now pending flush.
    pub fn wire_inc(&self, tenant: Option<&str>, n: u64) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        inner.entry(name.to_string()).or_default().in_flight += n;
    }

    /// Wire accounting: `n` responses of the tenant flushed.
    pub fn wire_dec(&self, tenant: Option<&str>, n: u64) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(name.to_string()).or_default();
        state.in_flight = state.in_flight.saturating_sub(n);
    }

    /// Whether the tenant's unflushed responses exceed its in-flight
    /// cap (connections should pause reads until the backlog drains).
    pub fn over_in_flight_cap(&self, tenant: Option<&str>) -> bool {
        let name = tenant_or_default(tenant);
        let inner = self.inner.lock().unwrap();
        match inner.get(name) {
            Some(state) => match state.config.max_in_flight {
                Some(cap) => state.in_flight > cap,
                None => false,
            },
            None => false,
        }
    }

    /// Counts one read-pause caused by the in-flight cap.
    pub fn note_backpressure_pause(&self, tenant: Option<&str>) {
        let name = tenant_or_default(tenant);
        let mut inner = self.inner.lock().unwrap();
        inner
            .entry(name.to_string())
            .or_default()
            .backpressure_pauses += 1;
    }

    /// Exports every tenant row, sorted by name.
    pub fn export(&self) -> Vec<TenantExport> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<TenantExport> = inner
            .iter()
            .map(|(name, state)| TenantExport {
                tenant: name.clone(),
                config: state.config.clone(),
                outstanding_node_seconds: state.outstanding,
                consumed_node_seconds: state.consumed,
                admitted: state.admitted,
                denied: state.denied,
                queued: state.queued,
                in_flight: state.in_flight,
                backpressure_pauses: state.backpressure_pauses,
                weighted_wait_sum: state.weighted_wait_sum,
                waits: state.waits,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }

    /// Whether any tenant is configured (used to skip snapshot
    /// sections — and their bytes — on tenant-free daemons).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// Restores a tenant's snapshot image: configuration plus the
    /// cumulative consumption counter. Outstanding commitments are
    /// *not* restored here — recovery recomputes them exactly from
    /// the restored running and queued jobs via
    /// [`TenantTable::reset_outstanding`].
    pub fn restore(&self, tenant: &str, config: TenantConfig, consumed: f64) {
        let mut inner = self.inner.lock().unwrap();
        let state = inner.entry(tenant.to_string()).or_default();
        state.config = config;
        if consumed.is_finite() && consumed > 0.0 {
            state.consumed = consumed;
        }
    }

    /// Overwrites the outstanding-commitment ledger (the recovery
    /// recomputation: sum of [`job_cost`] over every restored live
    /// job, per tenant). Tenants absent from `ledger` are zeroed.
    pub fn reset_outstanding(&self, ledger: &HashMap<String, f64>) {
        let mut inner = self.inner.lock().unwrap();
        for state in inner.values_mut() {
            state.outstanding = 0.0;
        }
        for (tenant, cost) in ledger {
            let state = inner.entry(tenant.clone()).or_default();
            state.outstanding = *cost;
        }
    }

    /// Overwrites a tenant's queue-depth gauge (recovery).
    pub fn reset_queued(&self, ledger: &HashMap<String, u64>) {
        let mut inner = self.inner.lock().unwrap();
        for state in inner.values_mut() {
            state.queued = 0;
        }
        for (tenant, depth) in ledger {
            let state = inner.entry(tenant.clone()).or_default();
            state.queued = *depth;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_commits_refunds_and_settles() {
        let table = TenantTable::new();
        table.configure(
            "acme",
            TenantConfig {
                weight: 2.0,
                quota_node_seconds: Some(100.0),
                max_in_flight: None,
            },
        );
        assert!(table.admit(Some("acme"), 60.0).is_ok());
        let denied = table.admit(Some("acme"), 60.0).unwrap_err();
        assert_eq!(denied.usage, 60.0);
        assert_eq!(denied.limit, 100.0);
        table.settle(Some("acme"), 60.0, 30.0);
        assert!(table.admit(Some("acme"), 60.0).is_ok());
        table.refund(Some("acme"), 60.0);
        let rows = table.export();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].admitted, 1);
        assert_eq!(rows[0].denied, 1);
        assert_eq!(rows[0].outstanding_node_seconds, 0.0);
        assert_eq!(rows[0].consumed_node_seconds, 30.0);
    }

    #[test]
    fn untagged_traffic_attributes_to_the_default_tenant() {
        let table = TenantTable::new();
        assert!(table.admit(None, 1e12).is_ok(), "default tenant unquotaed");
        table.note_enqueued(None);
        let rows = table.export();
        assert_eq!(rows[0].tenant, DEFAULT_TENANT);
        assert_eq!(rows[0].queued, 1);
    }

    #[test]
    fn fair_key_divides_usage_by_weight() {
        let table = TenantTable::new();
        table.configure(
            "heavy",
            TenantConfig {
                weight: 4.0,
                ..TenantConfig::default()
            },
        );
        table.configure("light", TenantConfig::default());
        table.admit(Some("heavy"), 80.0).unwrap();
        table.admit(Some("light"), 40.0).unwrap();
        assert_eq!(table.fair_key(Some("heavy")), 20.0);
        assert_eq!(table.fair_key(Some("light")), 40.0);
        assert_eq!(table.fair_key(Some("unknown")), 0.0);
    }

    #[test]
    fn in_flight_cap_gates_only_past_the_cap() {
        let table = TenantTable::new();
        table.configure(
            "t",
            TenantConfig {
                max_in_flight: Some(2),
                ..TenantConfig::default()
            },
        );
        table.wire_inc(Some("t"), 2);
        assert!(!table.over_in_flight_cap(Some("t")));
        table.wire_inc(Some("t"), 1);
        assert!(table.over_in_flight_cap(Some("t")));
        table.wire_dec(Some("t"), 3);
        assert!(!table.over_in_flight_cap(Some("t")));
        assert!(!table.over_in_flight_cap(Some("unconfigured")));
    }

    #[test]
    fn job_cost_charges_the_default_walltime_when_unestimated() {
        assert_eq!(job_cost(4, Some(10.0)), 40.0);
        assert_eq!(job_cost(2, None), 2.0 * DEFAULT_QUOTA_WALLTIME);
    }

    #[test]
    fn recovery_resets_overwrite_the_ledgers() {
        let table = TenantTable::new();
        table.admit(Some("a"), 50.0).unwrap();
        table.admit(Some("b"), 70.0).unwrap();
        let mut ledger = HashMap::new();
        ledger.insert("a".to_string(), 12.0);
        table.reset_outstanding(&ledger);
        let rows = table.export();
        assert_eq!(rows[0].outstanding_node_seconds, 12.0);
        assert_eq!(rows[1].outstanding_node_seconds, 0.0);
    }
}
