//! The flight recorder: request-scoped span tracing for the daemon.
//!
//! Every wire request is assigned a monotonically increasing request ID
//! at parse time; the layers it traverses (parse, routing, admission
//! queue, allocator probe, journal append, fsync wait) emit timestamped
//! [`SpanEvent`]s into per-worker fixed-capacity ring buffers. The
//! design goals, in order:
//!
//! * **Near-zero cost when off.** Tracing is toggled at runtime by the
//!   `set_trace` op; the disabled hot path is one relaxed atomic load
//!   ([`FlightRecorder::begin`] returns an inert [`RequestCtx`] whose
//!   every method is a no-op).
//! * **Zero allocation when on.** [`SpanEvent`] is `Copy` (machine
//!   names travel as intern-table IDs, not strings); rings are
//!   preallocated and overwrite their oldest entry under pressure,
//!   counting drops rather than blocking or growing.
//! * **Bounded contention.** Events hash to one of several ring shards
//!   by thread, so concurrent connection workers rarely share a lock;
//!   the per-stage latency histograms live inside the same shard lock,
//!   making one uncontended lock acquisition the whole per-event cost.
//!
//! Draining (the `trace` op) merges the shards into one stream sorted
//! by start time; the CLI renders it as NDJSON or Chrome trace-event
//! JSON. Stage latency distributions are exported independently through
//! the `metrics` op as [`LogLinearHistogram`]s — both cumulative and as
//! trailing time windows (each shard keeps a [`WindowRing`] per stage,
//! so `metrics` can answer "last 10 s" as well as "since boot").
//!
//! The recorder also carries the **routing decision ring**: one bounded
//! buffer of pre-rendered decision records (policy, members sampled,
//! per-member score and queue depth, the winner) appended by the routed
//! alloc path and drained alongside the span stream. Decisions are
//! rendered to wire values at record time — they are off the zero-alloc
//! span path and orders of magnitude rarer than spans.

use crate::metrics::{LogLinearHistogram, WindowRing};
use commalloc::scheduler::BlockReason;
use serde::{Serialize, Value};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Pipeline stages a request traverses, in hot-path order. The first
/// [`Stage::HISTOGRAMMED`] stages accumulate latency histograms;
/// `Grant`/`Deny` are outcome markers (zero-duration instants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Wire line → parsed request.
    Parse = 0,
    /// Pool routing: sampling machines and picking a target.
    Route = 1,
    /// Time spent queued in admission (enqueue → grant), for jobs that
    /// waited.
    Queue = 2,
    /// The allocator probe: one placement attempt on one machine.
    Allocator = 3,
    /// Composing and appending journal records for one request.
    JournalAppend = 4,
    /// Waiting for the journal fsync to cover the appended records
    /// (zero under batched group-commit, where appenders never wait).
    FsyncWait = 5,
    /// Outcome marker: the request was granted processors.
    Grant = 6,
    /// Outcome marker: the request was denied or left queued, with the
    /// blocking reason in `code`/`detail`/`aux`.
    Deny = 7,
}

impl Stage {
    /// How many leading stages carry latency histograms.
    pub const HISTOGRAMMED: usize = 6;

    /// Stable lower-case name used in wire output and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Route => "route",
            Stage::Queue => "queue",
            Stage::Allocator => "allocator",
            Stage::JournalAppend => "journal_append",
            Stage::FsyncWait => "fsync_wait",
            Stage::Grant => "grant",
            Stage::Deny => "deny",
        }
    }

    /// The histogrammed stages, in index order (index = discriminant).
    pub fn histogrammed() -> [Stage; Stage::HISTOGRAMMED] {
        [
            Stage::Parse,
            Stage::Route,
            Stage::Queue,
            Stage::Allocator,
            Stage::JournalAppend,
            Stage::FsyncWait,
        ]
    }
}

/// The wire code of a [`BlockReason`] carried in a `Deny` event's `code`
/// field; 0 means "no scheduler reason" (an outright reject).
pub fn reason_code(reason: &BlockReason) -> u32 {
    match reason {
        BlockReason::InsufficientFree { .. } => 1,
        BlockReason::HeadOfLine { .. } => 2,
        BlockReason::WouldDelayShadow { .. } => 3,
        BlockReason::WouldDelayReservation { .. } => 4,
    }
}

/// The stable string for a `Deny` reason code (the inverse of
/// [`reason_code`], `None` for 0/unknown).
pub fn reason_code_name(code: u32) -> Option<&'static str> {
    match code {
        1 => Some("insufficient_free"),
        2 => Some("head_of_line"),
        3 => Some("would_delay_shadow"),
        4 => Some("would_delay_reservation"),
        _ => None,
    }
}

/// Renders a [`BlockReason`] as the wire object carried in the `explain`
/// fields of `poll` and `query` responses: the stable `reason` tag plus
/// the fields the variant carries, and a human-readable `detail`. An
/// infinite time bound renders as `"unbounded": true` with no `until` —
/// JSON cannot spell infinity.
pub fn reason_to_value(reason: &BlockReason) -> Value {
    let mut m = serde::Map::new();
    m.insert("reason".into(), reason.code().to_value());
    if let BlockReason::InsufficientFree { free, needed } = reason {
        m.insert("free".into(), (*free as u64).to_value());
        m.insert("needed".into(), (*needed as u64).to_value());
    }
    if let Some(job) = reason.blocking_job() {
        m.insert("blocking_job".into(), job.to_value());
    }
    if let Some(until) = reason.until() {
        if until.is_finite() {
            m.insert("until".into(), until.to_value());
        } else {
            m.insert("unbounded".into(), true.to_value());
        }
    }
    m.insert("detail".into(), reason.to_string().to_value());
    Value::Object(m)
}

/// One timestamped span in a request's life. `Copy` and string-free so
/// the recording hot path never allocates; `machine` is an intern-table
/// ID resolved only at drain time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// The wire request this span belongs to.
    pub request: u64,
    /// The job involved, 0 when none.
    pub job: u64,
    /// Interned machine name, 0 when none.
    pub machine: u32,
    /// Which pipeline stage.
    pub stage: Stage,
    /// Stage-specific code: `Grant` — 0 immediate, 1 from queue;
    /// `Deny` — the [`reason_code`]; elsewhere 0.
    pub code: u32,
    /// Stage-specific payload: for `Deny`, the blocking job ID.
    pub detail: u64,
    /// Stage-specific float payload as [`f64::to_bits`]: for `Deny`,
    /// the blocking reservation's start time (machine clock).
    pub aux: u64,
    /// Start, in microseconds since the recorder's epoch.
    pub start_micros: u64,
    /// Duration in microseconds (0 for instant markers).
    pub dur_micros: u64,
}

/// One ring shard: a fixed-capacity circular event buffer plus the
/// per-stage latency histograms, all guarded by the shard's mutex so a
/// recording thread pays exactly one lock acquisition per event.
#[derive(Debug)]
struct RingShard {
    /// Circular buffer: grows to `capacity`, then overwrites at `next`.
    events: Vec<SpanEvent>,
    /// Next write slot once the buffer is full.
    next: usize,
    capacity: usize,
    /// Events overwritten before ever being drained.
    dropped: u64,
    /// Latency distributions of the histogrammed stages, in
    /// microseconds (scale 1: ticks are already integral micros).
    histograms: [LogLinearHistogram; Stage::HISTOGRAMMED],
    /// Trailing per-second latency windows of the same stages, stamped
    /// by the event's recorder-epoch second.
    windows: [WindowRing; Stage::HISTOGRAMMED],
}

impl RingShard {
    fn new(capacity: usize) -> RingShard {
        RingShard {
            events: Vec::with_capacity(capacity),
            next: 0,
            capacity,
            dropped: 0,
            histograms: std::array::from_fn(|_| LogLinearHistogram::with_scale(1.0)),
            windows: std::array::from_fn(|_| WindowRing::with_scale(1.0)),
        }
    }

    /// Buffers one event; returns `true` when it overwrote an undrained
    /// entry (the caller bumps the recorder's cumulative drop counter).
    fn push(&mut self, event: SpanEvent) -> bool {
        if (event.stage as usize) < Stage::HISTOGRAMMED {
            self.histograms[event.stage as usize].record(event.dur_micros as f64);
            self.windows[event.stage as usize]
                .record(event.start_micros / 1_000_000, event.dur_micros as f64);
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
            false
        } else {
            // Full: overwrite the oldest entry (the ring is written in
            // slot order, so `next` always holds the oldest).
            self.events[self.next] = event;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
            true
        }
    }

    /// The buffered events in write (oldest-first) order.
    fn ordered(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.next..]);
        out.extend_from_slice(&self.events[..self.next]);
        out
    }

    fn clear(&mut self) {
        self.events.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// Default number of ring shards (a small power of two: enough to keep
/// the worker pool from colliding, cheap to merge at drain time).
pub const DEFAULT_TRACE_SHARDS: usize = 8;

/// Default per-shard event capacity: 4096 events ≈ 256 KiB per shard,
/// a couple of thousand requests of look-back at ~4 spans each.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Capacity of the routing-decision ring: decisions arrive at most once
/// per routed alloc, so 1024 covers minutes of look-back.
pub const DECISION_CAPACITY: usize = 1024;

/// The flight recorder: request-ID mint, enable flag, machine-name
/// intern table and the ring shards. One per [`AllocationService`],
/// shared by every connection worker.
///
/// [`AllocationService`]: crate::service::AllocationService
#[derive(Debug)]
pub struct FlightRecorder {
    /// The master switch, read with one relaxed load per request.
    enabled: AtomicBool,
    /// All event timestamps are micros since this instant.
    epoch: Instant,
    next_request: AtomicU64,
    shards: Vec<Mutex<RingShard>>,
    /// Lifetime count of span events overwritten before being drained,
    /// across every shard. Unlike the per-shard `dropped` counters this
    /// is **not** reset by a clearing drain — it backs the monotonic
    /// `commalloc_dropped_spans_total` Prometheus counter.
    dropped_total: AtomicU64,
    /// The routing-decision ring: pre-rendered wire objects, oldest
    /// evicted under pressure.
    decisions: Mutex<VecDeque<Value>>,
    /// Machine-name intern table; `names[0]` is the empty "no machine"
    /// slot. Read-mostly: each name is interned once, then every lookup
    /// is a shared-lock scan of a handful of entries.
    names: RwLock<Vec<String>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default shard count and capacity, disabled.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_TRACE_SHARDS, DEFAULT_TRACE_CAPACITY)
    }

    /// A recorder with `shards` ring shards of `capacity` events each
    /// (both clamped to at least 1), disabled until `set_enabled(true)`.
    pub fn with_capacity(shards: usize, capacity: usize) -> FlightRecorder {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        FlightRecorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_request: AtomicU64::new(1),
            shards: (0..shards)
                .map(|_| Mutex::new(RingShard::new(capacity)))
                .collect(),
            dropped_total: AtomicU64::new(0),
            decisions: Mutex::new(VecDeque::new()),
            names: RwLock::new(vec![String::new()]),
        }
    }

    /// Turns recording on or off. Events emitted while off are
    /// discarded before they are built (the [`RequestCtx`] goes inert).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the recorder is currently accepting events.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder's epoch.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Begins a request: one relaxed load when disabled (returning the
    /// inert context), a request-ID mint when enabled.
    pub fn begin(&self) -> RequestCtx<'_> {
        if !self.enabled() {
            return RequestCtx::inert();
        }
        RequestCtx {
            recorder: Some(self),
            request: self.next_request.fetch_add(1, Ordering::Relaxed),
            machine: 0,
        }
    }

    /// Interns `name`, returning its stable ID (0 for the empty name).
    pub fn intern(&self, name: &str) -> u32 {
        if name.is_empty() {
            return 0;
        }
        {
            let names = self.names.read().expect("intern table poisoned");
            if let Some(i) = names.iter().position(|n| n == name) {
                return i as u32;
            }
        }
        let mut names = self.names.write().expect("intern table poisoned");
        // Re-check: another thread may have interned between the locks.
        if let Some(i) = names.iter().position(|n| n == name) {
            return i as u32;
        }
        names.push(name.to_string());
        (names.len() - 1) as u32
    }

    /// Resolves an interned machine ID back to its name (empty for 0 or
    /// unknown IDs).
    pub fn machine_name(&self, id: u32) -> String {
        let names = self.names.read().expect("intern table poisoned");
        names.get(id as usize).cloned().unwrap_or_default()
    }

    /// The calling thread's home shard: assigned round-robin on first
    /// use and cached in a thread-local, so a connection worker always
    /// lands on the same (usually uncontended) lock.
    fn shard_index(&self) -> usize {
        static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static HOME: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        HOME.with(|home| {
            if home.get() == usize::MAX {
                home.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
            }
            home.get()
        }) % self.shards.len()
    }

    /// Records one event into the calling thread's shard. Callers go
    /// through [`RequestCtx`], which already checked `enabled`.
    pub fn record(&self, event: SpanEvent) {
        let overwrote = {
            let mut shard = self.shards[self.shard_index()]
                .lock()
                .expect("trace shard poisoned");
            shard.push(event)
        };
        if overwrote {
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lifetime count of span events lost to ring overwrites. Monotonic:
    /// a clearing drain resets the per-drain `dropped` figure but never
    /// this counter.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Appends one pre-rendered routing-decision record, evicting the
    /// oldest past [`DECISION_CAPACITY`]. Callers gate on
    /// [`RequestCtx::active`], so an untraced route never renders one.
    pub fn record_decision(&self, decision: Value) {
        let mut ring = self.decisions.lock().expect("decision ring poisoned");
        if ring.len() >= DECISION_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(decision);
    }

    /// The buffered routing decisions, oldest first. `limit` keeps only
    /// the most recent records; `clear` empties the ring after reading.
    pub fn decisions(&self, limit: Option<usize>, clear: bool) -> Vec<Value> {
        let mut ring = self.decisions.lock().expect("decision ring poisoned");
        let skip = match limit {
            Some(limit) => ring.len().saturating_sub(limit),
            None => 0,
        };
        let out: Vec<Value> = ring.iter().skip(skip).cloned().collect();
        if clear {
            ring.clear();
        }
        out
    }

    /// Drains the recorder: every buffered event merged across shards
    /// in start-time order, plus the total drop count. `limit` keeps
    /// only the most recent events; `clear` resets the rings (and the
    /// drop counters) after reading.
    pub fn drain(&self, limit: Option<usize>, clear: bool) -> (Vec<SpanEvent>, u64) {
        let mut events = Vec::new();
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("trace shard poisoned");
            events.extend(shard.ordered());
            dropped += shard.dropped;
            if clear {
                shard.clear();
            }
        }
        events.sort_by_key(|e| (e.start_micros, e.request));
        if let Some(limit) = limit {
            if events.len() > limit {
                events.drain(..events.len() - limit);
            }
        }
        (events, dropped)
    }

    /// The per-stage latency histograms, merged across shards, indexed
    /// by stage discriminant (microsecond ticks).
    pub fn stage_histograms(&self) -> [LogLinearHistogram; Stage::HISTOGRAMMED] {
        let mut merged: [LogLinearHistogram; Stage::HISTOGRAMMED] =
            std::array::from_fn(|_| LogLinearHistogram::with_scale(1.0));
        for shard in &self.shards {
            let shard = shard.lock().expect("trace shard poisoned");
            for (into, from) in merged.iter_mut().zip(&shard.histograms) {
                into.merge(from);
            }
        }
        merged
    }

    /// The per-stage latency histograms restricted to the trailing
    /// `span_secs` seconds ending at `now_sec` (recorder-epoch seconds;
    /// span clamped to the 60-slot window), merged across shards.
    pub fn stage_windows(
        &self,
        now_sec: u64,
        span_secs: u64,
    ) -> [LogLinearHistogram; Stage::HISTOGRAMMED] {
        let mut merged: [LogLinearHistogram; Stage::HISTOGRAMMED] =
            std::array::from_fn(|_| LogLinearHistogram::with_scale(1.0));
        for shard in &self.shards {
            let shard = shard.lock().expect("trace shard poisoned");
            for (into, ring) in merged.iter_mut().zip(&shard.windows) {
                into.merge(&ring.merged(now_sec, span_secs));
            }
        }
        merged
    }

    /// Renders one drained event as the NDJSON wire object, resolving
    /// the interned machine name and decoding stage-specific payloads.
    pub fn event_to_value(&self, event: &SpanEvent) -> Value {
        let mut m = serde::Map::new();
        m.insert("request".into(), event.request.to_value());
        m.insert("stage".into(), event.stage.name().to_value());
        m.insert("ts_micros".into(), event.start_micros.to_value());
        m.insert("dur_micros".into(), event.dur_micros.to_value());
        if event.job != 0 {
            m.insert("job".into(), event.job.to_value());
        }
        if event.machine != 0 {
            m.insert(
                "machine".into(),
                self.machine_name(event.machine).to_value(),
            );
        }
        match event.stage {
            Stage::Grant => {
                m.insert("from_queue".into(), (event.code == 1).to_value());
            }
            Stage::Deny => {
                if let Some(name) = reason_code_name(event.code) {
                    m.insert("reason".into(), name.to_value());
                    if event.detail != 0 {
                        m.insert("blocking_job".into(), event.detail.to_value());
                    }
                    let until = f64::from_bits(event.aux);
                    if until != 0.0 && until.is_finite() {
                        m.insert("until".into(), until.to_value());
                    }
                }
            }
            _ => {
                if event.code != 0 {
                    m.insert("code".into(), event.code.to_value());
                }
            }
        }
        Value::Object(m)
    }
}

/// The per-request tracing context threaded through the service layers.
/// `Copy`, two words wide, and inert by default: every method on an
/// inert context returns immediately, so untraced paths (tracing off,
/// in-process callers, replay) pay nothing beyond the branch.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx<'a> {
    recorder: Option<&'a FlightRecorder>,
    request: u64,
    machine: u32,
}

impl RequestCtx<'static> {
    /// The no-op context used by untraced callers.
    pub const fn inert() -> RequestCtx<'static> {
        RequestCtx {
            recorder: None,
            request: 0,
            machine: 0,
        }
    }
}

impl<'a> RequestCtx<'a> {
    /// True when events emitted through this context are recorded.
    pub fn active(&self) -> bool {
        self.recorder.is_some()
    }

    /// The request ID (0 when inert).
    pub fn request(&self) -> u64 {
        self.request
    }

    /// Microseconds since the recorder epoch; 0 (and no clock read)
    /// when inert.
    pub fn now_micros(&self) -> u64 {
        match self.recorder {
            Some(r) => r.now_micros(),
            None => 0,
        }
    }

    /// A copy of this context bound to `machine` (interning the name);
    /// subsequent spans carry it automatically.
    pub fn with_machine(&self, machine: &str) -> RequestCtx<'a> {
        match self.recorder {
            Some(r) => RequestCtx {
                machine: r.intern(machine),
                ..*self
            },
            None => *self,
        }
    }

    /// A copy of this context re-bound to another request ID: a grant
    /// from the queue attaches its events to the request that originally
    /// *enqueued* the job, not the one whose release triggered the
    /// drain. A zero `request` (the job was enqueued untraced) keeps the
    /// current binding.
    pub fn for_request(&self, request: u64) -> RequestCtx<'a> {
        if self.recorder.is_some() && request != 0 {
            RequestCtx { request, ..*self }
        } else {
            *self
        }
    }

    /// Emits one duration span (no-op when inert).
    pub fn span(&self, stage: Stage, job: u64, code: u32, start_micros: u64, end_micros: u64) {
        self.emit(stage, job, code, 0, 0, start_micros, end_micros);
    }

    /// Emits one zero-duration marker (no-op when inert).
    pub fn instant(&self, stage: Stage, job: u64, code: u32, at_micros: u64) {
        self.emit(stage, job, code, 0, 0, at_micros, at_micros);
    }

    /// Emits a `Deny` marker carrying a scheduler block reason.
    pub fn deny(&self, job: u64, reason: Option<&BlockReason>, at_micros: u64) {
        let (code, blocking, until) = match reason {
            Some(r) => (
                reason_code(r),
                r.blocking_job().unwrap_or(0),
                r.until().unwrap_or(0.0),
            ),
            None => (0, 0, 0.0),
        };
        self.emit(
            Stage::Deny,
            job,
            code,
            blocking,
            until.to_bits(),
            at_micros,
            at_micros,
        );
    }

    /// The shared emit path: builds the `Copy` event and hands it to
    /// the recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        stage: Stage,
        job: u64,
        code: u32,
        detail: u64,
        aux: u64,
        start_micros: u64,
        end_micros: u64,
    ) {
        let Some(recorder) = self.recorder else {
            return;
        };
        recorder.record(SpanEvent {
            request: self.request,
            job,
            machine: self.machine,
            stage,
            code,
            detail,
            aux,
            start_micros,
            dur_micros: end_micros.saturating_sub(start_micros),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_mints_nothing_and_records_nothing() {
        let recorder = FlightRecorder::new();
        assert!(!recorder.enabled());
        let ctx = recorder.begin();
        assert!(!ctx.active());
        assert_eq!(ctx.request(), 0);
        assert_eq!(ctx.now_micros(), 0);
        ctx.span(Stage::Parse, 0, 0, 0, 10);
        ctx.instant(Stage::Grant, 1, 0, 10);
        ctx.deny(2, None, 10);
        let (events, dropped) = recorder.drain(None, false);
        assert!(events.is_empty(), "inert contexts must emit nothing");
        assert_eq!(dropped, 0);
        // The inert const context behaves identically.
        let inert = RequestCtx::inert();
        assert!(!inert.active());
        inert.span(Stage::Parse, 0, 0, 0, 10);
    }

    #[test]
    fn enabled_recorder_mints_increasing_ids_and_buffers_events() {
        let recorder = FlightRecorder::new();
        recorder.set_enabled(true);
        let a = recorder.begin();
        let b = recorder.begin();
        assert!(a.active() && b.active());
        assert!(b.request() > a.request());
        a.span(Stage::Parse, 0, 0, 5, 9);
        let on_machine = b.with_machine("m0");
        on_machine.span(Stage::Allocator, 7, 0, 10, 30);
        on_machine.instant(Stage::Grant, 7, 1, 30);
        let (events, dropped) = recorder.drain(None, false);
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 0);
        assert_eq!(events[0].stage, Stage::Parse);
        assert_eq!(events[0].dur_micros, 4);
        assert_eq!(events[1].stage, Stage::Allocator);
        assert_eq!(recorder.machine_name(events[1].machine), "m0");
        assert_eq!(events[2].code, 1, "grant-from-queue marker");
        // Stage histograms picked the spans up (parse 4µs, alloc 20µs).
        let histograms = recorder.stage_histograms();
        assert_eq!(histograms[Stage::Parse as usize].count(), 1);
        assert_eq!(histograms[Stage::Allocator as usize].count(), 1);
        assert_eq!(histograms[Stage::Allocator as usize].max(), 20.0);
        // Outcome markers are not histogrammed.
        assert_eq!(histograms.len(), Stage::HISTOGRAMMED);
    }

    #[test]
    fn ring_overflow_drops_oldest_first_and_counts() {
        // One shard of 4 slots so overflow is deterministic.
        let recorder = FlightRecorder::with_capacity(1, 4);
        recorder.set_enabled(true);
        let ctx = recorder.begin();
        for i in 0..7u64 {
            ctx.span(Stage::Parse, i + 1, 0, i * 10, i * 10 + 1);
        }
        let (events, dropped) = recorder.drain(None, false);
        assert_eq!(events.len(), 4, "ring caps at capacity");
        assert_eq!(dropped, 3, "three events were overwritten");
        // Oldest-first eviction: jobs 1..3 are gone, 4..7 survive in order.
        let jobs: Vec<u64> = events.iter().map(|e| e.job).collect();
        assert_eq!(jobs, vec![4, 5, 6, 7]);
        // A limited drain keeps the most recent events.
        let (limited, _) = recorder.drain(Some(2), false);
        assert_eq!(
            limited.iter().map(|e| e.job).collect::<Vec<_>>(),
            vec![6, 7]
        );
        // Clearing resets both the ring and the drop counter...
        let (_, _) = recorder.drain(None, true);
        let (after, dropped_after) = recorder.drain(None, false);
        assert!(after.is_empty());
        assert_eq!(dropped_after, 0);
        // ...but the lifetime counter is monotonic across clears.
        assert_eq!(recorder.dropped_total(), 3);
        ctx.span(Stage::Parse, 8, 0, 0, 1);
        assert_eq!(recorder.dropped_total(), 3, "non-overwriting push");
    }

    #[test]
    fn decision_ring_is_bounded_and_drains_oldest_first() {
        let recorder = FlightRecorder::new();
        for i in 0..(DECISION_CAPACITY as u64 + 5) {
            recorder.record_decision(i.to_value());
        }
        let all = recorder.decisions(None, false);
        assert_eq!(all.len(), DECISION_CAPACITY, "ring caps at capacity");
        assert_eq!(all[0].as_u64(), Some(5), "oldest five were evicted");
        let limited = recorder.decisions(Some(2), false);
        assert_eq!(
            limited.iter().map(Value::as_u64).collect::<Vec<_>>(),
            vec![
                Some(DECISION_CAPACITY as u64 + 3),
                Some(DECISION_CAPACITY as u64 + 4)
            ],
            "limit keeps the most recent records"
        );
        let drained = recorder.decisions(None, true);
        assert_eq!(drained.len(), DECISION_CAPACITY);
        assert!(recorder.decisions(None, false).is_empty());
    }

    #[test]
    fn stage_windows_cover_only_the_trailing_span() {
        let recorder = FlightRecorder::with_capacity(1, 64);
        recorder.set_enabled(true);
        let ctx = recorder.begin();
        // One parse span per second for seconds 0..5, each 3µs long.
        for sec in 0..5u64 {
            let at = sec * 1_000_000;
            ctx.span(Stage::Parse, 0, 0, at, at + 3);
        }
        let parse = Stage::Parse as usize;
        assert_eq!(recorder.stage_windows(4, 60)[parse].count(), 5);
        assert_eq!(recorder.stage_windows(4, 2)[parse].count(), 2);
        assert_eq!(recorder.stage_windows(4, 1)[parse].count(), 1);
        // The cumulative histogram is unaffected by windowing.
        assert_eq!(recorder.stage_histograms()[parse].count(), 5);
        // A minute later the windows have aged out entirely.
        assert_eq!(recorder.stage_windows(70, 60)[parse].count(), 0);
    }

    #[test]
    fn reason_codes_round_trip_for_every_block_reason() {
        let reasons = [
            BlockReason::InsufficientFree { free: 3, needed: 9 },
            BlockReason::HeadOfLine { blocking_job: 11 },
            BlockReason::WouldDelayShadow {
                blocking_job: 12,
                shadow_time: 250.0,
            },
            BlockReason::WouldDelayReservation {
                blocking_job: 13,
                reserved_start: 300.0,
            },
        ];
        for reason in &reasons {
            let code = reason_code(reason);
            assert!((1..=4).contains(&code), "codes stay in the wire range");
            assert_eq!(
                reason_code_name(code),
                Some(reason.code()),
                "reason_code_name inverts reason_code onto the stable tag"
            );
        }
        // The codes are distinct, and 0/unknown decode to nothing.
        let codes: std::collections::BTreeSet<u32> = reasons.iter().map(reason_code).collect();
        assert_eq!(codes.len(), reasons.len());
        assert_eq!(reason_code_name(0), None);
        assert_eq!(reason_code_name(5), None);
    }

    #[test]
    fn toggling_off_stops_new_contexts_immediately() {
        let recorder = FlightRecorder::new();
        recorder.set_enabled(true);
        let live = recorder.begin();
        recorder.set_enabled(false);
        // Contexts minted while off are inert...
        let off = recorder.begin();
        assert!(!off.active());
        off.span(Stage::Parse, 0, 0, 0, 1);
        // ...while an in-flight context finishes its request (events
        // from a request that started traced stay coherent).
        live.span(Stage::Parse, 0, 0, 0, 1);
        let (events, _) = recorder.drain(None, false);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].request, live.request());
    }

    #[test]
    fn deny_events_carry_the_block_reason() {
        let recorder = FlightRecorder::new();
        recorder.set_enabled(true);
        let ctx = recorder.begin();
        let reason = BlockReason::WouldDelayReservation {
            blocking_job: 42,
            reserved_start: 1500.0,
        };
        ctx.deny(7, Some(&reason), 100);
        ctx.deny(8, None, 110);
        let (events, _) = recorder.drain(None, false);
        assert_eq!(events[0].code, reason_code(&reason));
        assert_eq!(events[0].detail, 42);
        assert_eq!(f64::from_bits(events[0].aux), 1500.0);
        let rendered = recorder.event_to_value(&events[0]);
        assert_eq!(
            rendered.get("reason").and_then(Value::as_str),
            Some("would_delay_reservation")
        );
        assert_eq!(
            rendered.get("blocking_job").and_then(Value::as_u64),
            Some(42)
        );
        assert_eq!(rendered.get("until").and_then(Value::as_f64), Some(1500.0));
        // A reason-less deny renders without reason fields.
        let plain = recorder.event_to_value(&events[1]);
        assert!(plain.get("reason").is_none());
        assert_eq!(plain.get("stage").and_then(Value::as_str), Some("deny"));
    }

    #[test]
    fn intern_table_is_stable_and_shared() {
        let recorder = FlightRecorder::new();
        let a = recorder.intern("m0");
        let b = recorder.intern("m1");
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        assert_eq!(recorder.intern("m0"), a, "re-interning is idempotent");
        assert_eq!(recorder.machine_name(a), "m0");
        assert_eq!(recorder.machine_name(0), "");
        assert_eq!(recorder.intern(""), 0);
    }

    #[test]
    fn drain_merges_shards_in_start_order() {
        let recorder = FlightRecorder::with_capacity(4, 16);
        recorder.set_enabled(true);
        // Record from multiple threads so several shards fill.
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let recorder = &recorder;
                scope.spawn(move || {
                    let ctx = recorder.begin();
                    for i in 0..4u64 {
                        ctx.span(Stage::Parse, 0, 0, t * 4 + i, t * 4 + i + 1);
                    }
                });
            }
        });
        let (events, dropped) = recorder.drain(None, false);
        assert_eq!(events.len(), 16);
        assert_eq!(dropped, 0);
        let starts: Vec<u64> = events.iter().map(|e| e.start_micros).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "drain must merge shards in time order");
    }

    #[test]
    fn span_event_fits_one_cache_line_pair() {
        // The hot-path contract: events stay small and `Copy`.
        assert!(std::mem::size_of::<SpanEvent>() <= 64);
        let _: fn(SpanEvent) -> SpanEvent = |e| e; // Copy by value
    }
}
