//! A blocking TCP client for the service protocol.

use crate::framing::{self, FrameBuffer, Framing};
use crate::protocol::{JobRef, Request, Response};
use crate::registry::JobStatus;
use commalloc_mesh::NodeId;
use commalloc_workload::CommPattern;
use serde::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not parse as a protocol response, or the
    /// response kind did not match the request.
    Protocol(String),
    /// The server answered with a protocol-level error.
    Service(String),
    /// The request was refused client-side before any bytes were sent
    /// (e.g. a non-finite or non-positive walltime estimate, which the
    /// server would reject anyway and which NDJSON cannot even spell).
    InvalidRequest(String),
    /// The tenant's node-second quota would be exceeded (typed decode
    /// of the server's `quota_exceeded` error).
    QuotaExceeded {
        /// The tenant whose quota blocked admission.
        tenant: String,
        /// Node-seconds already committed or consumed against the quota.
        usage: f64,
        /// The quota itself.
        limit: f64,
    },
    /// A bare job id addressed through `@pool` matched jobs on several
    /// members (typed decode of the server's `ambiguous_job` error).
    AmbiguousJob {
        /// The pool that was addressed.
        pool: String,
        /// The colliding job id.
        job: u64,
        /// Every member holding that id, sorted.
        machines: Vec<String>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Service(e) => write!(f, "service error: {e}"),
            ClientError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
            ClientError::QuotaExceeded {
                tenant,
                usage,
                limit,
            } => write!(
                f,
                "quota exceeded for tenant {tenant}: {usage} of {limit} node-seconds"
            ),
            ClientError::AmbiguousJob {
                pool,
                job,
                machines,
            } => write!(
                f,
                "job {job} is ambiguous in @{pool}: held by {}",
                machines.join(", ")
            ),
        }
    }
}

/// Decodes a wire error into the richest client error its `code` and
/// `detail` admit; anything unrecognised stays a plain `Service` error.
fn decode_service_error(
    message: String,
    code: Option<String>,
    detail: Option<Value>,
) -> ClientError {
    let detail = detail.unwrap_or(Value::Null);
    match code.as_deref() {
        Some("quota_exceeded") => {
            if let (Some(tenant), Some(usage), Some(limit)) = (
                detail.get("tenant").and_then(Value::as_str),
                detail.get("usage").and_then(Value::as_f64),
                detail.get("limit").and_then(Value::as_f64),
            ) {
                return ClientError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    usage,
                    limit,
                };
            }
            ClientError::Service(message)
        }
        Some("ambiguous_job") => {
            let machines = detail
                .get("machines")
                .and_then(Value::as_array)
                .map(|ms| {
                    ms.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            if let (Some(pool), Some(job)) = (
                detail.get("pool").and_then(Value::as_str),
                detail.get("job").and_then(Value::as_u64),
            ) {
                return ClientError::AmbiguousJob {
                    pool: pool.to_string(),
                    job,
                    machines,
                };
            }
            ClientError::Service(message)
        }
        _ => ClientError::Service(message),
    }
}

/// Client-side mirror of the boundary rule on walltime estimates: when
/// present, the estimate must be finite and positive. Checked before a
/// request is rendered — `Value::Float(NaN)` has no NDJSON spelling, so
/// sending it would produce a malformed wire line rather than a clean
/// server-side rejection.
fn validate_walltime(walltime: Option<f64>) -> Result<(), ClientError> {
    match walltime {
        Some(w) if !crate::protocol::walltime_is_valid(w) => Err(ClientError::InvalidRequest(
            format!("walltime estimate must be finite and positive, got {w}"),
        )),
        _ => Ok(()),
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Outcome of a client-side allocation call (mirror of the service's
/// [`crate::registry::AllocOutcome`], decoded from the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAllocOutcome {
    /// Granted these processors.
    Granted(Vec<NodeId>),
    /// Queued at this 1-based position.
    Queued(usize),
    /// Rejected for this reason.
    Rejected(String),
}

/// One drain of the daemon's flight recorder (see
/// [`ServiceClient::trace_events`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDump {
    /// Span events, oldest first, as raw wire values.
    pub events: Vec<Value>,
    /// Events lost to ring-buffer overflow since the last clearing drain.
    pub dropped: u64,
    /// Whether the recorder was capturing at drain time.
    pub enabled: bool,
    /// Routing-decision records, oldest first, as raw wire values.
    pub decisions: Vec<Value>,
}

/// Jobs granted from the queue by a release, in grant order.
pub type GrantedJobs = Vec<(u64, Vec<NodeId>)>;

/// A blocking connection to the daemon.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    framing: Framing,
    frames: FrameBuffer,
}

impl ServiceClient {
    /// Connects to a running server speaking NDJSON (the default).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServiceClient> {
        ServiceClient::connect_with_framing(addr, Framing::Ndjson)
    }

    /// Connects to a running server speaking the given framing. The
    /// server discriminates per frame, so no handshake is needed — the
    /// first request's leading byte is the negotiation.
    pub fn connect_with_framing(
        addr: impl ToSocketAddrs,
        framing: Framing,
    ) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer,
            framing,
            frames: FrameBuffer::new(),
        })
    }

    /// The framing this client sends requests in.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    /// Sends one request and reads its response frame.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.framing {
            Framing::Ndjson => {
                writeln!(self.writer, "{}", request.to_line())?;
                self.writer.flush()?;
                let mut line = String::new();
                if self.reader.read_line(&mut line)? == 0 {
                    return Err(ClientError::Protocol(
                        "server closed the connection".to_string(),
                    ));
                }
                Response::from_line(&line).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            Framing::Binary => {
                let bytes = framing::encode_frame(&request.to_value())
                    .map_err(|e| ClientError::InvalidRequest(format!("unencodable: {e}")))?;
                self.writer.write_all(&bytes)?;
                self.writer.flush()?;
                self.read_response_frame()
            }
        }
    }

    /// Reads one complete frame (of either framing — the server answers
    /// in the request's, but decoding stays general) into a `Response`.
    fn read_response_frame(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some(frame) = self
                .frames
                .next_frame()
                .map_err(|e| ClientError::Protocol(e.to_string()))?
            {
                return match frame.framing {
                    Framing::Ndjson => std::str::from_utf8(&frame.payload)
                        .map_err(|e| ClientError::Protocol(e.to_string()))
                        .and_then(|line| {
                            Response::from_line(line)
                                .map_err(|e| ClientError::Protocol(e.to_string()))
                        }),
                    Framing::Binary => framing::decode_value(&frame.payload)
                        .map_err(|e| ClientError::Protocol(e.to_string()))
                        .and_then(|value| {
                            Response::from_value(&value)
                                .map_err(|e| ClientError::Protocol(e.to_string()))
                        }),
                };
            }
            let chunk = self.reader.fill_buf()?;
            if chunk.is_empty() {
                return Err(ClientError::Protocol(
                    "server closed the connection".to_string(),
                ));
            }
            let consumed = chunk.len();
            self.frames.extend(chunk);
            self.reader.consume(consumed);
        }
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        decode: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        match self.roundtrip(request)? {
            Response::Error {
                message,
                code,
                detail,
            } => Err(decode_service_error(message, code, detail)),
            other => decode(other).map_err(|unexpected| {
                ClientError::Protocol(format!("unexpected response {unexpected:?}"))
            }),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Ping, |r| match r {
            Response::Pong => Ok(()),
            other => Err(other),
        })
    }

    /// Registers a machine (see [`crate::AllocationService::register`]
    /// for the spec grammar). `scheduler` picks the admission policy
    /// (`"fcfs"`, `"backfill"`, `"easy"`, `"conservative"`;
    /// `None` = FCFS).
    pub fn register(
        &mut self,
        machine: &str,
        mesh: &str,
        allocator: Option<&str>,
        strategy: Option<&str>,
        scheduler: Option<&str>,
    ) -> Result<(), ClientError> {
        self.register_in_pool(machine, mesh, allocator, strategy, scheduler, None)
    }

    /// Registers a machine and joins it to cluster pool `pool` (see
    /// [`crate::AllocationService::register_in_pool`]).
    pub fn register_in_pool(
        &mut self,
        machine: &str,
        mesh: &str,
        allocator: Option<&str>,
        strategy: Option<&str>,
        scheduler: Option<&str>,
        pool: Option<&str>,
    ) -> Result<(), ClientError> {
        let request = Request::Register {
            machine: machine.to_string(),
            mesh: mesh.to_string(),
            allocator: allocator.map(str::to_string),
            strategy: strategy.map(str::to_string),
            scheduler: scheduler.map(str::to_string),
            pool: pool.map(str::to_string),
        };
        self.expect(&request, |r| match r {
            Response::Registered { .. } => Ok(()),
            other => Err(other),
        })
    }

    /// Requests `size` processors for `job`, without a runtime estimate.
    pub fn alloc(
        &mut self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
    ) -> Result<ClientAllocOutcome, ClientError> {
        self.alloc_with_walltime(machine, job, size, wait, None)
    }

    /// Requests `size` processors for `job`, supplying the runtime
    /// estimate in seconds that EASY backfilling plans with.
    pub fn alloc_with_walltime(
        &mut self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
    ) -> Result<ClientAllocOutcome, ClientError> {
        self.alloc_patterned(machine, job, size, wait, walltime, None)
    }

    /// Requests `size` processors for `job`, declaring the job's
    /// communication pattern so the server can score candidate
    /// placements by predicted contention.
    pub fn alloc_patterned(
        &mut self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
    ) -> Result<ClientAllocOutcome, ClientError> {
        self.alloc_as(machine, job, size, wait, walltime, pattern, None)
    }

    /// [`ServiceClient::alloc_patterned`] on behalf of a tenant. `None`
    /// falls back to the connection's `hello` binding (or the default
    /// tenant).
    #[allow(clippy::too_many_arguments)]
    pub fn alloc_as(
        &mut self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        tenant: Option<&str>,
    ) -> Result<ClientAllocOutcome, ClientError> {
        validate_walltime(walltime)?;
        let request = Request::Alloc {
            machine: machine.to_string(),
            job,
            size,
            wait,
            walltime,
            pattern,
            tenant: tenant.map(str::to_string),
        };
        self.expect(&request, |r| match r {
            Response::Granted { nodes, .. } => Ok(ClientAllocOutcome::Granted(nodes)),
            Response::Queued { position, .. } => Ok(ClientAllocOutcome::Queued(position)),
            Response::Rejected { reason, .. } => Ok(ClientAllocOutcome::Rejected(reason)),
            other => Err(other),
        })
    }

    /// Requests `size` processors for `job` from `target` — a machine
    /// name or a `"@pool"` cluster address — and returns the machine
    /// that actually took the request alongside the outcome. For a
    /// routed request the server names the chosen member; a direct
    /// request echoes `target` itself.
    pub fn alloc_routed(
        &mut self,
        target: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
    ) -> Result<(String, ClientAllocOutcome), ClientError> {
        self.alloc_routed_as(target, job, size, wait, walltime, pattern, None)
    }

    /// [`ServiceClient::alloc_routed`] on behalf of a tenant.
    #[allow(clippy::too_many_arguments)]
    pub fn alloc_routed_as(
        &mut self,
        target: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        tenant: Option<&str>,
    ) -> Result<(String, ClientAllocOutcome), ClientError> {
        validate_walltime(walltime)?;
        let request = Request::Alloc {
            machine: target.to_string(),
            job,
            size,
            wait,
            walltime,
            pattern,
            tenant: tenant.map(str::to_string),
        };
        let routed = target.starts_with('@');
        let resolve = move |machine: Option<String>| -> Result<String, ClientError> {
            match machine {
                Some(m) => Ok(m),
                None if !routed => Ok(target.to_string()),
                None => Err(ClientError::Protocol(
                    "routed alloc response names no machine".to_string(),
                )),
            }
        };
        match self.roundtrip(&request)? {
            Response::Error {
                message,
                code,
                detail,
            } => Err(decode_service_error(message, code, detail)),
            Response::Granted { nodes, machine, .. } => {
                Ok((resolve(machine)?, ClientAllocOutcome::Granted(nodes)))
            }
            Response::Queued {
                position, machine, ..
            } => Ok((resolve(machine)?, ClientAllocOutcome::Queued(position))),
            Response::Rejected {
                reason, machine, ..
            } => Ok((resolve(machine)?, ClientAllocOutcome::Rejected(reason))),
            other => Err(ClientError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Switches the routing policy of pool `pool` (no `@` sigil);
    /// returns the canonical name of the now-active policy.
    pub fn set_router(&mut self, pool: &str, policy: &str) -> Result<String, ClientError> {
        let request = Request::SetRouter {
            pool: pool.to_string(),
            policy: policy.to_string(),
        };
        self.expect(&request, |r| match r {
            Response::RouterSet { policy, .. } => Ok(policy),
            other => Err(other),
        })
    }

    /// Sends several requests on one wire line and returns the per-
    /// request responses in order (the round-trip saver). Service-level
    /// failures of individual members come back as
    /// [`Response::Error`] entries rather than failing the whole batch.
    pub fn batch(&mut self, requests: Vec<Request>) -> Result<Vec<Response>, ClientError> {
        let expected = requests.len();
        match self.roundtrip(&Request::Batch(requests))? {
            Response::Error {
                message,
                code,
                detail,
            } => Err(decode_service_error(message, code, detail)),
            Response::Batch(responses) if responses.len() == expected => Ok(responses),
            Response::Batch(responses) => Err(ClientError::Protocol(format!(
                "batch of {expected} answered with {} responses",
                responses.len()
            ))),
            other => Err(ClientError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Switches the machine's scheduling policy at runtime; returns the
    /// jobs the re-drain admitted from the queue, in grant order.
    pub fn set_scheduler(
        &mut self,
        machine: &str,
        scheduler: &str,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ClientError> {
        let request = Request::SetScheduler {
            machine: machine.to_string(),
            scheduler: scheduler.to_string(),
        };
        self.expect(&request, |r| match r {
            Response::SchedulerSet { granted, .. } => Ok(granted),
            other => Err(other),
        })
    }

    /// Releases (or cancels) `job`; returns the jobs granted from the
    /// queue by this release.
    pub fn release(
        &mut self,
        machine: &str,
        job: u64,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ClientError> {
        self.release_ref(Some(machine), &JobRef::Bare(job))
            .map(|(_, granted)| granted)
    }

    /// Releases a job by reference. `machine` may be a member name, a
    /// `"@pool"` address (the pool's job index resolves a bare id to
    /// its owning member), or `None` when the reference itself is
    /// qualified (`"m0/7"`, `"grid/m0/7"`). Returns the member that
    /// held the job (when the server names it) and the jobs granted
    /// from the queue by this release.
    pub fn release_ref(
        &mut self,
        machine: Option<&str>,
        job: &JobRef,
    ) -> Result<(Option<String>, GrantedJobs), ClientError> {
        let request = Request::Release {
            machine: machine.map(str::to_string),
            job: job.clone(),
        };
        self.expect(&request, |r| match r {
            Response::Released {
                granted, machine, ..
            } => Ok((machine, granted)),
            other => Err(other),
        })
    }

    /// Where `job` stands.
    pub fn poll(&mut self, machine: &str, job: u64) -> Result<JobStatus, ClientError> {
        self.poll_ref(Some(machine), &JobRef::Bare(job))
            .map(|(_, status)| status)
    }

    /// [`ServiceClient::poll`] by job reference, with the same
    /// addressing forms as [`ServiceClient::release_ref`]. Returns the
    /// resolved member (when the server names it) and the status.
    pub fn poll_ref(
        &mut self,
        machine: Option<&str>,
        job: &JobRef,
    ) -> Result<(Option<String>, JobStatus), ClientError> {
        let request = Request::Poll {
            machine: machine.map(str::to_string),
            job: job.clone(),
        };
        self.expect(&request, |r| match r {
            Response::Running { nodes, machine, .. } => Ok((machine, JobStatus::Running(nodes))),
            Response::Waiting {
                position, machine, ..
            } => Ok((machine, JobStatus::Queued(position))),
            Response::Unknown { .. } => Ok((None, JobStatus::Unknown)),
            other => Err(other),
        })
    }

    /// Binds this connection to `tenant`: subsequent requests without
    /// an explicit tenant are billed to it. Returns the bound tenant as
    /// the server confirmed it.
    pub fn hello(&mut self, tenant: &str) -> Result<String, ClientError> {
        let request = Request::Hello {
            tenant: tenant.to_string(),
        };
        self.expect(&request, |r| match r {
            Response::Hello { tenant } => Ok(tenant),
            other => Err(other),
        })
    }

    /// Creates or reconfigures a tenant: fair-share `weight`,
    /// node-second `quota`, and wire in-flight cap. `None` leaves a
    /// field unchanged; `Some(0.0)` / `Some(0)` clears quota or cap.
    /// Returns the tenant's effective `(weight, quota, max_in_flight)`.
    pub fn set_tenant(
        &mut self,
        tenant: &str,
        weight: Option<f64>,
        quota: Option<f64>,
        max_in_flight: Option<u64>,
    ) -> Result<(f64, Option<f64>, Option<u64>), ClientError> {
        let request = Request::SetTenant {
            tenant: tenant.to_string(),
            weight,
            quota,
            max_in_flight,
        };
        self.expect(&request, |r| match r {
            Response::TenantSet {
                weight,
                quota,
                max_in_flight,
                ..
            } => Ok((weight, quota, max_in_flight)),
            other => Err(other),
        })
    }

    /// Per-tenant accounting snapshot (raw wire value: one object per
    /// tenant keyed by name).
    pub fn tenants(&mut self) -> Result<Value, ClientError> {
        self.expect(&Request::Tenants, |r| match r {
            Response::Tenants(v) => Ok(v),
            other => Err(other),
        })
    }

    /// Turns weighted fair-share admission on or off for `machine`;
    /// returns the jobs the re-drain admitted from the queue.
    pub fn set_fair_share(
        &mut self,
        machine: &str,
        enabled: bool,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ClientError> {
        let request = Request::SetFairShare {
            machine: machine.to_string(),
            enabled,
        };
        self.expect(&request, |r| match r {
            Response::FairShareSet { granted, .. } => Ok(granted),
            other => Err(other),
        })
    }

    /// Occupancy snapshot of `machine` (raw wire value).
    pub fn query(&mut self, machine: &str) -> Result<Value, ClientError> {
        let request = Request::Query {
            machine: machine.to_string(),
        };
        self.expect(&request, |r| match r {
            Response::Snapshot(v) => Ok(v),
            other => Err(other),
        })
    }

    /// Counter snapshot of `machine` (raw wire value).
    pub fn stats(&mut self, machine: &str) -> Result<Value, ClientError> {
        let request = Request::Stats {
            machine: machine.to_string(),
        };
        self.expect(&request, |r| match r {
            Response::Stats(v) => Ok(v),
            other => Err(other),
        })
    }

    /// Operational counters of the daemon's write-ahead journal (raw
    /// wire value; `{"enabled": false}` when journaling is off).
    pub fn journal_stats(&mut self) -> Result<Value, ClientError> {
        self.expect(&Request::JournalStats, |r| match r {
            Response::JournalStats(v) => Ok(v),
            other => Err(other),
        })
    }

    /// Turns the daemon's flight recorder on or off; returns the new
    /// state as the server confirmed it.
    pub fn set_trace(&mut self, enabled: bool) -> Result<bool, ClientError> {
        self.set_trace_with_calibration(enabled, None)
    }

    /// [`ServiceClient::set_trace`] that also flips the placement
    /// calibration plane (`Some(state)`; `None` leaves it unchanged).
    pub fn set_trace_with_calibration(
        &mut self,
        enabled: bool,
        calibration: Option<bool>,
    ) -> Result<bool, ClientError> {
        let request = Request::SetTrace {
            enabled,
            calibration,
        };
        self.expect(&request, |r| match r {
            Response::TraceSet { enabled } => Ok(enabled),
            other => Err(other),
        })
    }

    /// Drains up to `limit` span events from the daemon's flight
    /// recorder (all of them when `None`). `clear` discards the drained
    /// events server-side; otherwise they stay for the next reader.
    pub fn trace_events(
        &mut self,
        limit: Option<usize>,
        clear: bool,
    ) -> Result<TraceDump, ClientError> {
        self.expect(&Request::Trace { limit, clear }, |r| match r {
            Response::Trace {
                events,
                dropped,
                enabled,
                decisions,
            } => Ok(TraceDump {
                events,
                dropped,
                enabled,
                decisions,
            }),
            other => Err(other),
        })
    }

    /// Daemon-wide metrics. `format` is `"json"` (structured
    /// [`Value`]) or `"prometheus"` (the exposition text as a
    /// `Value::Str`).
    pub fn metrics(&mut self, format: &str) -> Result<Value, ClientError> {
        self.metrics_windowed(format, None)
    }

    /// [`ServiceClient::metrics`] with the stage and pool histograms
    /// restricted to a trailing window (`"10s"` or `"60s"`).
    pub fn metrics_windowed(
        &mut self,
        format: &str,
        window: Option<&str>,
    ) -> Result<Value, ClientError> {
        let request = Request::Metrics {
            format: format.to_string(),
            window: window.map(str::to_string),
        };
        self.expect(&request, |r| match r {
            Response::Metrics { metrics, .. } => Ok(metrics),
            other => Err(other),
        })
    }

    /// The daemon's placement calibration report (raw wire value: per-
    /// pattern × per-policy predicted-vs-realized histograms and rank
    /// correlations).
    pub fn calibration(&mut self) -> Result<Value, ClientError> {
        self.expect(&Request::Calibration, |r| match r {
            Response::Calibration(v) => Ok(v),
            other => Err(other),
        })
    }

    /// Names of all registered machines.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        self.expect(&Request::List, |r| match r {
            Response::Machines(names) => Ok(names),
            other => Err(other),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::service::AllocationService;

    #[test]
    fn typed_client_round_trips_against_a_live_server() {
        let service = AllocationService::new();
        let handle = Server::bind("127.0.0.1:0", service, 2)
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = ServiceClient::connect(handle.addr()).unwrap();

        client.ping().unwrap();
        client.register("m0", "8x8", None, None, None).unwrap();
        assert_eq!(client.list().unwrap(), vec!["m0".to_string()]);

        let ClientAllocOutcome::Granted(nodes) = client.alloc("m0", 1, 10, false).unwrap() else {
            panic!("grant expected");
        };
        assert_eq!(nodes.len(), 10);
        assert_eq!(client.poll("m0", 1).unwrap(), JobStatus::Running(nodes));

        let snapshot = client.query("m0").unwrap();
        assert_eq!(snapshot.get("busy").and_then(Value::as_u64), Some(10));

        // Service-level failures surface as ClientError::Service.
        let err = client.alloc("nope", 1, 1, false).unwrap_err();
        assert!(matches!(err, ClientError::Service(_)), "got {err:?}");

        // Poisoned walltime estimates are refused before any bytes move:
        // a typed error, never a grant with NaN in the reservation math.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -5.0] {
            let err = client
                .alloc_with_walltime("m0", 99, 1, true, Some(bad))
                .unwrap_err();
            assert!(
                matches!(err, ClientError::InvalidRequest(_)),
                "walltime {bad} gave {err:?}"
            );
            let err = client
                .alloc_routed("m0", 99, 1, true, Some(bad), None)
                .unwrap_err();
            assert!(matches!(err, ClientError::InvalidRequest(_)));
        }
        assert_eq!(
            client.poll("m0", 99).unwrap(),
            JobStatus::Unknown,
            "rejected walltimes must not reach the server"
        );

        assert!(client.release("m0", 1).unwrap().is_empty());
        let stats = client.stats("m0").unwrap();
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get("released"))
                .and_then(Value::as_u64),
            Some(1)
        );
        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn binary_framed_client_round_trips_against_a_live_server() {
        let service = AllocationService::new();
        let handle = Server::bind("127.0.0.1:0", service, 2)
            .unwrap()
            .spawn()
            .unwrap();
        let mut client =
            ServiceClient::connect_with_framing(handle.addr(), Framing::Binary).unwrap();
        assert_eq!(client.framing(), Framing::Binary);

        client.ping().unwrap();
        client.register("b0", "8x8", None, None, None).unwrap();
        assert_eq!(client.list().unwrap(), vec!["b0".to_string()]);
        let ClientAllocOutcome::Granted(nodes) = client
            .alloc_with_walltime("b0", 1, 10, false, Some(60.0))
            .unwrap()
        else {
            panic!("grant expected");
        };
        assert_eq!(nodes.len(), 10);
        let snapshot = client.query("b0").unwrap();
        assert_eq!(snapshot.get("busy").and_then(Value::as_u64), Some(10));
        assert!(client.release("b0", 1).unwrap().is_empty());

        // Batches (nested values) survive the binary codec too.
        let responses = client.batch(vec![Request::Ping, Request::List]).unwrap();
        assert_eq!(
            responses,
            vec![Response::Pong, Response::Machines(vec!["b0".into()])]
        );

        // Service-level failures still decode as typed errors.
        let err = client.alloc("nope", 1, 1, false).unwrap_err();
        assert!(matches!(err, ClientError::Service(_)), "got {err:?}");

        drop(client);
        handle.shutdown().unwrap();
    }
}
