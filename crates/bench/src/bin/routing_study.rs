//! Routing-policy study on a communication-heavy SWF trace: does
//! shortest-queue's dominance (established by `cluster_routing` on a
//! pattern-free stream) survive once jobs declare communication
//! patterns and placement quality starts to matter?
//!
//! The job stream is the synthetic SDSC-Paragon trace (Section 3.1 of
//! the paper), round-tripped through the SWF reader so a real trace can
//! be substituted with `--swf FILE`, load-compressed onto the
//! heterogeneous 4-machine pool, and annotated with a deterministic
//! communication-heavy pattern mix (~70% of jobs declare a pattern,
//! weighted towards all-to-all and all-pairs ping-pong). Every
//! `RoutingPolicy` routes the same stream through `replay_cluster` in
//! deterministic virtual time; besides the queue-wait statistics the
//! study scores every patterned grant's *actual placement* with
//! [`commalloc_service::score::predicted_contention_2d`] — the same
//! metric the comm-aware router minimises — so the output separates the
//! two axes: who waits least, and who places best.
//!
//! The study runs at two load levels, because the answer differs. At
//! *moderate* load (most jobs granted promptly) routing choice controls
//! placement: comm-aware beats every policy on both axes and
//! shortest-queue's wait dominance does not survive. At *saturation*
//! the realized placement score is dominated by how full the chosen
//! machine is at grant time, which favours the slow-but-spread routers
//! on the contention axis even as they lose badly on wait.
//!
//! Emits `BENCH_routing.json`. On the canonical configuration the
//! comm-aware router must achieve a mean predicted contention no worse
//! than round-robin's at the moderate level (the CI bench gate).
//!
//! Usage: `routing_study [--jobs N] [--seed S] [--load F] [--swf FILE]`
//! (`--load` replaces the canonical two-level sweep with one custom
//! level, which disables the gate.)

use commalloc_mesh::Mesh2D;
use commalloc_service::score::predicted_contention_2d;
use commalloc_service::{replay_cluster, AllocationService, ReplayJob, RoutingPolicy};
use commalloc_workload::synthetic::ParagonTraceModel;
use commalloc_workload::{swf, CommPattern, Trace};
use serde::{Map, Serialize, Value};
use std::collections::HashMap;
use std::time::Instant;

/// The heterogeneous pool: 256 + 128 + 64 + 32 = 480 processors.
const MEMBERS: [(&str, u16, u16); 4] = [("m0", 16, 16), ("m1", 16, 8), ("m2", 8, 8), ("m3", 8, 4)];
const LARGEST_MEMBER: usize = 256;
const DEFAULT_JOBS: usize = 400;
const DEFAULT_SEED: u64 = 1996;
/// The canonical load levels (the paper's arrival-compression knob):
/// the Paragon stream offers ~25% of this pool, so 0.6 roughly doubles
/// the load (moderate — queues form but drain) and 0.3 saturates it.
const LOAD_LEVELS: [(&str, f64); 2] = [("moderate", 0.6), ("saturated", 0.3)];

/// The deterministic communication-heavy pattern mix: ~70% of jobs
/// declare a pattern, weighted towards the densest ones. Keyed on the
/// job id only, so the same trace always carries the same annotations.
fn assign_pattern(id: u64) -> Option<CommPattern> {
    match id % 10 {
        0..=2 => Some(CommPattern::AllToAll),
        3 | 4 => Some(CommPattern::AllPairsPingPong),
        5 => Some(CommPattern::TestSuite),
        6 => Some(CommPattern::Stencil2D),
        7 => Some(CommPattern::Ring),
        _ => None,
    }
}

/// Loads the trace: a real SWF file when given, otherwise the synthetic
/// Paragon model round-tripped through the SWF writer/reader (so both
/// paths exercise exactly the trace plumbing a real file would).
fn load_trace(swf_path: Option<&str>, jobs: usize, seed: u64) -> Trace {
    match swf_path {
        Some(path) => swf::parse_file(path)
            .unwrap_or_else(|e| panic!("cannot parse SWF trace {path}: {e}"))
            .truncate(jobs),
        None => {
            let synthetic = ParagonTraceModel::scaled(jobs).generate(seed);
            let mut wire = Vec::new();
            swf::write_writer(&synthetic, &mut wire).expect("in-memory SWF write");
            swf::parse_reader(&wire[..]).expect("the SWF writer emits parseable SWF")
        }
    }
}

/// Converts the (load-compressed, fitting) trace into the patterned
/// replay stream. Durations are the integral message quotas, keeping
/// every virtual event time exact in `f64`.
fn replay_jobs(trace: &Trace) -> Vec<ReplayJob> {
    trace
        .jobs()
        .iter()
        .map(|j| {
            let job = ReplayJob::new(j.id, j.size, j.arrival, j.message_quota() as f64);
            match assign_pattern(j.id) {
                Some(p) => job.with_pattern(p),
                None => job,
            }
        })
        .collect()
}

struct PolicyRow {
    policy: RoutingPolicy,
    mean_wait: f64,
    p99_wait: f64,
    makespan: f64,
    mean_contention: f64,
    scored_grants: u64,
    ops_per_sec: f64,
}

fn run_policy(policy: RoutingPolicy, jobs: &[ReplayJob]) -> PolicyRow {
    let service = AllocationService::new();
    let meshes: HashMap<&str, Mesh2D> = MEMBERS
        .iter()
        .map(|&(name, w, h)| {
            service
                .register_in_pool(name, &format!("{w}x{h}"), None, None, None, Some("grid"))
                .expect("fresh service accepts registration");
            (name, Mesh2D::new(w, h))
        })
        .collect();
    service
        .set_router("grid", policy.name())
        .expect("policy parses");
    let start = Instant::now();
    let log = replay_cluster(&service, "grid", jobs, None);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(log.rejected.is_empty(), "curve allocators never refuse");
    let granted: usize = log.grants.values().map(Vec::len).sum();
    assert_eq!(granted, jobs.len(), "every job must run");

    let by_id: HashMap<u64, &ReplayJob> = jobs.iter().map(|j| (j.id, j)).collect();
    let mut waits: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut contention_sum = 0.0f64;
    let mut scored = 0u64;
    for (name, _, _) in MEMBERS {
        let mesh = meshes[name];
        for grant in &log.grants[name] {
            let job = by_id[&grant.job_id];
            waits.push(grant.time - job.arrival);
            if let Some(pattern) = job.pattern {
                contention_sum +=
                    predicted_contention_2d(mesh, &grant.nodes, pattern, grant.job_id).total();
                scored += 1;
            }
        }
    }
    waits.sort_by(f64::total_cmp);
    PolicyRow {
        policy,
        mean_wait: waits.iter().sum::<f64>() / waits.len() as f64,
        p99_wait: waits[((0.99 * waits.len() as f64).ceil() as usize).clamp(1, waits.len()) - 1],
        makespan: log.end_time,
        mean_contention: contention_sum / scored.max(1) as f64,
        scored_grants: scored,
        ops_per_sec: 2.0 * jobs.len() as f64 / elapsed.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = DEFAULT_JOBS;
    let mut seed = DEFAULT_SEED;
    let mut custom_load: Option<f64> = None;
    let mut swf_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        // A malformed value must not silently fall back to the canonical
        // configuration — the JSON it writes would look canonical too.
        let value = |flag: &str| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match args[i].as_str() {
            "--jobs" => {
                let v = value("--jobs");
                jobs = v
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid value {v:?} for --jobs"));
                i += 1;
            }
            "--seed" => {
                let v = value("--seed");
                seed = v
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid value {v:?} for --seed"));
                i += 1;
            }
            "--load" => {
                let v = value("--load");
                custom_load = Some(
                    v.parse()
                        .ok()
                        .filter(|&f: &f64| f > 0.0 && f <= 1.0)
                        .unwrap_or_else(|| panic!("invalid value {v:?} for --load")),
                );
                i += 1;
            }
            "--swf" => {
                swf_path = Some(value("--swf"));
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    let base = load_trace(swf_path.as_deref(), jobs, seed).filter_fitting(LARGEST_MEMBER);
    let levels: Vec<(&str, f64)> = match custom_load {
        Some(f) => vec![("custom", f)],
        None => LOAD_LEVELS.to_vec(),
    };

    let mut level_values = Vec::new();
    // The gated quantities, captured at the moderate level.
    let mut gate: Option<(f64, f64)> = None;
    for (level_name, load) in &levels {
        let stream = replay_jobs(&base.with_load_factor(*load));
        let patterned = stream.iter().filter(|j| j.pattern.is_some()).count();
        println!(
            "[{level_name}] {} jobs ({patterned} patterned) at load factor {load}, seed {seed}",
            stream.len(),
        );
        let mut rows = Vec::new();
        for policy in RoutingPolicy::all() {
            let row = run_policy(policy, &stream);
            println!(
                "  {:<15} mean wait {:>9.1} s | p99 wait {:>9.0} s | makespan {:>9.0} s | \
             mean contention {:>7.2} over {:>3} grants | {:>8.0} ops/s",
                row.policy.name(),
                row.mean_wait,
                row.p99_wait,
                row.makespan,
                row.mean_contention,
                row.scored_grants,
                row.ops_per_sec,
            );
            rows.push(row);
        }

        let by = |policy: RoutingPolicy| -> &PolicyRow {
            rows.iter()
                .find(|r| r.policy == policy)
                .expect("all policies ran")
        };
        let min_by = |key: fn(&PolicyRow) -> f64| -> &PolicyRow {
            rows.iter()
                .min_by(|a, b| key(a).total_cmp(&key(b)))
                .expect("rows is non-empty")
        };
        let rr = by(RoutingPolicy::RoundRobin);
        let sq = by(RoutingPolicy::ShortestQueue);
        let ca = by(RoutingPolicy::CommAware);
        let wait_winner = min_by(|r| r.mean_wait);
        let contention_winner = min_by(|r| r.mean_contention);
        println!(
            "  wait winner: {} ({:.1} s); contention winner: {} ({:.2}); \
         comm-aware contention is {:.2}x round-robin, wait {:.2}x shortest-queue",
            wait_winner.policy.name(),
            wait_winner.mean_wait,
            contention_winner.policy.name(),
            contention_winner.mean_contention,
            ca.mean_contention / rr.mean_contention.max(1e-9),
            ca.mean_wait / sq.mean_wait.max(1e-9),
        );
        if *level_name == "moderate" {
            gate = Some((ca.mean_contention, rr.mean_contention));
        }

        let mut level = Map::new();
        level.insert("level".into(), level_name.to_value());
        level.insert("load_factor".into(), load.to_value());
        level.insert("jobs".into(), stream.len().to_value());
        level.insert("patterned_jobs".into(), patterned.to_value());
        level.insert(
            "results".into(),
            Value::Array(
                rows.iter()
                    .map(|r| {
                        let mut row = Map::new();
                        row.insert("router".into(), r.policy.name().to_value());
                        row.insert("mean_wait_seconds".into(), r.mean_wait.to_value());
                        row.insert("p99_wait_seconds".into(), r.p99_wait.to_value());
                        row.insert("makespan_seconds".into(), r.makespan.to_value());
                        row.insert(
                            "mean_predicted_contention".into(),
                            r.mean_contention.to_value(),
                        );
                        row.insert("scored_grants".into(), r.scored_grants.to_value());
                        row.insert("service_ops_per_sec".into(), r.ops_per_sec.to_value());
                        Value::Object(row)
                    })
                    .collect(),
            ),
        );
        level.insert(
            "mean_wait_winner".into(),
            wait_winner.policy.name().to_value(),
        );
        level.insert(
            "contention_winner".into(),
            contention_winner.policy.name().to_value(),
        );
        level.insert(
            "comm_aware_vs_round_robin_contention".into(),
            (ca.mean_contention / rr.mean_contention.max(1e-9)).to_value(),
        );
        level.insert(
            "comm_aware_vs_shortest_queue_wait".into(),
            (ca.mean_wait / sq.mean_wait.max(1e-9)).to_value(),
        );
        level_values.push(Value::Object(level));
    }

    let mut out = Map::new();
    out.insert("benchmark".into(), "routing_study".to_value());
    out.insert(
        "pool".into(),
        Value::Array(
            MEMBERS
                .iter()
                .map(|(name, w, h)| {
                    let mut m = Map::new();
                    m.insert("machine".into(), name.to_value());
                    m.insert("mesh".into(), format!("{w}x{h}").to_value());
                    m.insert("nodes".into(), (*w as usize * *h as usize).to_value());
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    out.insert(
        "trace".into(),
        swf_path
            .as_deref()
            .unwrap_or("synthetic-paragon")
            .to_value(),
    );
    out.insert("seed".into(), seed.to_value());
    out.insert("levels".into(), Value::Array(level_values));
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_routing.json", &json).expect("can write BENCH_routing.json");
    println!("wrote BENCH_routing.json");

    // The acceptance gate applies to the canonical configuration only
    // (and to the moderate level: under saturation the realized score is
    // dominated by grant-time machine fullness, not routing choice); a
    // custom trace, seed or load carries no ordering guarantee, so it
    // reports without aborting.
    if swf_path.is_none() && jobs == DEFAULT_JOBS && seed == DEFAULT_SEED && custom_load.is_none() {
        let (ca, rr) = gate.expect("the canonical sweep includes the moderate level");
        assert!(
            ca <= rr,
            "comm-aware routing should not place patterned jobs worse than \
             round-robin at moderate load (comm-aware {ca:.3} vs round-robin {rr:.3})"
        );
    }
}
