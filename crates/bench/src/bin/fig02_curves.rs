//! Figure 2: the S-curve, Hilbert curve and H-indexing on a small square mesh.
//!
//! ```text
//! cargo run -p commalloc-bench --bin fig02_curves
//! ```
//!
//! Prints the rank of every processor under each ordering on an 8 × 8 mesh —
//! the same information as the paper's Figure 2 — plus the gap count
//! (consecutive ranks that are not mesh neighbours), which is zero for all
//! three curves on a power-of-two square.

use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::Mesh2D;

fn main() {
    let mesh = Mesh2D::new(8, 8);
    println!("Figure 2 reproduction: curve orderings on an 8x8 mesh\n");
    for kind in [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing] {
        let curve = CurveOrder::build(kind, mesh);
        println!(
            "({}) {} — {} gaps",
            match kind {
                CurveKind::SCurve => "a",
                CurveKind::Hilbert => "b",
                _ => "c",
            },
            kind,
            curve.discontinuities()
        );
        println!("{}", curve.render_ascii());
    }
}
