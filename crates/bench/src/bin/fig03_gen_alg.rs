//! Figure 3: the Gen-Alg algorithm, traced step by step.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig03_gen_alg -- [--jobs K]
//! ```
//!
//! The paper's Figure 3 is the pseudocode of Gen-Alg (Krumke et al.): for
//! every free processor, take the k − 1 closest free processors, compute the
//! total pairwise distance, and keep the cheapest set. This binary executes
//! the algorithm on a small fragmented machine and prints the per-centre
//! costs, the winning set, and the comparison against (a) the greedy
//! incremental heuristic that targets the same metric and (b) MC1x1, whose
//! (4 − 4/k)-approximation guarantee the paper derives from Gen-Alg's.

use commalloc_alloc::gen_alg::total_pairwise_distance;
use commalloc_alloc::{AllocRequest, AllocatorKind, MachineState};
use commalloc_bench::cli;
use commalloc_mesh::{Mesh2D, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let cli = cli();
    let k = if cli.jobs == commalloc_bench::DEFAULT_JOBS {
        6
    } else {
        cli.jobs.clamp(2, 32)
    };
    let mesh = Mesh2D::new(8, 8);

    // A reproducible fragmented machine: 40% busy.
    let mut machine = MachineState::new(mesh);
    let mut nodes: Vec<NodeId> = mesh.nodes().collect();
    nodes.shuffle(&mut StdRng::seed_from_u64(cli.seed));
    nodes.truncate(mesh.num_nodes() * 2 / 5);
    machine.occupy(&nodes);

    println!(
        "Figure 3 reproduction: Gen-Alg for k = {k} on an 8x8 mesh with {} busy processors\n",
        machine.num_busy()
    );

    // Step through the algorithm of Figure 3 explicitly.
    let free: Vec<NodeId> = machine.free_nodes().collect();
    println!("\"For each possible point p do:\"");
    println!("  1. take the k-1 free processors closest to p");
    println!("  2. compute the total pairwise distance of the k points");
    println!("\"Return the set with smallest pairwise distance.\"\n");

    let mut per_centre: Vec<(NodeId, u64)> = Vec::with_capacity(free.len());
    for &centre in &free {
        let mut by_distance: Vec<(u32, NodeId)> = free
            .iter()
            .filter(|&&n| n != centre)
            .map(|&n| (mesh.distance(centre, n), n))
            .collect();
        by_distance.sort_unstable_by_key(|&(d, n)| (d, n.0));
        let mut candidate: Vec<NodeId> = vec![centre];
        candidate.extend(by_distance.iter().take(k - 1).map(|&(_, n)| n));
        per_centre.push((centre, total_pairwise_distance(mesh, &candidate)));
    }
    per_centre.sort_by_key(|&(_, cost)| cost);

    println!("five best and five worst centres (total pairwise distance of their k-sets):");
    for &(centre, cost) in per_centre.iter().take(5) {
        println!(
            "  centre {:<8} cost {cost}",
            mesh.coord_of(centre).to_string()
        );
    }
    println!("  ...");
    for &(centre, cost) in per_centre.iter().rev().take(5).rev() {
        println!(
            "  centre {:<8} cost {cost}",
            mesh.coord_of(centre).to_string()
        );
    }

    // The same decision through the public allocators.
    println!("\nresulting allocations (avg pairwise distance):");
    for kind in [
        AllocatorKind::GenAlg,
        AllocatorKind::Greedy,
        AllocatorKind::Mc1x1,
    ] {
        let alloc = kind
            .build(mesh)
            .allocate(&AllocRequest::new(1, k), &machine)
            .expect("k free processors exist");
        println!(
            "  {:<10} {:.3}",
            kind.name(),
            mesh.avg_pairwise_distance(&alloc.nodes)
        );
    }
    println!(
        "\nGen-Alg is a (2 - 2/k)-approximation = {:.3} factor for k = {k}; MC1x1 inherits (4 - 4/k).",
        2.0 - 2.0 / k as f64
    );
}
