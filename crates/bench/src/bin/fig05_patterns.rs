//! Figure 5: the message structure of the n-body pattern (and its
//! companions).
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig05_patterns -- [--jobs P]
//! ```
//!
//! The paper's Figure 5 illustrates the messages of an n-body calculation on
//! 15 processors: ring subphases, then a single chordal subphase. This binary
//! prints that structure (and the per-iteration message counts of every
//! implemented pattern) so the workload model can be inspected directly.

use commalloc::prelude::*;
use commalloc_bench::cli;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = cli();
    // Reuse --jobs as the processor count of the illustrated job, defaulting
    // to the paper's 15.
    let p = if cli.jobs == commalloc_bench::DEFAULT_JOBS {
        15
    } else {
        cli.jobs.max(2)
    };
    let mut rng = StdRng::seed_from_u64(cli.seed);

    println!("Figure 5 reproduction: n-body messages on {p} processors\n");
    let msgs = CommPattern::NBody.iteration_messages(p, &mut rng);
    let ring_phases = p / 2;
    println!("(a) ring subphases ({ring_phases} of them, {p} messages each):");
    println!("    first subphase: {:?}", &msgs[..p]);
    println!("(b) chordal subphase ({p} messages):");
    println!("    {:?}", &msgs[ring_phases * p..]);
    println!(
        "\ntotal messages per iteration: {} = p*floor(p/2) + p",
        CommPattern::NBody.messages_per_iteration(p)
    );

    println!("\nper-iteration message counts of every pattern on {p} processors:");
    println!(
        "{:<16} {:>12} {:>24}",
        "pattern", "messages", "distinct (src,dst) pairs"
    );
    for pattern in CommPattern::all() {
        let msgs = pattern.iteration_messages(p, &mut rng);
        let unique: std::collections::HashSet<_> = msgs.iter().collect();
        println!(
            "{:<16} {:>12} {:>24}",
            pattern.name(),
            pattern.messages_per_iteration(p),
            unique.len()
        );
    }

    println!("\ntraffic-matrix mass per pattern (weights always sum to 1):");
    for pattern in CommPattern::all() {
        let entries = pattern.traffic(p, 10_000, &mut rng);
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        println!(
            "  {:<16} {:>4} entries, total weight {:.6}",
            pattern.name(),
            entries.len(),
            total
        );
    }
}
