//! Figure 8: response time versus load on the 16 × 16 mesh for all-to-all,
//! n-body and random communication.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig08_mesh16x16 -- [--jobs N] [--full] [--pattern P]
//! ```
//!
//! Identical to the Figure 7 sweep but on the square 16 × 16 machine; jobs
//! too large for 256 processors are removed from the trace first, exactly as
//! the paper removes its three 320-node jobs.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_bench::{cli, standard_trace};

fn main() {
    let mesh = Mesh2D::square_16x16();
    let name = "fig08_mesh16x16";
    let cli = cli();
    let trace = standard_trace(cli.jobs, cli.seed);
    let mut sweep = LoadSweep::paper_figure(mesh);
    sweep.seed = cli.seed;
    if let Some(pattern) = cli.pattern {
        sweep.patterns = vec![pattern];
    }
    if cli.include_first_fit {
        sweep.allocators.push(AllocatorKind::HilbertFirstFit);
        sweep.allocators.push(AllocatorKind::SCurveFirstFit);
        sweep.allocators.push(AllocatorKind::HIndexFirstFit);
    }
    eprintln!(
        "{name}: {} jobs ({} after removing jobs larger than the machine), {} runs...",
        trace.len(),
        trace.filter_fitting(mesh.num_nodes()).len(),
        sweep.num_runs()
    );
    let result = sweep.run(&trace);

    for pattern in &sweep.patterns {
        println!("=== {} — {} ===", name, pattern);
        println!("{}", report::response_time_table(&result, *pattern));
        println!("ranking (mean response across loads, best first):");
        for (i, (a, rt)) in result.ranking(*pattern).iter().enumerate() {
            println!("  {:>2}. {:<16} {:>12.0} s", i + 1, a.name(), rt);
        }
        println!();
    }

    match report::write_json(name, &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
