//! Journal-overhead benchmark: grant/release throughput through the full
//! `AllocationService` stack with the write-ahead journal **off**, **on**
//! (fsync-batched, the production default) and at **fsync-every-record**
//! (the zero-loss-window CI setting). Emits `BENCH_journal.json`.
//!
//! Method: the steady-state churn of `service_throughput` — pre-fill a
//! 16×16 machine to 90% occupancy with random-size jobs, then release
//! one random live job and allocate a replacement per iteration — so
//! every timed operation commits (and, when journaling, appends) a
//! record. One "op" is one allocate or one release.
//!
//! Doubles as the CI regression gate: `--min-ratio R` exits non-zero
//! when batched-journaled throughput falls below `R ×` the unjournaled
//! baseline (the crash-safety tax must stay bounded).
//!
//! Usage: `journal_overhead [--ops N] [--seed S] [--min-ratio R]`

use commalloc_service::{AllocOutcome, AllocationService, FileJournal, FsyncPolicy, JournalConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const DEFAULT_OPS: usize = 100_000;

fn temp_journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "commalloc-journal-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One churn run; returns ops/second.
fn bench_mode(service: &AllocationService, occupancy: f64, ops: usize, seed: u64) -> f64 {
    service
        .register("bench", "16x16", Some("Hilbert w/BF"), None, None)
        .expect("fresh service accepts registration");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut next_job = 0u64;
    let target = (occupancy * 256.0) as usize;
    let mut busy = 0usize;

    while busy < target {
        let size = rng.gen_range(1usize..=8);
        match service.allocate("bench", next_job, size, false, None) {
            Ok(AllocOutcome::Granted(nodes)) => {
                busy += nodes.len();
                live.push(next_job);
                next_job += 1;
            }
            _ => break,
        }
    }

    let start = Instant::now();
    let mut performed = 0usize;
    while performed < ops {
        let victim = live.swap_remove(rng.gen_range(0..live.len()));
        service.release("bench", victim).expect("victim is live");
        performed += 1;
        while performed < ops {
            let size = rng.gen_range(1usize..=8);
            match service.allocate("bench", next_job, size, false, None) {
                Ok(AllocOutcome::Granted(_)) => {
                    live.push(next_job);
                    next_job += 1;
                    performed += 1;
                }
                _ => break,
            }
        }
        if live.is_empty() {
            break;
        }
    }
    performed as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops = DEFAULT_OPS;
    let mut seed = 1996u64;
    let mut min_ratio: Option<f64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    ops = v;
                }
                i += 1;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = v;
                }
                i += 1;
            }
            "--min-ratio" => {
                min_ratio = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    let occupancy = 0.9;
    let modes: Vec<(&str, Option<FsyncPolicy>)> = vec![
        ("off", None),
        ("batched", Some(FsyncPolicy::Batched(512))),
        ("no_fsync", Some(FsyncPolicy::Never)),
        ("fsync_every_record", Some(FsyncPolicy::EveryRecord)),
    ];

    let mut results: Vec<Value> = Vec::new();
    let mut baseline = 0.0f64;
    let mut batched_ratio = 0.0f64;
    for (mode, fsync) in modes {
        let mut dir = None;
        let service = match fsync {
            None => AllocationService::new(),
            Some(fsync) => {
                let d = temp_journal_dir(mode);
                let sink = FileJournal::create(
                    &d,
                    JournalConfig {
                        fsync,
                        ..JournalConfig::default()
                    },
                    0,
                    1,
                    0,
                )
                .expect("journal dir is writable");
                dir = Some(d);
                AllocationService::new().with_journal(Arc::new(sink))
            }
        };
        let ops_per_sec = bench_mode(&service, occupancy, ops, seed);
        let ratio = if baseline > 0.0 {
            ops_per_sec / baseline
        } else {
            baseline = ops_per_sec;
            1.0
        };
        if mode == "batched" {
            batched_ratio = ratio;
        }
        println!(
            "journal {mode:>18}: {ops_per_sec:>12.0} ops/s ({:>5.1}% of unjournaled)",
            ratio * 100.0
        );
        let mut row = Map::new();
        row.insert("mode".into(), mode.to_value());
        row.insert("ops_per_sec".into(), ops_per_sec.to_value());
        row.insert("ratio_vs_off".into(), ratio.to_value());
        results.push(Value::Object(row));
        if let Some(d) = dir {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    let mut out = Map::new();
    out.insert("benchmark".into(), "journal_overhead".to_value());
    out.insert("mesh".into(), "16x16".to_value());
    out.insert("allocator".into(), "Hilbert w/BF".to_value());
    out.insert("occupancy".into(), occupancy.to_value());
    out.insert("ops".into(), ops.to_value());
    out.insert("seed".into(), seed.to_value());
    out.insert("results".into(), Value::Array(results));
    out.insert("batched_ratio".into(), batched_ratio.to_value());
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_journal.json", &json).expect("can write BENCH_journal.json");
    println!("wrote BENCH_journal.json (batched journaling at {batched_ratio:.2}x baseline)");

    if let Some(min) = min_ratio {
        if batched_ratio < min {
            eprintln!(
                "REGRESSION: batched-journal throughput is {batched_ratio:.2}x the \
                 unjournaled baseline, below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("regression gate passed: {batched_ratio:.2}x >= {min:.2}x");
    }
}
