//! Extension table: the paper's allocators versus the historical baselines
//! and the hybrid meta-strategy.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin table_extended_allocators -- [--jobs N] [--pattern P]
//! ```
//!
//! The paper's survey (Section 2) motivates non-contiguous allocation by the
//! utilization cost of the earlier convex-only strategies, and its discussion
//! (Section 5) asks for "a strategy to harness the strengths of different
//! algorithms". This binary puts numbers on both: it runs the paper's nine
//! plotted allocators next to the contiguous first/best-fit baselines, the
//! 2-D buddy system, MBS and the hybrid meta-allocator, and reports response
//! time, contiguity and time-weighted utilization for each.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_bench::{cli, standard_trace};

fn main() {
    let cli = cli();
    let mesh = Mesh2D::square_16x16();
    let trace = standard_trace(cli.jobs.min(600), cli.seed);
    let pattern = cli.pattern.unwrap_or(CommPattern::AllToAll);

    let mut allocators = AllocatorKind::paper_set().to_vec();
    allocators.extend([
        AllocatorKind::ContiguousFirstFit,
        AllocatorKind::ContiguousBestFit,
        AllocatorKind::Buddy2D,
        AllocatorKind::Mbs,
        AllocatorKind::Hybrid,
        AllocatorKind::MortonBestFit,
        AllocatorKind::PeanoBestFit,
    ]);

    eprintln!(
        "extended allocator table: {} jobs, {pattern}, load 0.6, {} allocators...",
        trace.len(),
        allocators.len()
    );

    // A single mid-range load keeps the table readable; the load sweep is
    // covered by the Figure 7/8 binaries.
    let load = 0.6;
    let sweep = LoadSweep {
        mesh,
        patterns: vec![pattern],
        allocators: allocators.clone(),
        load_factors: vec![load],
        ..LoadSweep::paper_figure(mesh)
    };
    let result = sweep.run(&trace);

    // Utilization needs the per-job records, so re-simulate per allocator
    // (cheap at this scale) and derive the profile.
    let scaled = trace
        .filter_fitting(mesh.num_nodes())
        .with_load_factor(load);
    println!("extension table: pattern = {pattern}, 16x16 mesh, load {load}\n");
    println!(
        "{:<16} {:>14} {:>14} {:>12} {:>12}",
        "allocator", "mean resp (s)", "% contiguous", "avg comps", "mean util"
    );
    let mut rows: Vec<(AllocatorKind, f64, f64, f64, f64)> = allocators
        .iter()
        .map(|&allocator| {
            let point = result
                .points
                .iter()
                .find(|p| p.allocator == allocator)
                .expect("sweep covered every allocator");
            let config = SimConfig::new(mesh, pattern, allocator);
            let run = simulate(&scaled, &config);
            let profile = UtilizationProfile::from_records(&run.records, mesh.num_nodes());
            (
                allocator,
                point.mean_response_time,
                point.percent_contiguous,
                point.avg_components,
                profile.mean_utilization(),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (allocator, resp, contig, comps, util) in &rows {
        println!(
            "{:<16} {:>14.0} {:>13.1}% {:>12.2} {:>11.1}%",
            allocator.name(),
            resp,
            contig,
            comps,
            100.0 * util
        );
    }

    println!("\nobservations to check against the paper's narrative:");
    println!("  * contiguous FF/BF and the 2-D buddy reach 100% contiguity but pay for it in");
    println!("    response time and utilization (jobs wait for free rectangles/blocks),");
    println!("    reproducing the utilization argument of Section 2;");
    println!("  * MBS never refuses a request, but its block alignment disperses jobs more than");
    println!("    the curve strategies, so it lands mid-table;");
    println!("  * the hybrid's *static* allocation quality is never worse than the better of its");
    println!("    constituents (property-tested); its response time usually tracks the better of");
    println!("    Hilbert w/BF and MC, though interleaving effects can move it a few places.");

    match report::write_json("table_extended_allocators", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
