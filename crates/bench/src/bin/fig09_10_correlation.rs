//! Figures 9 and 10: running time of large n-body jobs versus (9) the average
//! pairwise distance of their allocation and (10) the average distance
//! travelled by their messages.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig09_10_correlation -- [--jobs N] [--seed S]
//! ```
//!
//! The paper selects 128-processor n-body jobs sending between 39,900 and
//! 44,000 messages (24 such jobs per simulation) and finds no clear
//! relationship with pairwise distance but a tight one with message distance.
//! The synthetic trace rarely produces jobs in exactly that band, so this
//! binary inserts 24 probe jobs with those parameters into the trace
//! (documented substitution — see DESIGN.md) and reports both scatter series
//! and their Pearson correlations, aggregated over the paper's nine allocator
//! configurations.

use commalloc::prelude::*;
use commalloc::report;
use commalloc::stats::pearson_correlation;
use commalloc_bench::{cli, is_probe_record, probe_jobs, standard_trace};
use serde::Serialize;

#[derive(Serialize)]
struct ProbeRecord {
    allocator: String,
    job_id: u64,
    avg_pairwise_distance: f64,
    avg_message_distance: f64,
    running_time: f64,
}

fn main() {
    let cli = cli();
    let mesh = Mesh2D::square_16x16();
    let quota_band = (39_900u64, 44_000u64);
    let probe_size = 128usize;
    let base = standard_trace(cli.jobs, cli.seed).filter_fitting(mesh.num_nodes());
    let trace = probe_jobs(&base, 24, probe_size, quota_band, cli.seed ^ 0x99);

    eprintln!(
        "fig09/10: {} jobs (24 probes of {probe_size} processors, {}–{} messages), n-body, load 1.0",
        trace.len(),
        quota_band.0,
        quota_band.1
    );

    let mut records: Vec<ProbeRecord> = Vec::new();
    for allocator in AllocatorKind::paper_set() {
        let config = SimConfig::new(mesh, CommPattern::NBody, allocator).with_seed(cli.seed);
        let result = simulate(&trace, &config);
        for r in result
            .records
            .iter()
            .filter(|r| is_probe_record(r, probe_size, quota_band))
        {
            records.push(ProbeRecord {
                allocator: allocator.name().to_string(),
                job_id: r.job_id,
                avg_pairwise_distance: r.avg_pairwise_distance,
                avg_message_distance: r.avg_message_distance,
                running_time: r.running_time(),
            });
        }
    }

    println!("Figure 9/10 reproduction: large n-body job running times\n");
    println!(
        "{:<16} {:>8} {:>16} {:>16} {:>14}",
        "allocator", "job", "pairwise dist", "message dist", "running (s)"
    );
    for r in &records {
        println!(
            "{:<16} {:>8} {:>16.2} {:>16.2} {:>14.0}",
            r.allocator, r.job_id, r.avg_pairwise_distance, r.avg_message_distance, r.running_time
        );
    }

    let pairwise: Vec<f64> = records.iter().map(|r| r.avg_pairwise_distance).collect();
    let message: Vec<f64> = records.iter().map(|r| r.avg_message_distance).collect();
    let running: Vec<f64> = records.iter().map(|r| r.running_time).collect();
    let c9 = pearson_correlation(&pairwise, &running);
    let c10 = pearson_correlation(&message, &running);
    println!("\n{} probe-job observations", records.len());
    println!("Figure 9  (pairwise distance vs running time): Pearson r = {c9:.3}");
    println!("Figure 10 (message distance vs running time):  Pearson r = {c10:.3}");
    println!(
        "paper's finding: the Figure 10 correlation is much tighter than Figure 9's ({}).",
        if c10 > c9 {
            "reproduced"
        } else {
            "NOT reproduced with these parameters"
        }
    );

    match report::write_json("fig09_10_correlation", &records) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
