//! Ablation: does the allocator ranking survive a different scheduler?
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin ablation_scheduler -- [--jobs N] [--pattern P]
//! ```
//!
//! The paper fixes FCFS "since our focus is on allocation rather than
//! scheduling". This extension re-runs the paper's allocator comparison under
//! aggressive first-fit backfilling and EASY backfilling and reports (a) how
//! much each scheduler improves response time and (b) whether the allocator
//! *ordering* — the paper's actual claim — changes (Kendall's τ against the
//! FCFS ranking).

use commalloc::prelude::*;
use commalloc::report;
use commalloc::sensitivity::ranking_correlation;
use commalloc_bench::{cli, standard_trace};
use rayon::prelude::*;

fn ranking(
    trace: &Trace,
    mesh: Mesh2D,
    pattern: CommPattern,
    scheduler: SchedulerKind,
    allocators: &[AllocatorKind],
) -> Vec<(AllocatorKind, f64)> {
    let mut rows: Vec<(AllocatorKind, f64)> = allocators
        .par_iter()
        .map(|&allocator| {
            let config = SimConfig::new(mesh, pattern, allocator).with_scheduler(scheduler);
            let result = simulate(trace, &config);
            (allocator, result.summary.mean_response_time)
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    rows
}

fn main() {
    let cli = cli();
    let mesh = Mesh2D::square_16x16();
    let trace = standard_trace(cli.jobs.min(400), cli.seed)
        .filter_fitting(mesh.num_nodes())
        .with_load_factor(0.6);
    let pattern = cli.pattern.unwrap_or(CommPattern::AllToAll);
    let allocators = AllocatorKind::paper_set();

    eprintln!(
        "scheduler ablation: {} jobs, {pattern}, load 0.6, {} allocators x {} schedulers",
        trace.len(),
        allocators.len(),
        SchedulerKind::all().len()
    );

    let fcfs = ranking(&trace, mesh, pattern, SchedulerKind::Fcfs, &allocators);
    println!("\nFCFS (the paper's scheduler):");
    for (kind, rt) in &fcfs {
        println!("  {:<16} {:>12.0} s", kind.name(), rt);
    }

    let mut summaries = vec![("FCFS".to_string(), fcfs.clone(), 1.0f64)];
    for scheduler in [SchedulerKind::FirstFitBackfill, SchedulerKind::EasyBackfill] {
        let rows = ranking(&trace, mesh, pattern, scheduler, &allocators);
        let tau = ranking_correlation(&fcfs, &rows);
        println!("\n{}:", scheduler.name());
        for (kind, rt) in &rows {
            println!("  {:<16} {:>12.0} s", kind.name(), rt);
        }
        println!("  Kendall tau vs FCFS ordering: {tau:.2}");
        summaries.push((scheduler.name().to_string(), rows, tau));
    }

    println!("\ninterpretation: tau near 1.0 means the paper's allocator ranking is not an");
    println!("artefact of fixing FCFS; large response-time drops under backfilling show how");
    println!("much queueing (rather than contention) contributes at this load.");

    match report::write_json("ablation_scheduler", &summaries) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
