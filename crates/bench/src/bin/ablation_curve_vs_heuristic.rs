//! Ablation: does the curve choice or the packing heuristic matter more?
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin ablation_curve_vs_heuristic -- [--jobs N]
//! ```
//!
//! Section 5 of the paper claims (following Leung et al.) that "the choice of
//! curve seems to have the dominant effect on performance for Paging
//! algorithms. Generally, using sorted free list for a curve gives the worst
//! performance and using Best Fit gives the best." This binary quantifies the
//! claim: it runs the full 4-curve × 4-heuristic grid (including the
//! row-major baseline and the Sum-of-Squares heuristic the paper mentions but
//! does not plot) under all-to-all traffic and decomposes the response-time
//! variance into a curve effect and a heuristic effect.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_alloc::curve_alloc::{CurveAllocator, SelectionStrategy};
use commalloc_alloc::Allocator;
use commalloc_bench::{cli, standard_trace};
use commalloc_mesh::locality::window_locality;

fn main() {
    let cli = cli();
    let mesh = Mesh2D::square_16x16();
    let trace = standard_trace(cli.jobs.min(400), cli.seed);

    // The grid is expressed through AllocatorKind where a named configuration
    // exists; the remaining cells reuse CurveAllocator directly via the
    // locality proxy below.
    let allocators = vec![
        AllocatorKind::HilbertFreeList,
        AllocatorKind::HilbertFirstFit,
        AllocatorKind::HilbertBestFit,
        AllocatorKind::HilbertSumOfSquares,
        AllocatorKind::SCurveFreeList,
        AllocatorKind::SCurveFirstFit,
        AllocatorKind::SCurveBestFit,
        AllocatorKind::HIndexFreeList,
        AllocatorKind::HIndexFirstFit,
        AllocatorKind::HIndexBestFit,
        AllocatorKind::RowMajorBestFit,
    ];
    let sweep = LoadSweep {
        mesh,
        patterns: vec![CommPattern::AllToAll],
        allocators: allocators.clone(),
        load_factors: vec![0.4],
        ..LoadSweep::paper_figure(mesh)
    };
    eprintln!(
        "ablation: {} allocator configurations, {} jobs, all-to-all, load 0.4",
        allocators.len(),
        trace.len()
    );
    let result = sweep.run(&trace);

    println!("response time by (curve, heuristic), all-to-all, 16x16, load 0.4:\n");
    println!("{:<22} {:>16}", "configuration", "mean response");
    let mut rows: Vec<(&str, f64)> = result
        .points
        .iter()
        .map(|p| (p.allocator.name(), p.mean_response_time))
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, rt) in &rows {
        println!("{:<22} {:>14.0} s", name, rt);
    }

    // Effect sizes: spread attributable to the curve (holding Best Fit fixed)
    // vs. spread attributable to the heuristic (holding Hilbert fixed).
    let get = |a: AllocatorKind| {
        result
            .points
            .iter()
            .find(|p| p.allocator == a)
            .map(|p| p.mean_response_time)
            .unwrap_or(f64::NAN)
    };
    let curve_effect = {
        let values = [
            get(AllocatorKind::HilbertBestFit),
            get(AllocatorKind::SCurveBestFit),
            get(AllocatorKind::HIndexBestFit),
            get(AllocatorKind::RowMajorBestFit),
        ];
        values.iter().fold(f64::MIN, |a, &b| a.max(b))
            - values.iter().fold(f64::MAX, |a, &b| a.min(b))
    };
    let heuristic_effect = {
        let values = [
            get(AllocatorKind::HilbertFreeList),
            get(AllocatorKind::HilbertFirstFit),
            get(AllocatorKind::HilbertBestFit),
            get(AllocatorKind::HilbertSumOfSquares),
        ];
        values.iter().fold(f64::MIN, |a, &b| a.max(b))
            - values.iter().fold(f64::MAX, |a, &b| a.min(b))
    };
    println!("\nspread across curves  (Best Fit held fixed): {curve_effect:>10.0} s");
    println!("spread across heuristics (Hilbert held fixed): {heuristic_effect:>10.0} s");

    // Static locality view, independent of the trace: how compact is a
    // 32-rank window of each curve? (This is the intrinsic property the
    // dynamic results are usually attributed to.)
    println!("\nstatic curve locality (32-processor rank windows):");
    println!(
        "{:<26} {:>16} {:>18}",
        "curve", "avg pair dist", "% windows contig"
    );
    for kind in CurveKind::all() {
        let curve = CurveOrder::build(kind, mesh);
        let l = window_locality(&curve, 32);
        println!(
            "{:<26} {:>16.2} {:>17.1}%",
            kind.name(),
            l.mean_pairwise_distance,
            100.0 * l.contiguous_fraction
        );
    }

    // Exercise the Sum-of-Squares strategy through the public constructor as
    // well, so the ablation binary also serves as a smoke test for direct
    // CurveAllocator composition.
    let direct = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::SumOfSquares);
    println!("\ndirect construction check: {}", direct.name());

    match report::write_json("ablation_curve_vs_heuristic", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
