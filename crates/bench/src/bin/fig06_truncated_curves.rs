//! Figure 6: the top 16 × 6 processors of the Hilbert curve and H-indexing
//! truncated to the 16 × 22 mesh.
//!
//! ```text
//! cargo run -p commalloc-bench --bin fig06_truncated_curves
//! ```
//!
//! The paper obtains curves for the non-square CPlant-like machine by
//! truncating a 32 × 32 curve, which leaves "gaps along the top edge". This
//! binary prints the rank grid of the top six rows (the region the paper's
//! figure shows) and lists every gap: a pair of consecutive ranks whose
//! processors are not mesh neighbours.

use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::Mesh2D;

fn main() {
    let mesh = Mesh2D::paragon_16x22();
    println!("Figure 6 reproduction: truncated curves on the 16x22 mesh\n");
    for kind in [CurveKind::Hilbert, CurveKind::HIndexing] {
        let curve = CurveOrder::build(kind, mesh);
        let art = curve.render_ascii();
        let top: Vec<&str> = art.lines().take(6).collect();
        println!("{kind} — top 16x6 processors (rows y=21..16):");
        println!("{}\n", top.join("\n"));

        let gaps: Vec<String> = (1..curve.len())
            .filter(|&rank| mesh.distance(curve.node_at(rank - 1), curve.node_at(rank)) != 1)
            .map(|rank| {
                let a = mesh.coord_of(curve.node_at(rank - 1));
                let b = mesh.coord_of(curve.node_at(rank));
                format!("rank {:>3} -> {:>3}: {} -> {}", rank - 1, rank, a, b)
            })
            .collect();
        println!("gaps ({} total):", gaps.len());
        for g in &gaps {
            println!("  {g}");
        }
        println!();
    }
    println!(
        "The S-curve remains continuous on the 16x22 mesh: {} gaps.",
        CurveOrder::build(CurveKind::SCurve, mesh).discontinuities()
    );
}
