//! Figure 1: running time of the CPlant communication test suite versus the
//! average pairwise distance of the 30-processor allocation.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig01_pairwise_runtime
//! ```
//!
//! The paper's Figure 1 plots measured CPlant running times of a 30-processor
//! communication test (all-to-all broadcast, all-pairs ping-pong and ring,
//! each repeated one hundred times) against the allocation's average number
//! of hops, motivating pairwise distance as an allocation-quality metric.
//! CPlant hardware is unavailable, so this binary reproduces the experiment
//! on the flit-level wormhole simulator: allocations of increasing dispersion
//! are generated on the 16 × 22 mesh and the same test suite is replayed on
//! each (a reduced iteration count keeps the default run short; the trend,
//! not the absolute seconds, is the result).

use commalloc::report;
use commalloc::stats::pearson_correlation;
use commalloc_bench::{cli, dispersion_allocations};
use commalloc_mesh::Mesh2D;
use commalloc_net::flit::{FlitMessage, FlitNetwork};
use commalloc_workload::CommPattern;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Point {
    avg_pairwise_distance: f64,
    runtime_cycles: u64,
}

fn main() {
    let cli = cli();
    let mesh = Mesh2D::paragon_16x22();
    let allocations = dispersion_allocations(mesh, 30, 20, cli.seed);
    let net = FlitNetwork::new(mesh);
    let iterations = 3usize;

    println!("Figure 1 reproduction: test-suite runtime vs. allocation dispersion");
    println!(
        "(30-processor jobs on a {}x{} mesh, {iterations} test-suite iterations, flit-level)",
        mesh.width(),
        mesh.height()
    );
    println!("{:>22} {:>18}", "avg pairwise hops", "runtime (cycles)");

    let mut points = Vec::new();
    for (i, (nodes, dispersion)) in allocations.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(cli.seed ^ i as u64);
        let mut total_cycles = 0u64;
        for _ in 0..iterations {
            let messages: Vec<FlitMessage> = CommPattern::TestSuite
                .iteration_messages(nodes.len(), &mut rng)
                .into_iter()
                .enumerate()
                .map(|(m, (src, dst))| FlitMessage {
                    id: m as u64,
                    src: nodes[src],
                    dst: nodes[dst],
                    inject_at: 0,
                    flits: 16,
                })
                .collect();
            total_cycles += net.simulate(&messages).makespan;
        }
        println!("{:>22.2} {:>18}", dispersion, total_cycles);
        points.push(Fig1Point {
            avg_pairwise_distance: *dispersion,
            runtime_cycles: total_cycles,
        });
    }

    let xs: Vec<f64> = points.iter().map(|p| p.avg_pairwise_distance).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.runtime_cycles as f64).collect();
    println!(
        "\nPearson correlation (dispersion vs runtime): {:.3}  (the paper's Figure 1 shows a clear positive trend)",
        pearson_correlation(&xs, &ys)
    );
    match report::write_json("fig01_pairwise_runtime", &points) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
