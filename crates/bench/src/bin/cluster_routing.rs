//! Routing-policy comparison on a heterogeneous 4-machine pool: the same
//! mixed-size job stream, offered at ~95% of the cluster's aggregate
//! capacity, routed deterministically (virtual time, `replay_cluster`)
//! under each `RoutingPolicy`. Reports mean/p99 queue wait, jobs that
//! waited, makespan, per-machine utilization and the utilization
//! imbalance (max − min across members), and emits `BENCH_cluster.json`.
//!
//! The pool is deliberately lopsided — 256 + 128 + 64 + 32 processors —
//! which is exactly where load-blind round-robin hurts: the small
//! members receive the same share of the stream as the big ones,
//! queue deeply, and drag the mean wait up. Load-aware routing
//! (least-loaded, power-of-two-choices) spreads by free fraction
//! instead. Durations are integral and arrivals deterministic, so the
//! numbers are exactly reproducible.
//!
//! Usage: `cluster_routing [--jobs N] [--seed S]`

use commalloc_service::{replay_cluster, AllocationService, ReplayJob, RoutingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::time::Instant;

/// The heterogeneous pool: 256 + 128 + 64 + 32 = 480 processors.
const MEMBERS: [(&str, &str, usize); 4] = [
    ("m0", "16x16", 256),
    ("m1", "16x8", 128),
    ("m2", "8x8", 64),
    ("m3", "8x4", 32),
];
const TOTAL_NODES: f64 = 480.0;
const TARGET_OCCUPANCY: f64 = 0.95;
const DEFAULT_JOBS: usize = 800;
const DEFAULT_SEED: u64 = 1996;

/// Mixed-size job stream whose offered load approaches
/// `TARGET_OCCUPANCY` of the whole pool. A quarter of the jobs exceed
/// the smallest member (and some the two smallest), so the eligibility
/// filter shapes every policy's choices.
fn workload(jobs: usize, seed: u64) -> Vec<ReplayJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(jobs);
    let mut arrival = 0.0f64;
    // Mean demand per job: 0.75·E[1..=24]·E[dur] + 0.25·E[28..=80]·E[dur].
    let mean_size = 0.75 * 12.5 + 0.25 * 54.0;
    let mean_duration = 275.0;
    let mean_interarrival = (mean_size * mean_duration) / (TARGET_OCCUPANCY * TOTAL_NODES);
    for id in 0..jobs {
        let size = if rng.gen_bool(0.75) {
            rng.gen_range(1usize..=24)
        } else {
            rng.gen_range(28usize..=80)
        };
        let duration = rng.gen_range(50u64..=500) as f64;
        arrival += rng.gen_range(1u64..=(2.0 * mean_interarrival) as u64) as f64;
        out.push(ReplayJob {
            id: id as u64,
            size,
            arrival,
            duration,
            pattern: None,
        });
    }
    out
}

struct PolicyRow {
    policy: RoutingPolicy,
    mean_wait: f64,
    p99_wait: f64,
    waits: u64,
    makespan: f64,
    utilization: Vec<(String, f64)>,
    imbalance: f64,
    ops_per_sec: f64,
}

fn run_policy(policy: RoutingPolicy, jobs: &[ReplayJob]) -> PolicyRow {
    let service = AllocationService::new();
    for (name, mesh, _) in MEMBERS {
        service
            .register_in_pool(name, mesh, None, None, None, Some("grid"))
            .expect("fresh service accepts registration");
    }
    service
        .set_router("grid", policy.name())
        .expect("policy parses");
    let start = Instant::now();
    let log = replay_cluster(&service, "grid", jobs, None);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(log.rejected.is_empty(), "curve allocators never refuse");
    assert!(
        log.routes.iter().all(|(_, r)| r.is_some()),
        "every job fits the largest member"
    );
    let granted: usize = log.grants.values().map(Vec::len).sum();
    assert_eq!(granted, jobs.len(), "every job must run");

    // Queue waits, from the per-machine grant logs.
    let mut waits: Vec<f64> = Vec::with_capacity(jobs.len());
    let mut busy_integral: Vec<f64> = vec![0.0; MEMBERS.len()];
    for (at, (name, _, _)) in MEMBERS.iter().enumerate() {
        for grant in &log.grants[*name] {
            let job = &jobs[grant.job_id as usize];
            waits.push(grant.time - job.arrival);
            busy_integral[at] += job.size as f64 * job.duration;
        }
    }
    waits.sort_by(f64::total_cmp);
    let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
    let p99_wait = waits[((0.99 * waits.len() as f64).ceil() as usize).clamp(1, waits.len()) - 1];
    let utilization: Vec<(String, f64)> = MEMBERS
        .iter()
        .enumerate()
        .map(|(at, (name, _, nodes))| {
            (
                name.to_string(),
                busy_integral[at] / (log.end_time * *nodes as f64),
            )
        })
        .collect();
    let max_util = utilization.iter().map(|(_, u)| *u).fold(0.0, f64::max);
    let min_util = utilization
        .iter()
        .map(|(_, u)| *u)
        .fold(f64::INFINITY, f64::min);
    PolicyRow {
        policy,
        mean_wait,
        p99_wait,
        waits: waits.iter().filter(|&&w| w > 0.0).count() as u64,
        makespan: log.end_time,
        utilization,
        imbalance: max_util - min_util,
        ops_per_sec: 2.0 * jobs.len() as f64 / elapsed.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = DEFAULT_JOBS;
    let mut seed = DEFAULT_SEED;
    let mut i = 1;
    while i < args.len() {
        // A malformed value must not silently fall back to the canonical
        // configuration — the JSON it writes would look canonical too.
        let numeric = |flag: &str| -> u64 {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"));
            value
                .parse()
                .unwrap_or_else(|_| panic!("invalid value {value:?} for {flag}"))
        };
        match args[i].as_str() {
            "--jobs" => {
                jobs = numeric("--jobs") as usize;
                i += 1;
            }
            "--seed" => {
                seed = numeric("--seed");
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    let stream = workload(jobs, seed);
    let mut rows = Vec::new();
    for policy in RoutingPolicy::all() {
        let row = run_policy(policy, &stream);
        let utils: Vec<String> = row
            .utilization
            .iter()
            .map(|(name, u)| format!("{name} {:>4.1}%", u * 100.0))
            .collect();
        println!(
            "{:<15} mean wait {:>8.1} s | p99 wait {:>8.0} s | waited {:>4}/{} | \
             makespan {:>8.0} s | util [{}] | imbalance {:>5.1}pp | {:>8.0} ops/s",
            row.policy.name(),
            row.mean_wait,
            row.p99_wait,
            row.waits,
            jobs,
            row.makespan,
            utils.join(", "),
            row.imbalance * 100.0,
            row.ops_per_sec,
        );
        rows.push(row);
    }

    let by = |policy: RoutingPolicy| -> &PolicyRow {
        rows.iter()
            .find(|r| r.policy == policy)
            .expect("all policies ran")
    };
    let rr = by(RoutingPolicy::RoundRobin);
    let ll = by(RoutingPolicy::LeastLoaded);
    let p2c = by(RoutingPolicy::PowerOfTwoChoices);
    let best_aware = ll.mean_wait.min(p2c.mean_wait);
    println!(
        "load-aware routing (best of LL/P2C) waits {:.2}x round-robin at \
         ~{:.0}% offered occupancy ({} jobs, seed {})",
        best_aware / rr.mean_wait.max(1e-9),
        TARGET_OCCUPANCY * 100.0,
        jobs,
        seed,
    );

    let mut out = Map::new();
    out.insert("benchmark".into(), "cluster_routing".to_value());
    out.insert(
        "pool".into(),
        Value::Array(
            MEMBERS
                .iter()
                .map(|(name, mesh, nodes)| {
                    let mut m = Map::new();
                    m.insert("machine".into(), name.to_value());
                    m.insert("mesh".into(), mesh.to_value());
                    m.insert("nodes".into(), nodes.to_value());
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    out.insert("scheduler".into(), "FCFS".to_value());
    out.insert("target_occupancy".into(), TARGET_OCCUPANCY.to_value());
    out.insert("jobs".into(), jobs.to_value());
    out.insert("seed".into(), seed.to_value());
    out.insert(
        "results".into(),
        Value::Array(
            rows.iter()
                .map(|r| {
                    let mut row = Map::new();
                    row.insert("router".into(), r.policy.name().to_value());
                    row.insert("mean_wait_seconds".into(), r.mean_wait.to_value());
                    row.insert("p99_wait_seconds".into(), r.p99_wait.to_value());
                    row.insert("jobs_that_waited".into(), r.waits.to_value());
                    row.insert("makespan_seconds".into(), r.makespan.to_value());
                    let mut utils = Map::new();
                    for (name, u) in &r.utilization {
                        utils.insert(name.clone(), u.to_value());
                    }
                    row.insert("utilization".into(), Value::Object(utils));
                    row.insert("utilization_imbalance".into(), r.imbalance.to_value());
                    row.insert("service_ops_per_sec".into(), r.ops_per_sec.to_value());
                    Value::Object(row)
                })
                .collect(),
        ),
    );
    out.insert(
        "load_aware_vs_round_robin_mean_wait".into(),
        (best_aware / rr.mean_wait.max(1e-9)).to_value(),
    );
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_cluster.json", &json).expect("can write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");
    // The acceptance gate applies to the canonical configuration only:
    // routing carries no ordering guarantee on arbitrary seeds/mixes, so
    // a custom run reports without aborting.
    if jobs == DEFAULT_JOBS && seed == DEFAULT_SEED {
        assert!(
            best_aware < rr.mean_wait,
            "load-aware routing should beat round-robin on mean queue wait \
             on the canonical heterogeneous workload"
        );
    } else if best_aware >= rr.mean_wait {
        eprintln!("note: round-robin wins on this custom workload");
    }
}
