//! Figure 4: the shells MC evaluates around a candidate processor.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig04_mc_shells
//! ```
//!
//! The paper's Figure 4 illustrates MC for a 3 × 1 request: shell 0 is the
//! requested submesh centred on the candidate processor, and successive
//! shells ring it outward, with free processors weighted by their shell
//! number. This binary renders the same picture in ASCII for both MC (which
//! derives a near-square shape from the request) and MC1x1 (whose shell 0 is
//! a single processor), and shows the resulting cost-driven choice on a
//! partially busy mesh.

use commalloc_alloc::{AllocRequest, AllocatorKind, MachineState};
use commalloc_mesh::{Coord, Mesh2D, NodeId};

/// Renders the shell index of every processor around `centre` for a `w × h`
/// shell-0 footprint on `mesh` (up to shell 3), with `#` marking busy
/// processors.
fn render_shells(mesh: Mesh2D, machine: &MachineState, centre: Coord, w: i32, h: i32) -> String {
    let origin = (centre.x as i32 - (w - 1) / 2, centre.y as i32 - (h - 1) / 2);
    let mut out = String::new();
    for y in (0..mesh.height() as i32).rev() {
        for x in 0..mesh.width() as i32 {
            let id = mesh.id_of(Coord::new(x as u16, y as u16));
            let shell = {
                let dx = if x < origin.0 {
                    origin.0 - x
                } else if x > origin.0 + w - 1 {
                    x - (origin.0 + w - 1)
                } else {
                    0
                };
                let dy = if y < origin.1 {
                    origin.1 - y
                } else if y > origin.1 + h - 1 {
                    y - (origin.1 + h - 1)
                } else {
                    0
                };
                dx.max(dy)
            };
            if !machine.is_free(id) {
                out.push_str("  #");
            } else if shell <= 3 {
                out.push_str(&format!("{shell:>3}"));
            } else {
                out.push_str("  .");
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mesh = Mesh2D::new(10, 8);
    let mut machine = MachineState::new(mesh);
    // A busy block in the upper-left and a busy column on the right, so the
    // cost landscape is not symmetric.
    let busy: Vec<NodeId> = mesh
        .nodes()
        .filter(|&n| {
            let c = mesh.coord_of(n);
            (c.x < 3 && c.y >= 5) || c.x == 9
        })
        .collect();
    machine.occupy(&busy);

    println!("Figure 4 reproduction: MC shells around a candidate processor");
    println!("(numbers are shell indices; # marks busy processors; . is beyond shell 3)\n");

    let centre = Coord::new(4, 3);
    println!("MC with a 3 x 1 request centred on {centre} (the paper's example):");
    println!("{}", render_shells(mesh, &machine, centre, 3, 1));
    println!("MC1x1 (shell 0 is the single processor {centre}):");
    println!("{}", render_shells(mesh, &machine, centre, 1, 1));

    // Show the actual choices made by MC and MC1x1 for a small request.
    for kind in [AllocatorKind::Mc, AllocatorKind::Mc1x1] {
        let alloc = kind
            .build(mesh)
            .allocate(&AllocRequest::new(1, 6), &machine)
            .expect("6 free processors exist");
        let coords: Vec<String> = alloc
            .nodes
            .iter()
            .map(|&n| mesh.coord_of(n).to_string())
            .collect();
        println!(
            "{} chooses: {} (avg pairwise distance {:.2}, {} component(s))",
            kind.name(),
            coords.join(" "),
            mesh.avg_pairwise_distance(&alloc.nodes),
            mesh.components(&alloc.nodes)
        );
    }
    println!("\nMC's shape bias (near-square shell 0) is what the paper credits for its edge");
    println!("over MC1x1: \"Looking for a specific shape seems to yield an advantage to MC\".");
}
