//! Observability-overhead benchmark: grant/release throughput through
//! the full `AllocationService` stack with the flight recorder
//! **absent** (the untraced `handle` entry point), **disabled** (the
//! traced entry point with the recorder off — the production default:
//! one relaxed atomic load per request) and **enabled** (every request
//! minting an ID and emitting span events into the ring buffers).
//! Emits `BENCH_obs.json`.
//!
//! Method: the steady-state churn of `service_throughput` — pre-fill a
//! 16×16 machine to the target occupancy with random-size jobs, then
//! release one random live job and allocate a replacement per
//! iteration. One "op" is one allocate or one release, driven through
//! the daemon's full per-line path (wire parse, dispatch, response
//! render) exactly as a connection worker runs it — only the TCP
//! socket is elided. Each mode keeps a persistent service, and the
//! modes rotate in small slices (many interleave rounds, total time
//! summed per mode) so thermal / scheduling drift lands on all three
//! roughly equally instead of biasing whichever ran in the bad moment.
//!
//! Two more modes price the placement calibration plane on a
//! pattern-declared workload (pattern-scored allocation is much
//! slower than pattern-oblivious allocation regardless of
//! observability, so it needs its own baseline): **patterned** drives
//! pattern-declared allocations through the untraced entry point, and
//! **calibration** drives the same workload with the recorder and the
//! calibration store both on — each grant files a placement record,
//! each release joins it. The calibration ratio is calibration ÷
//! patterned: the full observability stack's overhead with the
//! allocator cost held constant.
//!
//! Doubles as the CI regression gate: `--min-disabled R` / `--min-enabled R`
//! / `--min-calibration R` exit non-zero when the respective mode's
//! throughput falls below `R ×` the untraced baseline (tracing must
//! stay free when off and cheap when on).
//!
//! Usage: `obs_overhead [--ops N] [--seed S] [--rounds N]
//!         [--occupancy F] [--min-disabled R] [--min-enabled R]
//!         [--min-calibration R]`

use commalloc_service::{AllocationService, Request, Response, Stage};
use commalloc_workload::CommPattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::time::Instant;

const DEFAULT_OPS: usize = 200_000;
const DEFAULT_ROUNDS: usize = 40;

/// How a churn drives the service.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// The untraced `handle` entry point (no recorder in sight).
    Baseline,
    /// `handle_traced` with the recorder off: the disabled hot path.
    Disabled,
    /// `handle_traced` with the recorder capturing.
    Enabled,
    /// The untraced entry point driving pattern-declared allocations:
    /// the calibration mode's baseline.
    Patterned,
    /// Recorder and calibration store both on, every allocation
    /// pattern-declared: grants file placement records, releases join
    /// them into the calibration cells.
    Calibration,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Disabled => "disabled",
            Mode::Enabled => "enabled",
            Mode::Patterned => "patterned",
            Mode::Calibration => "calibration",
        }
    }

    /// The pattern declared on this mode's allocations.
    fn pattern(self) -> Option<CommPattern> {
        match self {
            Mode::Patterned | Mode::Calibration => Some(CommPattern::AllToAll),
            _ => None,
        }
    }
}

/// One mode's persistent churn state: its own service (pre-filled once)
/// plus the RNG and live-job set, advanced one slice at a time.
struct Churn {
    mode: Mode,
    service: AllocationService,
    rng: StdRng,
    live: Vec<u64>,
    next_job: u64,
}

fn alloc_line(job: u64, size: usize, pattern: Option<CommPattern>) -> String {
    Request::Alloc {
        machine: "bench".to_string(),
        job,
        size,
        wait: false,
        walltime: pattern.map(|_| 3600.0),
        pattern,
        tenant: None,
    }
    .to_line()
}

impl Churn {
    fn new(mode: Mode, occupancy: f64, seed: u64) -> Churn {
        let service = AllocationService::new();
        service
            .recorder()
            .set_enabled(matches!(mode, Mode::Enabled | Mode::Calibration));
        service.calibration().set_enabled(mode == Mode::Calibration);
        service
            .register("bench", "16x16", Some("Hilbert w/BF"), None, None)
            .expect("fresh service accepts registration");
        let mut churn = Churn {
            mode,
            service,
            rng: StdRng::seed_from_u64(seed),
            live: Vec::new(),
            next_job: 0,
        };
        let target = (occupancy * 256.0) as usize;
        let mut busy = 0usize;
        while busy < target {
            let size = churn.rng.gen_range(1usize..=8);
            match churn.dispatch(&alloc_line(churn.next_job, size, mode.pattern())) {
                Response::Granted { nodes, .. } => {
                    busy += nodes.len();
                    churn.live.push(churn.next_job);
                    churn.next_job += 1;
                }
                _ => break,
            }
        }
        churn
    }

    /// One request as the connection worker serves it: parse the wire
    /// line, dispatch, render the response line. The traced modes mint
    /// a request context and put the parse on the timeline, exactly
    /// like `handle_connection`; with the recorder off that is the
    /// single relaxed load the disabled gate prices.
    fn dispatch(&self, line: &str) -> Response {
        match self.mode {
            Mode::Baseline | Mode::Patterned => {
                let request = Request::from_line(line).expect("bench lines are well-formed");
                let response = self.service.handle(&request);
                std::hint::black_box(response.to_line());
                response
            }
            Mode::Disabled | Mode::Enabled | Mode::Calibration => {
                let ctx = self.service.recorder().begin();
                let parse_start = ctx.now_micros();
                let request = Request::from_line(line).expect("bench lines are well-formed");
                ctx.span(Stage::Parse, 0, 0, parse_start, ctx.now_micros());
                let response = self.service.handle_traced(&request, &ctx);
                std::hint::black_box(response.to_line());
                response
            }
        }
    }

    /// Advances the churn by `ops` counted operations; returns the
    /// elapsed wall time in seconds and the ops actually performed.
    fn run_slice(&mut self, ops: usize) -> (f64, usize) {
        let start = Instant::now();
        let mut performed = 0usize;
        while performed < ops {
            let len = self.live.len();
            let victim = self.live.swap_remove(self.rng.gen_range(0..len));
            let release = Request::Release {
                machine: Some("bench".to_string()),
                job: commalloc_service::JobRef::Bare(victim),
            }
            .to_line();
            assert!(
                matches!(self.dispatch(&release), Response::Released { .. }),
                "victim is live"
            );
            performed += 1;
            while performed < ops {
                let size = self.rng.gen_range(1usize..=8);
                match self.dispatch(&alloc_line(self.next_job, size, self.mode.pattern())) {
                    Response::Granted { .. } => {
                        self.live.push(self.next_job);
                        self.next_job += 1;
                        performed += 1;
                    }
                    _ => break,
                }
            }
            if self.live.is_empty() {
                break;
            }
        }
        (start.elapsed().as_secs_f64(), performed)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops = DEFAULT_OPS;
    let mut rounds = DEFAULT_ROUNDS;
    let mut seed = 1996u64;
    let mut occupancy = 0.9f64;
    let mut min_disabled: Option<f64> = None;
    let mut min_enabled: Option<f64> = None;
    let mut min_calibration: Option<f64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    ops = v;
                }
                i += 1;
            }
            "--rounds" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    rounds = v;
                }
                i += 1;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = v;
                }
                i += 1;
            }
            "--occupancy" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    occupancy = v;
                }
                i += 1;
            }
            "--min-disabled" => {
                min_disabled = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 1;
            }
            "--min-enabled" => {
                min_enabled = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 1;
            }
            "--min-calibration" => {
                min_calibration = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    let rounds = rounds.max(1);
    let slice = (ops / rounds).max(1);

    let mut churns = [
        Churn::new(Mode::Baseline, occupancy, seed),
        Churn::new(Mode::Disabled, occupancy, seed),
        Churn::new(Mode::Enabled, occupancy, seed),
        Churn::new(Mode::Patterned, occupancy, seed),
        Churn::new(Mode::Calibration, occupancy, seed),
    ];
    // A warm-up slice per mode (untimed) settles allocator state, lazy
    // init and branch predictors before the measured rotation.
    for churn in &mut churns {
        churn.run_slice(slice);
    }
    let mut time = [0.0f64; 5];
    let mut performed = [0usize; 5];
    for round in 0..rounds {
        // Rotate the starting mode so no mode systematically runs first
        // (first-in-round is where a timer tick is likeliest to land).
        for offset in 0..5 {
            let slot = (round + offset) % 5;
            let (elapsed, done) = churns[slot].run_slice(slice);
            time[slot] += elapsed;
            performed[slot] += done;
        }
    }
    let rate = |slot: usize| performed[slot] as f64 / time[slot].max(1e-9);
    let (baseline, disabled, enabled) = (rate(0), rate(1), rate(2));
    let (patterned, calibration) = (rate(3), rate(4));
    let disabled_ratio = disabled / baseline.max(1e-9);
    let enabled_ratio = enabled / baseline.max(1e-9);
    let calibration_ratio = calibration / patterned.max(1e-9);
    for (slot, churn) in churns.iter().enumerate() {
        println!(
            "{:>8}: {:>12.0} ops/s over {} ops in {} interleaved slices",
            churn.mode.name(),
            rate(slot),
            performed[slot],
            rounds
        );
    }
    println!(
        "disabled/baseline {disabled_ratio:.3}x | enabled/baseline {enabled_ratio:.3}x | \
         calibration/patterned {calibration_ratio:.3}x"
    );

    let mut out = Map::new();
    out.insert("benchmark".into(), "obs_overhead".to_value());
    out.insert("mesh".into(), "16x16".to_value());
    out.insert("occupancy".into(), occupancy.to_value());
    out.insert("ops".into(), ops.to_value());
    out.insert("rounds".into(), rounds.to_value());
    out.insert("seed".into(), seed.to_value());
    out.insert("baseline_ops_per_sec".into(), baseline.to_value());
    out.insert("disabled_ops_per_sec".into(), disabled.to_value());
    out.insert("enabled_ops_per_sec".into(), enabled.to_value());
    out.insert("patterned_ops_per_sec".into(), patterned.to_value());
    out.insert("calibration_ops_per_sec".into(), calibration.to_value());
    out.insert("disabled_ratio".into(), disabled_ratio.to_value());
    out.insert("enabled_ratio".into(), enabled_ratio.to_value());
    out.insert("calibration_ratio".into(), calibration_ratio.to_value());
    out.insert(
        "calibration_joined".into(),
        churns[4].service.calibration().joined_total().to_value(),
    );
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_obs.json", &json).expect("can write BENCH_obs.json");
    println!("wrote BENCH_obs.json");

    let mut failed = false;
    if let Some(min) = min_disabled {
        if disabled_ratio < min {
            eprintln!(
                "FAIL: disabled tracing runs at {disabled_ratio:.3}x of the untraced \
                 baseline, below the {min:.2}x gate"
            );
            failed = true;
        } else {
            println!("disabled gate passed: {disabled_ratio:.3}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_enabled {
        if enabled_ratio < min {
            eprintln!(
                "FAIL: enabled tracing runs at {enabled_ratio:.3}x of the untraced \
                 baseline, below the {min:.2}x gate"
            );
            failed = true;
        } else {
            println!("enabled gate passed: {enabled_ratio:.3}x >= {min:.2}x");
        }
    }
    if let Some(min) = min_calibration {
        if calibration_ratio < min {
            eprintln!(
                "FAIL: calibration (recorder and store on) runs at {calibration_ratio:.3}x \
                 of the patterned untraced baseline, below the {min:.2}x gate"
            );
            failed = true;
        } else {
            println!("calibration gate passed: {calibration_ratio:.3}x >= {min:.2}x");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
