//! Service-throughput benchmark: allocate/release operations per second
//! at fixed occupancy, comparing the incremental `FreeIntervalIndex`
//! curve-allocator path against the naive rescan path, plus the full
//! in-process `AllocationService` stack. Emits `BENCH_service.json`.
//!
//! Method: the 16×16 machine is pre-filled to the target occupancy with
//! random-size jobs, then driven in steady state — release one random
//! live job, allocate a replacement of the same size — so the interval
//! structure stays realistically fragmented (the random prefill fixes the
//! fragmentation pattern) while the occupancy holds exactly the target.
//! One "op" is one allocate or one release. A second, mixed-size variant
//! (replacement sizes drawn fresh, drifting into the scattered min-span
//! fallback) is reported alongside for transparency; the headline
//! indexed-vs-rescan speedup is the steady-state refit number.
//!
//! Usage: `service_throughput [--ops N] [--seed S]`

use commalloc_alloc::curve_alloc::{CurveAllocator, SelectionStrategy};
use commalloc_alloc::{AllocRequest, Allocation, Allocator, MachineState};
use commalloc_mesh::curve::CurveKind;
use commalloc_mesh::Mesh2D;
use commalloc_service::{AllocOutcome, AllocationService};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::time::Instant;

const DEFAULT_OPS: usize = 200_000;

/// Steady-state churn against a bare allocator; returns ops/second.
///
/// `refit` replaces each released job with one of the same size (pure
/// decision-path measurement at constant occupancy); `!refit` draws a
/// fresh random size each time (drifts into the fragmented fallback
/// paths).
fn bench_allocator(
    mut allocator: CurveAllocator,
    occupancy: f64,
    ops: usize,
    seed: u64,
    refit: bool,
) -> f64 {
    let mesh = Mesh2D::square_16x16();
    let mut machine = MachineState::new(mesh);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<Allocation> = Vec::new();
    let mut next_job = 0u64;
    let target = (occupancy * mesh.num_nodes() as f64) as usize;

    // Pre-fill towards the target with small jobs so the free space is
    // realistically fragmented.
    while machine.num_busy() < target {
        let size = rng.gen_range(1usize..=8).min(machine.num_free());
        let Some(alloc) = allocator.allocate(&AllocRequest::new(next_job, size), &machine) else {
            break;
        };
        next_job += 1;
        machine.occupy(&alloc.nodes);
        live.push(alloc);
    }

    // Pre-draw the randomness so the timed loop measures the allocator,
    // not the RNG.
    let picks: Vec<(u32, u8)> = (0..ops)
        .map(|_| (rng.gen::<u32>(), rng.gen_range(1u8..=8)))
        .collect();

    let start = Instant::now();
    let mut performed = 0usize;
    for &(pick, fresh_size) in &picks {
        if performed >= ops {
            break;
        }
        // Release one random live job ...
        let victim = live.swap_remove(pick as usize % live.len());
        machine.release(&victim.nodes);
        allocator.release(&victim, &machine);
        performed += 1;
        // ... and allocate a replacement.
        let size = if refit {
            victim.nodes.len()
        } else {
            (fresh_size as usize).min(machine.num_free())
        };
        if let Some(alloc) = allocator.allocate(&AllocRequest::new(next_job, size), &machine) {
            next_job += 1;
            machine.occupy(&alloc.nodes);
            live.push(alloc);
            performed += 1;
        }
        if live.is_empty() {
            break;
        }
    }
    performed as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// The same churn through the full service stack (registry lock, admission
/// bookkeeping, metrics); returns ops/second.
fn bench_service(occupancy: f64, ops: usize, seed: u64) -> f64 {
    let service = AllocationService::new();
    service
        .register("bench", "16x16", Some("Hilbert w/BF"), None, None)
        .expect("fresh service accepts registration");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut next_job = 0u64;
    let target = (occupancy * 256.0) as usize;
    let mut busy = 0usize;

    while busy < target {
        let size = rng.gen_range(1usize..=8);
        match service.allocate("bench", next_job, size, false, None) {
            Ok(AllocOutcome::Granted(nodes)) => {
                busy += nodes.len();
                live.push(next_job);
                next_job += 1;
            }
            _ => break,
        }
    }

    let start = Instant::now();
    let mut performed = 0usize;
    while performed < ops {
        let victim = live.swap_remove(rng.gen_range(0..live.len()));
        service.release("bench", victim).expect("victim is live");
        performed += 1;
        while performed < ops {
            let size = rng.gen_range(1usize..=8);
            match service.allocate("bench", next_job, size, false, None) {
                Ok(AllocOutcome::Granted(_)) => {
                    live.push(next_job);
                    next_job += 1;
                    performed += 1;
                }
                _ => break,
            }
        }
        if live.is_empty() {
            break;
        }
    }
    performed as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut ops = DEFAULT_OPS;
    let mut seed = 1996u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    ops = v;
                }
                i += 1;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = v;
                }
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    let mesh = Mesh2D::square_16x16();
    let mut results: Vec<Value> = Vec::new();
    let mut speedup_at_90 = 0.0f64;
    for &occupancy in &[0.5, 0.9] {
        let service = bench_service(occupancy, ops, seed);
        for &(mode, refit) in &[("refit", true), ("mixed", false)] {
            let indexed = bench_allocator(
                CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit),
                occupancy,
                ops,
                seed,
                refit,
            );
            let rescan = bench_allocator(
                CurveAllocator::with_rescan(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit),
                occupancy,
                ops,
                seed,
                refit,
            );
            let speedup = indexed / rescan;
            if occupancy == 0.9 && refit {
                speedup_at_90 = speedup;
            }
            println!(
                "occupancy {:>3.0}% {mode:>6}: indexed {:>12.0} ops/s | rescan {:>12.0} ops/s | speedup {:>5.2}x | service {:>12.0} ops/s",
                occupancy * 100.0,
                indexed,
                rescan,
                speedup,
                service
            );
            let mut row = Map::new();
            row.insert("occupancy".into(), occupancy.to_value());
            row.insert("mode".into(), mode.to_value());
            row.insert("indexed_ops_per_sec".into(), indexed.to_value());
            row.insert("rescan_ops_per_sec".into(), rescan.to_value());
            row.insert("speedup".into(), speedup.to_value());
            row.insert("service_ops_per_sec".into(), service.to_value());
            results.push(Value::Object(row));
        }
    }

    let mut out = Map::new();
    out.insert("benchmark".into(), "service_throughput".to_value());
    out.insert("mesh".into(), "16x16".to_value());
    out.insert("allocator".into(), "Hilbert w/BF".to_value());
    out.insert("ops".into(), ops.to_value());
    out.insert("seed".into(), seed.to_value());
    out.insert("results".into(), Value::Array(results));
    out.insert("speedup_at_90".into(), speedup_at_90.to_value());
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_service.json", &json).expect("can write BENCH_service.json");
    println!("wrote BENCH_service.json (speedup at 90% occupancy: {speedup_at_90:.2}x)");
}
