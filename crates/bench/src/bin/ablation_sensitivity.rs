//! Ablation: is the allocator ranking an artefact of the fluid-model
//! calibration?
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin ablation_sensitivity -- [--jobs N] [--pattern P]
//! ```
//!
//! DESIGN.md §2 substitutes the paper's flit-level ProcSimity runs with a
//! fluid contention model whose two knobs (`link_capacity` and
//! `per_hop_overhead`) are calibrated, not measured. The paper's claims are
//! ordinal (who beats whom), so EXPERIMENTS.md records how stable the
//! allocator ordering is when those knobs move. This binary produces that
//! record: Kendall's τ between the baseline ranking and the ranking at each
//! alternative knob value.

use commalloc::prelude::*;
use commalloc::report;
use commalloc_bench::{cli, standard_trace};

fn main() {
    let cli = cli();
    let mesh = Mesh2D::square_16x16();
    let trace = standard_trace(cli.jobs.min(300), cli.seed)
        .filter_fitting(mesh.num_nodes())
        .with_load_factor(0.6);
    let pattern = cli.pattern.unwrap_or(CommPattern::AllToAll);
    let allocators = AllocatorKind::paper_set();
    let base = SimConfig::new(mesh, pattern, AllocatorKind::HilbertBestFit);

    eprintln!(
        "sensitivity ablation: {} jobs, {pattern}, {} allocators",
        trace.len(),
        allocators.len()
    );

    let capacity_values = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0];
    let overhead_values = [0.0, 0.01, 0.05, 0.1, 0.2];

    let capacity_study = SensitivityStudy::run(
        &base,
        &allocators,
        &trace,
        Knob::LinkCapacity,
        &capacity_values,
    );
    let overhead_study = SensitivityStudy::run(
        &base,
        &allocators,
        &trace,
        Knob::PerHopOverhead,
        &overhead_values,
    );

    for study in [&capacity_study, &overhead_study] {
        println!(
            "\nallocator-ranking stability vs {} (baseline = {}):",
            study.knob.name(),
            study.baseline_value
        );
        println!(
            "{:>12} {:>14} {:<40}",
            "value", "Kendall tau", "best three allocators"
        );
        for point in &study.points {
            let top: Vec<&str> = point
                .ranking
                .iter()
                .take(3)
                .map(|(k, _)| k.name())
                .collect();
            println!(
                "{:>12} {:>14.2} {:<40}",
                point.value,
                point.tau_vs_baseline,
                top.join(", ")
            );
        }
        println!(
            "worst tau over the studied range: {:.2} (1.0 = ordering unchanged)",
            study.worst_tau()
        );
    }

    match report::write_json("ablation_sensitivity", &(&capacity_study, &overhead_study)) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
