//! Run the complete reproduction suite: every figure and table in one pass.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin run_all_experiments -- [--jobs N] [--full]
//! ```
//!
//! Convenience driver that executes the same experiments as the individual
//! `fig*` binaries (at reduced default scale) and prints a compact digest of
//! the paper's qualitative claims and whether this build reproduces them.
//! Useful as a single command to sanity-check the whole pipeline after a
//! change; the per-figure binaries remain the canonical way to regenerate
//! full-size data.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::stats::pearson_correlation;
use commalloc_bench::{cli, is_probe_record, probe_jobs, standard_trace};

struct Claim {
    name: &'static str,
    reproduced: bool,
    detail: String,
}

fn main() {
    let cli = cli();
    let jobs = cli.jobs.min(500);
    let trace = standard_trace(jobs, cli.seed);
    let mesh16 = Mesh2D::square_16x16();
    let mut claims: Vec<Claim> = Vec::new();

    // --- Figures 7/8-style sweep at a single heavy load on both meshes. ---
    eprintln!("running response-time sweeps ({jobs} jobs)...");
    let sweep = |mesh: Mesh2D| LoadSweep {
        mesh,
        patterns: CommPattern::paper_patterns().to_vec(),
        allocators: AllocatorKind::paper_set().to_vec(),
        load_factors: vec![0.4],
        ..LoadSweep::paper_figure(mesh)
    };
    let r16 = sweep(mesh16).run(&trace);

    let rank_of = |result: &commalloc::experiment::SweepResult,
                   pattern: CommPattern,
                   allocator: AllocatorKind| {
        result
            .ranking(pattern)
            .iter()
            .position(|(a, _)| *a == allocator)
            .map(|p| p + 1)
            .unwrap_or(usize::MAX)
    };

    // Claim 1: Hilbert w/BF is among the best for all-to-all on 16x16.
    let pos = rank_of(&r16, CommPattern::AllToAll, AllocatorKind::HilbertBestFit);
    claims.push(Claim {
        name: "Fig 8(a): Hilbert w/BF among the best for all-to-all (16x16)",
        reproduced: pos <= 4,
        detail: format!("rank {pos} of 9"),
    });

    // Claim 2: curve free-list variants are among the worst for all-to-all.
    let s_pos = rank_of(&r16, CommPattern::AllToAll, AllocatorKind::SCurveFreeList);
    claims.push(Claim {
        name: "Fig 8(a): S-curve free list near the bottom for all-to-all",
        reproduced: s_pos >= 6,
        detail: format!("rank {s_pos} of 9"),
    });

    // Claim 3: Hilbert w/BF is the best for n-body on 16x16.
    let nb_pos = rank_of(&r16, CommPattern::NBody, AllocatorKind::HilbertBestFit);
    claims.push(Claim {
        name: "Fig 8(b): Hilbert w/BF at or near the top for n-body (16x16)",
        reproduced: nb_pos <= 3,
        detail: format!("rank {nb_pos} of 9"),
    });

    // --- Figure 11: contiguity. ---
    eprintln!("running contiguity table...");
    let fig11 = LoadSweep {
        mesh: mesh16,
        patterns: vec![CommPattern::AllToAll],
        allocators: AllocatorKind::figure11_set().to_vec(),
        load_factors: vec![1.0],
        ..LoadSweep::paper_figure(mesh16)
    }
    .run(&trace);
    let comp = |a: AllocatorKind| {
        fig11
            .points
            .iter()
            .find(|p| p.allocator == a)
            .map(|p| p.avg_components)
            .unwrap_or(f64::NAN)
    };
    let curve_avg =
        (comp(AllocatorKind::HilbertBestFit) + comp(AllocatorKind::SCurveBestFit)) / 2.0;
    let disp_avg = (comp(AllocatorKind::Mc1x1) + comp(AllocatorKind::GenAlg)) / 2.0;
    claims.push(Claim {
        name: "Fig 11: curve+packing allocations have fewer components than MC1x1/Gen-Alg",
        reproduced: curve_avg < disp_avg,
        detail: format!("{curve_avg:.2} vs {disp_avg:.2} components/job"),
    });

    // --- Figures 9/10: metric correlation. ---
    eprintln!("running correlation probes...");
    let probe_trace = probe_jobs(
        &trace.filter_fitting(256),
        24,
        128,
        (39_900, 44_000),
        cli.seed,
    );
    let mut pairwise = Vec::new();
    let mut message = Vec::new();
    let mut running = Vec::new();
    for allocator in [
        AllocatorKind::HilbertBestFit,
        AllocatorKind::Mc1x1,
        AllocatorKind::SCurveFreeList,
    ] {
        let result = simulate(
            &probe_trace,
            &SimConfig::new(mesh16, CommPattern::NBody, allocator),
        );
        for r in result
            .records
            .iter()
            .filter(|r| is_probe_record(r, 128, (39_900, 44_000)))
        {
            pairwise.push(r.avg_pairwise_distance);
            message.push(r.avg_message_distance);
            running.push(r.running_time());
        }
    }
    let c9 = pearson_correlation(&pairwise, &running);
    let c10 = pearson_correlation(&message, &running);
    claims.push(Claim {
        name: "Figs 9/10: running time tracks message distance more tightly than pairwise distance",
        reproduced: c10 > c9,
        detail: format!("r(message)={c10:.2}, r(pairwise)={c9:.2}"),
    });

    // --- Digest. ---
    println!("\n================ reproduction digest ================");
    let mut ok = 0;
    for claim in &claims {
        println!(
            "[{}] {}  ({})",
            if claim.reproduced { "ok " } else { "MISS" },
            claim.name,
            claim.detail
        );
        if claim.reproduced {
            ok += 1;
        }
    }
    println!(
        "{ok}/{} qualitative claims reproduced at this scale ({} jobs; larger --jobs sharpens the contrasts)",
        claims.len(),
        jobs
    );
}
