//! Figure 7: response time versus load on the 16 × 22 mesh for all-to-all,
//! n-body and random communication.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig07_mesh16x22 -- [--jobs N] [--full] [--pattern P]
//! ```
//!
//! Runs the paper's Figure 7 sweep: the nine plotted allocator configurations
//! × the five load factors × the three communication patterns, trace-driven
//! with FCFS scheduling, and prints one response-time table per pattern (the
//! rows/series of Figure 7(a)–(c)). By default an 800-job prefix of the
//! synthetic trace is used so the sweep finishes quickly; pass `--full` for
//! the paper's 6087 jobs.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_bench::{cli, standard_trace};

fn main() {
    run(Mesh2D::paragon_16x22(), "fig07_mesh16x22");
}

pub fn run(mesh: Mesh2D, name: &str) {
    let cli = cli();
    let trace = standard_trace(cli.jobs, cli.seed);
    let mut sweep = LoadSweep::paper_figure(mesh);
    sweep.seed = cli.seed;
    if let Some(pattern) = cli.pattern {
        sweep.patterns = vec![pattern];
    }
    if cli.include_first_fit {
        sweep.allocators.push(AllocatorKind::HilbertFirstFit);
        sweep.allocators.push(AllocatorKind::SCurveFirstFit);
        sweep.allocators.push(AllocatorKind::HIndexFirstFit);
    }
    eprintln!(
        "{name}: {} jobs, {} simulation runs ({} allocators x {} loads x {} patterns)...",
        trace.len(),
        sweep.num_runs(),
        sweep.allocators.len(),
        sweep.load_factors.len(),
        sweep.patterns.len()
    );
    let result = sweep.run(&trace);

    for pattern in &sweep.patterns {
        println!(
            "=== {} mesh {}x{} — {} ===",
            name,
            mesh.width(),
            mesh.height(),
            pattern
        );
        println!("{}", report::response_time_table(&result, *pattern));
        println!("ranking (mean response across loads, best first):");
        for (i, (a, rt)) in result.ranking(*pattern).iter().enumerate() {
            println!("  {:>2}. {:<16} {:>12.0} s", i + 1, a.name(), rt);
        }
        println!();
    }

    match report::write_json(name, &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
