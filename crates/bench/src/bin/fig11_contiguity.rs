//! Figure 11: percentage of jobs allocated contiguously and average number of
//! components per job, for all-to-all communication on the 16 × 16 mesh at
//! load 1.0.
//!
//! ```text
//! cargo run --release -p commalloc-bench --bin fig11_contiguity -- [--jobs N] [--full]
//! ```
//!
//! Reproduces the paper's Figure 11 table over the twelve allocator
//! configurations it lists (including the First Fit variants omitted from the
//! response-time graphs).

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_bench::{cli, standard_trace};

fn main() {
    let cli = cli();
    let mesh = Mesh2D::square_16x16();
    let trace = standard_trace(cli.jobs, cli.seed);
    let sweep = LoadSweep {
        mesh,
        patterns: vec![CommPattern::AllToAll],
        allocators: AllocatorKind::figure11_set().to_vec(),
        load_factors: vec![1.0],
        ..LoadSweep::paper_figure(mesh)
    };
    eprintln!(
        "fig11: {} jobs, all-to-all, load 1.0, {} allocators...",
        trace.len(),
        sweep.allocators.len()
    );
    let result = sweep.run(&trace);

    println!("Figure 11 reproduction: contiguity of allocations (all-to-all, 16x16, load 1.0)\n");
    println!(
        "{}",
        report::contiguity_table(&result, CommPattern::AllToAll, 1.0)
    );
    println!(
        "paper's observation: the curve-based strategies allocate into fewer components than MC/MC1x1/Gen-Alg."
    );

    match report::write_json("fig11_contiguity", &result) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
