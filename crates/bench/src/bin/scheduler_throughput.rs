//! Scheduling-policy comparison through the live service: the same
//! mixed-size job stream, offered at ~90% machine occupancy, replayed
//! deterministically (virtual time) under FCFS, first-fit backfill,
//! EASY backfill and conservative backfill. Reports per-policy queue
//! waits (count/mean/max), bounded slowdowns (mean/p99 — the fairness
//! tail conservative exists to protect), makespan, achieved utilization
//! and raw service throughput, and emits `BENCH_schedulers.json`.
//!
//! The workload mixes many small jobs (1–16 processors) with occasional
//! large ones (32–96 processors) — the regime where FCFS's head-of-line
//! blocking hurts most and backfilling pays. Durations are integral and
//! walltime estimates are perfect, as in the offline engine's
//! zero-contention fidelity, so the numbers are exactly reproducible.
//!
//! Usage: `scheduler_throughput [--jobs N] [--seed S]`

use commalloc::scheduler::SchedulerKind;
use commalloc_service::{replay, AllocationService, ReplayJob, SLOWDOWN_TAU_SECONDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Serialize, Value};
use std::time::Instant;

const NODES: f64 = 256.0;
const TARGET_OCCUPANCY: f64 = 0.9;
const DEFAULT_JOBS: usize = 600;

/// Mixed-size job stream whose offered load approaches
/// `TARGET_OCCUPANCY` of the 16×16 machine.
fn workload(jobs: usize, seed: u64) -> Vec<ReplayJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(jobs);
    let mut arrival = 0.0f64;
    // Mean demand per job: 0.75·E[small]·E[dur] + 0.25·E[large]·E[dur].
    let mean_size = 0.75 * 8.5 + 0.25 * 64.0;
    let mean_duration = 275.0;
    let mean_interarrival = (mean_size * mean_duration) / (TARGET_OCCUPANCY * NODES);
    for id in 0..jobs {
        let size = if rng.gen_bool(0.75) {
            rng.gen_range(1usize..=16)
        } else {
            rng.gen_range(32usize..=96)
        };
        let duration = rng.gen_range(50u64..=500) as f64;
        arrival += (rng.gen_range(1u64..=(2.0 * mean_interarrival) as u64)) as f64;
        out.push(ReplayJob {
            id: id as u64,
            size,
            arrival,
            duration,
            pattern: None,
        });
    }
    out
}

struct PolicyRow {
    scheduler: SchedulerKind,
    mean_wait: f64,
    max_wait: f64,
    waits: u64,
    mean_slowdown: f64,
    p99_slowdown: f64,
    makespan: f64,
    utilization: f64,
    ops_per_sec: f64,
}

fn run_policy(scheduler: SchedulerKind, jobs: &[ReplayJob]) -> PolicyRow {
    let service = AllocationService::new();
    service
        .register("bench", "16x16", None, None, Some(scheduler.name()))
        .expect("fresh service accepts registration");
    let start = Instant::now();
    let log = replay(&service, "bench", jobs, None);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(log.rejected.is_empty(), "curve allocators never refuse");
    assert_eq!(log.grants.len(), jobs.len(), "every job must run");

    let mut wait_total = 0.0f64;
    let mut wait_max = 0.0f64;
    let mut waits = 0u64;
    let mut busy_integral = 0.0f64;
    // Bounded slowdowns, exactly as `WaitStats::record` anchors them:
    // (wait + max(runtime, τ)) / max(runtime, τ) with τ = 10 s. The p99
    // is the fairness tail the reservation-based policies compete on —
    // conservative trades some of EASY's mean for that tail.
    let mut slowdowns: Vec<f64> = Vec::with_capacity(jobs.len());
    for grant in &log.grants {
        let job = &jobs[grant.job_id as usize];
        let wait = grant.time - job.arrival;
        wait_total += wait;
        wait_max = wait_max.max(wait);
        if wait > 0.0 {
            waits += 1;
        }
        let runtime = job.duration.max(SLOWDOWN_TAU_SECONDS);
        slowdowns.push((wait + runtime) / runtime);
        busy_integral += job.size as f64 * job.duration;
    }
    slowdowns.sort_by(f64::total_cmp);
    let p99_rank = ((0.99 * slowdowns.len() as f64).ceil() as usize).clamp(1, slowdowns.len());
    // One op = one alloc or one release round trip through the service.
    let ops = 2.0 * jobs.len() as f64;
    PolicyRow {
        scheduler,
        mean_wait: wait_total / jobs.len() as f64,
        max_wait: wait_max,
        waits,
        mean_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
        p99_slowdown: slowdowns[p99_rank - 1],
        makespan: log.end_time,
        utilization: busy_integral / (log.end_time * NODES),
        ops_per_sec: ops / elapsed.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = DEFAULT_JOBS;
    let mut seed = 1996u64;
    let mut i = 1;
    while i < args.len() {
        // A malformed value must not silently fall back to the canonical
        // configuration — the JSON it writes would look canonical too.
        let numeric = |flag: &str| -> u64 {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"));
            value
                .parse()
                .unwrap_or_else(|_| panic!("invalid value {value:?} for {flag}"))
        };
        match args[i].as_str() {
            "--jobs" => {
                jobs = numeric("--jobs") as usize;
                assert!(jobs > 0, "--jobs needs at least one job");
                i += 1;
            }
            "--seed" => {
                seed = numeric("--seed");
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    let stream = workload(jobs, seed);
    let mut rows = Vec::new();
    for scheduler in SchedulerKind::all() {
        let row = run_policy(scheduler, &stream);
        println!(
            "{:<21} mean wait {:>8.1} s | max wait {:>8.0} s | waited {:>4}/{} | \
             slowdown mean {:>6.2} p99 {:>7.2} | makespan {:>8.0} s | util {:>5.1}% | \
             {:>9.0} ops/s",
            row.scheduler.name(),
            row.mean_wait,
            row.max_wait,
            row.waits,
            jobs,
            row.mean_slowdown,
            row.p99_slowdown,
            row.makespan,
            row.utilization * 100.0,
            row.ops_per_sec,
        );
        rows.push(row);
    }

    let fcfs = rows
        .iter()
        .find(|r| r.scheduler == SchedulerKind::Fcfs)
        .expect("FCFS row");
    let easy = rows
        .iter()
        .find(|r| r.scheduler == SchedulerKind::EasyBackfill)
        .expect("EASY row");
    let conservative = rows
        .iter()
        .find(|r| r.scheduler == SchedulerKind::Conservative)
        .expect("conservative row");
    let ratio = easy.mean_wait / fcfs.mean_wait.max(1e-9);
    println!(
        "EASY mean wait is {:.2}x FCFS's at ~{:.0}% offered occupancy \
         ({} jobs, seed {})",
        ratio,
        TARGET_OCCUPANCY * 100.0,
        jobs,
        seed
    );
    println!(
        "conservative vs EASY: mean slowdown {:.2}x, p99 slowdown {:.2}x \
         (whole-queue reservations trade mean for the fairness tail)",
        conservative.mean_slowdown / easy.mean_slowdown.max(1e-9),
        conservative.p99_slowdown / easy.p99_slowdown.max(1e-9),
    );

    let mut out = Map::new();
    out.insert("benchmark".into(), "scheduler_throughput".to_value());
    out.insert("mesh".into(), "16x16".to_value());
    out.insert("allocator".into(), "Hilbert w/BF".to_value());
    out.insert("target_occupancy".into(), TARGET_OCCUPANCY.to_value());
    out.insert("jobs".into(), jobs.to_value());
    out.insert("seed".into(), seed.to_value());
    out.insert(
        "results".into(),
        Value::Array(
            rows.iter()
                .map(|r| {
                    let mut row = Map::new();
                    row.insert("scheduler".into(), r.scheduler.name().to_value());
                    row.insert("mean_wait_seconds".into(), r.mean_wait.to_value());
                    row.insert("max_wait_seconds".into(), r.max_wait.to_value());
                    row.insert("jobs_that_waited".into(), r.waits.to_value());
                    row.insert("mean_bounded_slowdown".into(), r.mean_slowdown.to_value());
                    row.insert("p99_bounded_slowdown".into(), r.p99_slowdown.to_value());
                    row.insert("makespan_seconds".into(), r.makespan.to_value());
                    row.insert("utilization".into(), r.utilization.to_value());
                    row.insert("service_ops_per_sec".into(), r.ops_per_sec.to_value());
                    Value::Object(row)
                })
                .collect(),
        ),
    );
    out.insert("easy_vs_fcfs_mean_wait".into(), ratio.to_value());
    let mut cmp = Map::new();
    cmp.insert(
        "mean_bounded_slowdown".into(),
        (conservative.mean_slowdown / easy.mean_slowdown.max(1e-9)).to_value(),
    );
    cmp.insert(
        "p99_bounded_slowdown".into(),
        (conservative.p99_slowdown / easy.p99_slowdown.max(1e-9)).to_value(),
    );
    cmp.insert(
        "mean_wait_seconds".into(),
        (conservative.mean_wait / easy.mean_wait.max(1e-9)).to_value(),
    );
    out.insert("conservative_vs_easy".into(), Value::Object(cmp));
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_schedulers.json", &json).expect("can write BENCH_schedulers.json");
    println!("wrote BENCH_schedulers.json");
    // The acceptance gate applies to the canonical configuration only:
    // EASY carries no ordering guarantee on arbitrary seeds/mixes, so a
    // custom run reports without aborting.
    if jobs == DEFAULT_JOBS && seed == 1996 {
        assert!(
            easy.mean_wait <= fcfs.mean_wait + 1e-9,
            "EASY backfilling should not wait longer than FCFS on the \
             canonical mixed-size workload"
        );
        assert!(
            conservative.mean_wait <= fcfs.mean_wait + 1e-9,
            "conservative backfilling should not wait longer than FCFS on \
             the canonical mixed-size workload"
        );
        assert!(
            conservative.max_wait <= fcfs.max_wait + 1e-9,
            "whole-queue reservations should tighten the worst-case wait \
             relative to FCFS on the canonical workload"
        );
    } else if easy.mean_wait > fcfs.mean_wait {
        eprintln!("note: EASY waits longer than FCFS on this custom workload");
    }
}
