//! Wire-throughput benchmark: pipelined requests per second through the
//! TCP front end, comparing the blocking thread-per-connection server
//! against the thread-per-core readiness loop (NDJSON and binary
//! framings), all measured in the same run on the same hardware. Emits
//! `BENCH_wire.json`.
//!
//! Method: each configuration spawns a fresh server on an ephemeral
//! port, then `--connections` client threads connect, meet at a barrier
//! (connection setup excluded from the clock) and drive a window of
//! `--window` pipelined `ping` requests each until `--requests` total
//! responses arrive. Clients count responses by newline (NDJSON) or by
//! frame-header stepping (binary) so the client side stays far cheaper
//! than the server side being measured; one full protocol round trip per
//! configuration sanity-checks that real responses flow.
//!
//! The CI gate is hardware-relative: `--min-ratio R` fails the run if
//! the readiness-loop server (binary framing) is below `R`× the blocking
//! baseline measured moments earlier in the same process.
//!
//! Usage: `wire_throughput [--requests N] [--connections C] [--window W]
//! [--min-ratio R]`

use commalloc_service::framing::{self, Framing, MAGIC};
use commalloc_service::{AllocationService, BlockingServer, Request, Server, ServiceClient};
use serde::{Map, Serialize, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Instant;

const DEFAULT_REQUESTS: usize = 100_000;
const DEFAULT_CONNECTIONS: usize = 4;
const DEFAULT_WINDOW: usize = 64;

#[derive(Clone, Copy, PartialEq)]
enum ServerKind {
    Blocking,
    Readiness,
}

impl ServerKind {
    fn name(self) -> &'static str {
        match self {
            ServerKind::Blocking => "blocking",
            ServerKind::Readiness => "readiness",
        }
    }
}

/// Counts complete binary frames in a byte stream without decoding
/// payloads: accumulate the 5-byte header, then skip the declared body.
#[derive(Default)]
struct FrameCounter {
    header: Vec<u8>,
    remaining: usize,
    count: usize,
}

impl FrameCounter {
    fn feed(&mut self, mut chunk: &[u8]) {
        while !chunk.is_empty() {
            if self.remaining > 0 {
                let take = self.remaining.min(chunk.len());
                self.remaining -= take;
                chunk = &chunk[take..];
                if self.remaining == 0 {
                    self.count += 1;
                }
                continue;
            }
            let need = 5 - self.header.len();
            let take = need.min(chunk.len());
            self.header.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.header.len() == 5 {
                assert_eq!(self.header[0], MAGIC, "stream desynced from frame headers");
                self.remaining = u32::from_le_bytes([
                    self.header[1],
                    self.header[2],
                    self.header[3],
                    self.header[4],
                ]) as usize;
                self.header.clear();
                if self.remaining == 0 {
                    self.count += 1;
                }
            }
        }
    }
}

/// One client connection's pipelined ping loop; returns responses seen.
fn drive(
    addr: std::net::SocketAddr,
    framing: Framing,
    budget: usize,
    window: usize,
    barrier: &Barrier,
) -> Result<usize, String> {
    let connected = TcpStream::connect(addr);
    let request: Vec<u8> = match framing {
        Framing::Ndjson => {
            let mut line = Request::Ping.to_line().into_bytes();
            line.push(b'\n');
            line
        }
        Framing::Binary => {
            framing::encode_frame(&Request::Ping.to_value()).expect("a ping frame always encodes")
        }
    };
    // A window's worth of back-to-back requests, written in one syscall.
    let burst: Vec<u8> = request
        .iter()
        .cycle()
        .take(request.len() * window)
        .copied()
        .collect();
    barrier.wait();
    let mut stream = connected.map_err(|e| format!("connect: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("nodelay: {e}"))?;

    let mut sent = 0usize;
    let mut received = 0usize;
    let mut counter = FrameCounter::default();
    let mut chunk = vec![0u8; 64 * 1024];
    while received < budget {
        let outstanding = sent - received;
        if outstanding < window && sent < budget {
            let fresh = (window - outstanding).min(budget - sent);
            stream
                .write_all(&burst[..fresh * request.len()])
                .map_err(|e| format!("write: {e}"))?;
            sent += fresh;
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err(format!("server closed after {received} responses"));
        }
        match framing {
            Framing::Ndjson => {
                received += chunk[..n].iter().filter(|&&b| b == b'\n').count();
            }
            Framing::Binary => {
                counter.feed(&chunk[..n]);
                received = counter.count;
            }
        }
    }
    Ok(received)
}

/// Spawns one server configuration, drives it, and returns req/s.
fn bench_config(
    kind: ServerKind,
    framing: Framing,
    requests: usize,
    connections: usize,
    window: usize,
) -> Result<(f64, f64), String> {
    let service = AllocationService::new();
    // Workers = connections for both servers, so the comparison is a
    // fair same-thread-budget one (the blocking server needs a thread
    // per live connection anyway).
    let handle = match kind {
        ServerKind::Blocking => BlockingServer::bind("127.0.0.1:0", service, connections)
            .map_err(|e| format!("bind: {e}"))?
            .spawn()
            .map_err(|e| format!("spawn: {e}"))?,
        ServerKind::Readiness => Server::bind("127.0.0.1:0", service, connections)
            .map_err(|e| format!("bind: {e}"))?
            .spawn()
            .map_err(|e| format!("spawn: {e}"))?,
    };
    let addr = handle.addr();

    // Sanity: a real typed round trip in this framing before the firehose.
    {
        let mut probe = ServiceClient::connect_with_framing(addr, framing)
            .map_err(|e| format!("probe connect: {e}"))?;
        probe.ping().map_err(|e| format!("probe ping: {e}"))?;
    }

    let per_connection = requests.div_ceil(connections);
    let barrier = Barrier::new(connections + 1);
    let mut total = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut elapsed = 0.0f64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || drive(addr, framing, per_connection, window, barrier))
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            match handle.join() {
                Ok(Ok(received)) => total += received,
                Ok(Err(e)) => failures.push(e),
                Err(_) => failures.push("client thread panicked".to_string()),
            }
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    handle.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    if let Some(failure) = failures.into_iter().next() {
        return Err(format!("{} {framing}: {failure}", kind.name()));
    }
    Ok((total as f64 / elapsed.max(1e-9), elapsed))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut requests = DEFAULT_REQUESTS;
    let mut connections = DEFAULT_CONNECTIONS;
    let mut window = DEFAULT_WINDOW;
    let mut min_ratio = 0.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    requests = v;
                }
                i += 1;
            }
            "--connections" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    connections = v;
                }
                i += 1;
            }
            "--window" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    window = v;
                }
                i += 1;
            }
            "--min-ratio" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    min_ratio = v;
                }
                i += 1;
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    let connections = connections.max(1);
    let window = window.max(1);

    let configs = [
        (ServerKind::Blocking, Framing::Ndjson),
        (ServerKind::Readiness, Framing::Ndjson),
        (ServerKind::Readiness, Framing::Binary),
    ];
    let mut results: Vec<Value> = Vec::new();
    let mut throughputs = Vec::new();
    for &(kind, framing) in &configs {
        let (throughput, elapsed) = match bench_config(kind, framing, requests, connections, window)
        {
            Ok(measured) => measured,
            Err(e) => {
                eprintln!("wire_throughput: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "{:>9} server, {:>6} framing: {:>12.0} req/s ({:.2} s)",
            kind.name(),
            framing.as_str(),
            throughput,
            elapsed
        );
        let mut row = Map::new();
        row.insert("server".into(), kind.name().to_value());
        row.insert("framing".into(), framing.as_str().to_value());
        row.insert("throughput".into(), throughput.to_value());
        row.insert("elapsed_seconds".into(), elapsed.to_value());
        results.push(Value::Object(row));
        throughputs.push(throughput);
    }
    let blocking = throughputs[0];
    let ratio_ndjson = throughputs[1] / blocking.max(1e-9);
    let ratio_binary = throughputs[2] / blocking.max(1e-9);

    let mut out = Map::new();
    out.insert("benchmark".into(), "wire_throughput".to_value());
    out.insert("requests".into(), requests.to_value());
    out.insert("connections".into(), connections.to_value());
    out.insert("window".into(), window.to_value());
    out.insert("results".into(), Value::Array(results));
    out.insert("ratio_ndjson".into(), ratio_ndjson.to_value());
    out.insert("ratio_binary".into(), ratio_binary.to_value());
    out.insert("min_ratio".into(), min_ratio.to_value());
    let json = serde_json::to_string_pretty(&Value::Object(out)).expect("rendering is infallible");
    std::fs::write("BENCH_wire.json", &json).expect("can write BENCH_wire.json");
    println!(
        "wrote BENCH_wire.json (readiness/blocking: {ratio_ndjson:.2}x ndjson, {ratio_binary:.2}x binary)"
    );

    // The hardware-relative regression gate: both servers were measured
    // seconds apart in this same process, so the ratio cancels the host.
    if min_ratio > 0.0 && ratio_binary < min_ratio {
        eprintln!(
            "wire_throughput: readiness-loop server at {ratio_binary:.2}x the blocking \
             baseline, below the {min_ratio:.2}x floor"
        );
        std::process::exit(1);
    }
}
