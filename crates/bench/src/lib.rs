//! Shared harness code for the figure-regeneration binaries and Criterion
//! benchmarks.
//!
//! Every binary under `src/bin/` regenerates one figure or table of the
//! paper (see DESIGN.md §3 for the index). They share:
//!
//! * [`cli`] — a tiny argument parser (`--jobs N`, `--full`, `--seed S`,
//!   `--pattern P`) so the binaries stay dependency-free;
//! * [`standard_trace`] — the synthetic SDSC-Paragon-like trace used by
//!   default, subsampled so the default run finishes in minutes; `--full`
//!   switches to the full 6087-job workload the paper uses;
//! * [`dispersion_allocations`] — machine states of varying fragmentation
//!   used by the Figure 1 and Figure 9/10 experiments;
//! * [`probe_jobs`] — the 128-processor probe jobs that reproduce the
//!   Figure 9/10 job population.

use commalloc::prelude::*;
use commalloc_alloc::AllocRequest;
use commalloc_mesh::NodeId;
use commalloc_workload::Job;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Default number of trace jobs for the figure binaries; chosen so a full
/// figure sweep finishes in a few minutes on a laptop while preserving the
/// qualitative allocator ordering. `--full` restores the paper's 6087 jobs.
pub const DEFAULT_JOBS: usize = 800;

/// Parsed command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Number of synthetic trace jobs.
    pub jobs: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Restrict to one communication pattern (where applicable).
    pub pattern: Option<CommPattern>,
    /// Include the First Fit configurations the paper measured but omitted
    /// from its graphs.
    pub include_first_fit: bool,
}

/// Parses the common flags from `std::env::args`.
pub fn cli() -> Cli {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = DEFAULT_JOBS;
    let mut seed = 1996u64;
    let mut pattern = None;
    let mut include_first_fit = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    jobs = v;
                }
                i += 1;
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = v;
                }
                i += 1;
            }
            "--pattern" => {
                pattern = args.get(i + 1).and_then(|s| CommPattern::parse(s));
                i += 1;
            }
            "--full" => jobs = 6087,
            "--include-first-fit" => include_first_fit = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: [--jobs N] [--full] [--seed S] [--pattern all-to-all|n-body|random] [--include-first-fit]"
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    Cli {
        jobs,
        seed,
        pattern,
        include_first_fit,
    }
}

/// The synthetic SDSC-Paragon-like trace used by the figure binaries.
pub fn standard_trace(jobs: usize, seed: u64) -> Trace {
    if jobs >= 6087 {
        ParagonTraceModel::default().generate(seed)
    } else {
        ParagonTraceModel::scaled(jobs).generate(seed)
    }
}

/// Produces `count` allocations of `size` processors with varying dispersion
/// on `mesh`: the machine is pre-occupied with increasing fractions of
/// randomly chosen busy processors before a Hilbert/Best-Fit allocation is
/// made, so later allocations are progressively more fragmented. Returns the
/// allocations in rank order together with their average pairwise distance.
pub fn dispersion_allocations(
    mesh: Mesh2D,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<(Vec<NodeId>, f64)> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        let busy_fraction = 0.75 * i as f64 / count.max(1) as f64;
        let mut machine = MachineState::new(mesh);
        let mut nodes: Vec<NodeId> = mesh.nodes().collect();
        nodes.shuffle(&mut rng);
        let busy_count =
            ((mesh.num_nodes() as f64 * busy_fraction) as usize).min(mesh.num_nodes() - size);
        machine.occupy(&nodes[..busy_count]);
        let mut allocator = AllocatorKind::HilbertBestFit.build(mesh);
        let alloc = allocator
            .allocate(&AllocRequest::new(i as u64, size), &machine)
            .expect("enough processors remain free");
        let dispersion = mesh.avg_pairwise_distance(&alloc.nodes);
        out.push((alloc.nodes, dispersion));
    }
    out
}

/// Inserts `count` probe jobs of `size` processors into `trace`, evenly
/// spread over its timeline, each with a message quota drawn uniformly from
/// `quota_range`. This reproduces the Figure 9/10 population: "instances of
/// the largest jobs (128 processors) sending between 39,900 and 44,000
/// messages ... 24 jobs in each simulation".
pub fn probe_jobs(
    trace: &Trace,
    count: usize,
    size: usize,
    quota_range: (u64, u64),
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = trace
        .jobs()
        .last()
        .map(|j| j.arrival)
        .unwrap_or(1.0)
        .max(1.0);
    let mut jobs: Vec<Job> = trace.jobs().to_vec();
    let base_id = jobs.len() as u64;
    for i in 0..count {
        let arrival = span * (i as f64 + 0.5) / count as f64;
        let quota = rng.gen_range(quota_range.0..=quota_range.1);
        jobs.push(Job::new(base_id + i as u64, arrival, size, quota as f64));
    }
    Trace::new(jobs)
}

/// True if a record belongs to one of the probe jobs inserted by
/// [`probe_jobs`] (matched by size and quota band).
pub fn is_probe_record(
    record: &commalloc::JobRecord,
    size: usize,
    quota_range: (u64, u64),
) -> bool {
    record.size == size && record.messages >= quota_range.0 && record.messages <= quota_range.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispersion_allocations_span_a_range() {
        let allocs = dispersion_allocations(Mesh2D::square_16x16(), 30, 10, 3);
        assert_eq!(allocs.len(), 10);
        let min = allocs.iter().map(|(_, d)| *d).fold(f64::INFINITY, f64::min);
        let max = allocs.iter().map(|(_, d)| *d).fold(0.0, f64::max);
        assert!(max > min, "dispersion should vary across allocations");
        for (nodes, _) in &allocs {
            assert_eq!(nodes.len(), 30);
        }
    }

    #[test]
    fn probe_jobs_are_inserted_with_requested_parameters() {
        let base = standard_trace(50, 1);
        let with_probes = probe_jobs(&base, 24, 128, (39_900, 44_000), 9);
        assert_eq!(with_probes.len(), 74);
        let probes: Vec<_> = with_probes
            .jobs()
            .iter()
            .filter(|j| j.size == 128 && j.runtime >= 39_900.0)
            .collect();
        assert_eq!(probes.len(), 24);
    }

    #[test]
    fn standard_trace_scales() {
        assert_eq!(standard_trace(100, 7).len(), 100);
    }
}
