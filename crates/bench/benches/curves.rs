//! Benchmarks and ablation measurements for the space-filling curves: curve
//! construction cost and window locality (the property the paper credits for
//! the curve allocators' quality — "the choice of curve seems to have the
//! dominant effect on performance").

use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::locality::window_locality;
use commalloc_mesh::Mesh2D;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_curve_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_construction");
    for mesh in [
        Mesh2D::square_16x16(),
        Mesh2D::paragon_16x22(),
        Mesh2D::new(64, 64),
    ] {
        for kind in [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing] {
            let label = format!("{}x{}/{}", mesh.width(), mesh.height(), kind);
            group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
                b.iter(|| black_box(CurveOrder::build(kind, mesh)));
            });
        }
    }
    group.finish();
}

fn bench_window_locality(c: &mut Criterion) {
    let mesh = Mesh2D::square_16x16();
    let mut group = c.benchmark_group("window_locality_w32");
    for kind in CurveKind::all() {
        let curve = CurveOrder::build(kind, mesh);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &curve,
            |b, curve| {
                b.iter(|| black_box(window_locality(curve, 32)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_curve_construction, bench_window_locality);
criterion_main!(benches);
