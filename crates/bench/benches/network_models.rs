//! Benchmarks of the three network-model fidelities, justifying the fluid
//! substitution documented in DESIGN.md: the flit-level model is the
//! reference but is orders of magnitude more expensive per simulated message
//! than the fluid rate computation the trace sweeps rely on.

use commalloc_mesh::{Coord, Mesh2D, NodeId};
use commalloc_net::flit::{FlitMessage, FlitNetwork};
use commalloc_net::fluid::{FluidNetwork, RateModel};
use commalloc_net::msglevel::{Message, MessageLevelNetwork};
use commalloc_net::traffic::{JobTraffic, RankTraffic};
use commalloc_net::LinkTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_messages(mesh: Mesh2D, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a = NodeId(rng.gen_range(0..mesh.num_nodes() as u32));
            let b = NodeId(rng.gen_range(0..mesh.num_nodes() as u32));
            (a, b)
        })
        .collect()
}

fn bench_flit_vs_message_level(c: &mut Criterion) {
    let mesh = Mesh2D::square_16x16();
    let mut group = c.benchmark_group("drain_500_random_messages");
    let pairs = random_messages(mesh, 500, 3);

    let flit_msgs: Vec<FlitMessage> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| FlitMessage {
            id: i as u64,
            src,
            dst,
            inject_at: 0,
            flits: 16,
        })
        .collect();
    let flit_net = FlitNetwork::new(mesh);
    group.bench_function(BenchmarkId::new("flit_level", 500), |b| {
        b.iter(|| black_box(flit_net.simulate(black_box(&flit_msgs))))
    });

    let level_msgs: Vec<Message> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| Message {
            id: i as u64,
            src,
            dst,
            inject_at: 0.0,
            service_time: 1.0,
        })
        .collect();
    let msg_net = MessageLevelNetwork::new(mesh);
    group.bench_function(BenchmarkId::new("message_level", 500), |b| {
        b.iter(|| black_box(msg_net.simulate(black_box(&level_msgs))))
    });
    group.finish();
}

fn bench_fluid_rate_computation(c: &mut Criterion) {
    let mesh = Mesh2D::paragon_16x22();
    let links = LinkTable::new(mesh);
    let mut group = c.benchmark_group("fluid_rates");
    for num_jobs in [4usize, 16, 64] {
        // Each job: 16 processors in a row, all-to-all traffic.
        let jobs: Vec<JobTraffic> = (0..num_jobs)
            .map(|j| {
                let row = (j % mesh.height() as usize) as u16;
                let nodes: Vec<NodeId> =
                    (0..16u16).map(|x| mesh.id_of(Coord::new(x, row))).collect();
                let traffic: Vec<RankTraffic> = (0..16)
                    .flat_map(|a| {
                        (0..16).filter(move |&b| b != a).map(move |b| RankTraffic {
                            src: a,
                            dst: b,
                            weight: 1.0 / 240.0,
                        })
                    })
                    .collect();
                JobTraffic::new(mesh, &links, j as u64, &nodes, &traffic, 1.0)
            })
            .collect();
        let refs: Vec<&JobTraffic> = jobs.iter().collect();
        let model = FluidNetwork::new(links.num_slots());
        group.bench_with_input(BenchmarkId::from_parameter(num_jobs), &refs, |b, refs| {
            b.iter(|| black_box(model.rates(black_box(refs))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flit_vs_message_level,
    bench_fluid_rate_computation
);
criterion_main!(benches);
