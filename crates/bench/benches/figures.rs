//! One Criterion benchmark per paper table/figure: each measures a scaled-down
//! version of the corresponding experiment so regressions in the experiment
//! pipeline (allocators, patterns, engine, contention model) are caught by
//! `cargo bench`. The full-size figure data is produced by the binaries in
//! `src/bin/` (see DESIGN.md §3); these benches use small traces so a full
//! `cargo bench` run stays in the minutes range.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc_bench::{dispersion_allocations, probe_jobs, standard_trace};
use commalloc_net::flit::{FlitMessage, FlitNetwork};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Figure 1: flit-level test-suite drain on one 30-processor allocation.
fn bench_fig01(c: &mut Criterion) {
    let mesh = Mesh2D::paragon_16x22();
    let (nodes, _) = dispersion_allocations(mesh, 30, 5, 1).pop().unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let messages: Vec<FlitMessage> = CommPattern::TestSuite
        .iteration_messages(nodes.len(), &mut rng)
        .into_iter()
        .enumerate()
        .map(|(i, (s, d))| FlitMessage {
            id: i as u64,
            src: nodes[s],
            dst: nodes[d],
            inject_at: 0,
            flits: 16,
        })
        .collect();
    let net = FlitNetwork::new(mesh);
    c.bench_function("fig01_testsuite_flit_drain", |b| {
        b.iter(|| black_box(net.simulate(black_box(&messages))))
    });
}

/// Figure 2 / Figure 6: curve construction including truncation to 16x22.
fn bench_fig02_06(c: &mut Criterion) {
    c.bench_function("fig02_06_curve_builds", |b| {
        b.iter(|| {
            for kind in [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing] {
                black_box(CurveOrder::build(kind, Mesh2D::new(8, 8)));
                black_box(CurveOrder::build(kind, Mesh2D::paragon_16x22()));
            }
        })
    });
}

/// Figure 7: one load-sweep cell (all-to-all, Hilbert w/BF) on the 16x22 mesh.
fn bench_fig07(c: &mut Criterion) {
    let trace = standard_trace(120, 3);
    let config = SimConfig::new(
        Mesh2D::paragon_16x22(),
        CommPattern::AllToAll,
        AllocatorKind::HilbertBestFit,
    );
    c.bench_function("fig07_single_cell_16x22", |b| {
        b.iter(|| black_box(simulate(black_box(&trace), &config)))
    });
}

/// Figure 8: a miniature three-allocator sweep on the 16x16 mesh.
fn bench_fig08(c: &mut Criterion) {
    let trace = standard_trace(80, 4);
    let sweep = LoadSweep {
        mesh: Mesh2D::square_16x16(),
        patterns: vec![CommPattern::NBody],
        allocators: vec![
            AllocatorKind::HilbertBestFit,
            AllocatorKind::Mc,
            AllocatorKind::SCurveFreeList,
        ],
        load_factors: vec![1.0, 0.4],
        ..LoadSweep::paper_figure(Mesh2D::square_16x16())
    };
    c.bench_function("fig08_mini_sweep_16x16", |b| {
        b.iter(|| black_box(sweep.run(black_box(&trace))))
    });
}

/// Figures 9/10: probe-job n-body simulation and the correlation bookkeeping.
fn bench_fig09_10(c: &mut Criterion) {
    let base = standard_trace(80, 5).filter_fitting(256);
    let trace = probe_jobs(&base, 6, 128, (39_900, 44_000), 5);
    let config = SimConfig::new(
        Mesh2D::square_16x16(),
        CommPattern::NBody,
        AllocatorKind::Mc1x1,
    );
    c.bench_function("fig09_10_probe_simulation", |b| {
        b.iter(|| black_box(simulate(black_box(&trace), &config)))
    });
}

/// Figure 11: contiguity statistics across the twelve-allocator set.
fn bench_fig11(c: &mut Criterion) {
    let trace = standard_trace(80, 6);
    let sweep = LoadSweep {
        mesh: Mesh2D::square_16x16(),
        patterns: vec![CommPattern::AllToAll],
        allocators: AllocatorKind::figure11_set().to_vec(),
        load_factors: vec![1.0],
        ..LoadSweep::paper_figure(Mesh2D::square_16x16())
    };
    c.bench_function("fig11_contiguity_sweep", |b| {
        b.iter(|| black_box(sweep.run(black_box(&trace))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig01, bench_fig02_06, bench_fig07, bench_fig08, bench_fig09_10, bench_fig11
}
criterion_main!(benches);
