//! Microbenchmarks of the allocation algorithms themselves: how long one
//! allocation decision takes on a realistically fragmented machine. The
//! paper's allocators must run "immediately" when the scheduler dispatches a
//! job, so per-decision latency matters operationally even though it is not
//! one of the paper's plotted metrics.

use commalloc_alloc::{AllocRequest, AllocatorKind, MachineState};
use commalloc_mesh::{Mesh2D, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

/// A machine with 40% of its processors busy in a scattered pattern, the
/// regime where allocator quality and cost both matter.
fn fragmented_machine(mesh: Mesh2D, seed: u64) -> MachineState {
    let mut machine = MachineState::new(mesh);
    let mut nodes: Vec<NodeId> = mesh.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    nodes.truncate(mesh.num_nodes() * 2 / 5);
    machine.occupy(&nodes);
    machine
}

fn bench_allocation_decision(c: &mut Criterion) {
    let mesh = Mesh2D::paragon_16x22();
    let machine = fragmented_machine(mesh, 7);
    let mut group = c.benchmark_group("allocation_decision_16x22");
    for kind in [
        AllocatorKind::HilbertBestFit,
        AllocatorKind::HilbertFreeList,
        AllocatorKind::SCurveBestFit,
        AllocatorKind::Mc,
        AllocatorKind::Mc1x1,
        AllocatorKind::GenAlg,
        AllocatorKind::Random,
    ] {
        group.bench_with_input(BenchmarkId::new(kind.name(), 16), &kind, |b, &kind| {
            let mut allocator = kind.build(mesh);
            b.iter(|| {
                let alloc = allocator
                    .allocate(&AllocRequest::new(1, 16), black_box(&machine))
                    .expect("allocation fits");
                black_box(alloc)
            });
        });
    }
    group.finish();
}

fn bench_allocation_by_size(c: &mut Criterion) {
    let mesh = Mesh2D::square_16x16();
    let machine = fragmented_machine(mesh, 11);
    let mut group = c.benchmark_group("hilbert_bestfit_by_request_size");
    for size in [4usize, 16, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut allocator = AllocatorKind::HilbertBestFit.build(mesh);
            b.iter(|| {
                allocator
                    .allocate(&AllocRequest::new(1, size), black_box(&machine))
                    .map(black_box)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocation_decision, bench_allocation_by_size);
criterion_main!(benches);
