//! Microbenchmarks of the extension components: the historical baseline
//! allocators (contiguous, buddy, MBS), the hybrid meta-allocator, the
//! ablation curves and the 3-D curve constructions.
//!
//! These complement `allocators.rs` (which covers the paper's own
//! configurations): the extension table binary relies on these allocators
//! being fast enough to sweep, and the curve benches document the cost of
//! building the orderings the one-dimensional strategies depend on.

use commalloc_alloc::{AllocRequest, AllocatorKind, MachineState};
use commalloc_mesh::curve::optimizer::{optimize_order, OptimizerConfig};
use commalloc_mesh::curve3d::{Curve3Kind, Curve3Order};
use commalloc_mesh::{CurveKind, CurveOrder, Mesh2D, Mesh3D, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn fragmented_machine(mesh: Mesh2D, seed: u64) -> MachineState {
    let mut machine = MachineState::new(mesh);
    let mut nodes: Vec<NodeId> = mesh.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    nodes.truncate(mesh.num_nodes() * 2 / 5);
    machine.occupy(&nodes);
    machine
}

fn bench_extended_allocators(c: &mut Criterion) {
    let mesh = Mesh2D::square_16x16();
    let machine = fragmented_machine(mesh, 3);
    let mut group = c.benchmark_group("extended_allocation_decision_16x16");
    for kind in [
        AllocatorKind::ContiguousFirstFit,
        AllocatorKind::ContiguousBestFit,
        AllocatorKind::Buddy2D,
        AllocatorKind::Mbs,
        AllocatorKind::Hybrid,
        AllocatorKind::MortonBestFit,
        AllocatorKind::PeanoBestFit,
    ] {
        group.bench_with_input(BenchmarkId::new(kind.name(), 9), &kind, |b, &kind| {
            let mut allocator = kind.build(mesh);
            b.iter(|| {
                // A 9-processor request (3x3) so even the contiguous
                // strategies usually succeed on the 40%-busy machine; a
                // refusal is still a valid (and cheap) decision to measure.
                let alloc = allocator.allocate(&AllocRequest::new(1, 9), black_box(&machine));
                black_box(alloc)
            });
        });
    }
    group.finish();
}

fn bench_curve_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_construction");
    let mesh = Mesh2D::paragon_16x22();
    for kind in [CurveKind::Hilbert, CurveKind::Morton, CurveKind::Peano] {
        group.bench_with_input(
            BenchmarkId::new("2d_16x22", kind.name()),
            &kind,
            |b, &kind| b.iter(|| black_box(CurveOrder::build(kind, mesh))),
        );
    }
    let mesh3 = Mesh3D::new(8, 8, 8);
    for kind in Curve3Kind::all() {
        group.bench_with_input(
            BenchmarkId::new("3d_8x8x8", kind.name()),
            &kind,
            |b, &kind| b.iter(|| black_box(Curve3Order::build(kind, mesh3))),
        );
    }
    group.finish();
}

fn bench_curve_optimizer(c: &mut Criterion) {
    let mesh = Mesh2D::new(8, 8);
    let nodes: Vec<NodeId> = mesh.nodes().collect();
    let mut group = c.benchmark_group("curve_optimizer");
    for iterations in [500usize, 2_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, &iterations| {
                let config = OptimizerConfig {
                    iterations,
                    ..OptimizerConfig::default()
                };
                b.iter(|| black_box(optimize_order(mesh, &nodes, &config)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_extended_allocators,
    bench_curve_construction,
    bench_curve_optimizer
);
criterion_main!(benches);
