//! Microbenchmarks of the incremental free-interval index against the
//! rescan path it replaces: single-decision latency at a realistic
//! fragmentation level, and raw index update cost.

use commalloc_alloc::curve_alloc::{free_intervals, CurveAllocator, SelectionStrategy};
use commalloc_alloc::interval_index::FreeIntervalIndex;
use commalloc_alloc::{AllocRequest, Allocation, Allocator, MachineState};
use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::Mesh2D;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A machine filled to `occupancy` with random small jobs (returns the
/// live allocations so churn benches can release them).
fn fragmented(
    mesh: Mesh2D,
    occupancy: f64,
    seed: u64,
) -> (MachineState, CurveAllocator, Vec<Allocation>) {
    let mut machine = MachineState::new(mesh);
    let mut allocator = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = Vec::new();
    let target = (occupancy * mesh.num_nodes() as f64) as usize;
    let mut job = 0u64;
    while machine.num_busy() < target {
        let size = rng.gen_range(1usize..=8).min(machine.num_free());
        let Some(alloc) = allocator.allocate(&AllocRequest::new(job, size), &machine) else {
            break;
        };
        job += 1;
        machine.occupy(&alloc.nodes);
        live.push(alloc);
    }
    (machine, allocator, live)
}

fn bench_decision_paths(c: &mut Criterion) {
    let mesh = Mesh2D::square_16x16();
    let mut group = c.benchmark_group("steady_state_churn_16x16");
    for &occupancy in &[0.5, 0.9] {
        for (label, indexed) in [("indexed", true), ("rescan", false)] {
            let id = BenchmarkId::new(label, format!("{:.0}%", occupancy * 100.0));
            group.bench_function(id, |b| {
                let (mut machine, mut allocator, mut live) = fragmented(mesh, occupancy, 7);
                if !indexed {
                    allocator = CurveAllocator::with_rescan(
                        CurveKind::Hilbert,
                        mesh,
                        SelectionStrategy::BestFit,
                    );
                }
                let mut rng = StdRng::seed_from_u64(13);
                let mut job = 1_000_000u64;
                b.iter(|| {
                    let victim = live.swap_remove(rng.gen_range(0..live.len()));
                    machine.release(&victim.nodes);
                    allocator.release(&victim, &machine);
                    let size = victim.nodes.len();
                    let alloc = allocator
                        .allocate(&AllocRequest::new(job, size), &machine)
                        .expect("released space refits");
                    job += 1;
                    machine.occupy(&alloc.nodes);
                    live.push(black_box(alloc));
                });
            });
        }
    }
    group.finish();
}

fn bench_index_primitives(c: &mut Criterion) {
    let mesh = Mesh2D::square_16x16();
    let curve = CurveOrder::build(CurveKind::Hilbert, mesh);
    let (machine, _, _) = fragmented(mesh, 0.9, 7);

    let mut group = c.benchmark_group("index_primitives_16x16_90pct");
    group.bench_function("rebuild_from_machine", |b| {
        b.iter(|| black_box(FreeIntervalIndex::from_machine(&curve, &machine)));
    });
    group.bench_function("rescan_free_intervals", |b| {
        b.iter(|| black_box(free_intervals(&curve, &machine)));
    });
    let index = FreeIntervalIndex::from_machine(&curve, &machine);
    group.bench_function("best_fit_query", |b| {
        b.iter(|| black_box(index.select(SelectionStrategy::BestFit, 4)));
    });
    group.bench_function("occupy_release_rank", |b| {
        let mut index = FreeIntervalIndex::from_machine(&curve, &machine);
        let free_rank = (0..curve.len())
            .find(|&r| index.is_free(r))
            .expect("some rank is free at 90% occupancy");
        b.iter(|| {
            index.occupy_rank(black_box(free_rank));
            index.release_rank(black_box(free_rank));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_decision_paths, bench_index_primitives);
criterion_main!(benches);
