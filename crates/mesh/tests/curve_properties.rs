//! Property-based tests for the mesh and curve substrate.

use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::{Coord, Mesh2D};
use proptest::prelude::*;

fn arb_mesh() -> impl Strategy<Value = Mesh2D> {
    (1u16..=24, 1u16..=24).prop_map(|(w, h)| Mesh2D::new(w, h))
}

fn arb_kind() -> impl Strategy<Value = CurveKind> {
    prop_oneof![
        Just(CurveKind::RowMajor),
        Just(CurveKind::SCurve),
        Just(CurveKind::SCurveLongDirection),
        Just(CurveKind::Hilbert),
        Just(CurveKind::HIndexing),
    ]
}

proptest! {
    /// Every curve kind yields a bijection between ranks and processors on
    /// any mesh shape.
    #[test]
    fn curve_is_a_permutation(mesh in arb_mesh(), kind in arb_kind()) {
        let curve = CurveOrder::build(kind, mesh);
        prop_assert_eq!(curve.len(), mesh.num_nodes());
        let mut seen = vec![false; mesh.num_nodes()];
        for rank in 0..curve.len() {
            let node = curve.node_at(rank);
            prop_assert!(!seen[node.index()]);
            seen[node.index()] = true;
            prop_assert_eq!(curve.rank_of(node), rank);
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Manhattan distance is a metric: symmetric, zero only on identity, and
    /// satisfies the triangle inequality (the property Gen-Alg's approximation
    /// guarantee relies on).
    #[test]
    fn manhattan_is_a_metric(
        (x1, y1, x2, y2, x3, y3) in (0u16..64, 0u16..64, 0u16..64, 0u16..64, 0u16..64, 0u16..64)
    ) {
        let a = Coord::new(x1, y1);
        let b = Coord::new(x2, y2);
        let c = Coord::new(x3, y3);
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(b) == 0, a == b);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    /// x-y routing produces a path of length exactly the Manhattan distance,
    /// stepping one hop at a time.
    #[test]
    fn xy_route_length_matches_distance(
        mesh in arb_mesh(),
        s in 0usize..1024,
        d in 0usize..1024,
    ) {
        let src = commalloc_mesh::NodeId((s % mesh.num_nodes()) as u32);
        let dst = commalloc_mesh::NodeId((d % mesh.num_nodes()) as u32);
        let path = mesh.xy_route(src, dst);
        prop_assert_eq!(path.len() as u32, mesh.distance(src, dst) + 1);
        for w in path.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
        prop_assert_eq!(path[0], mesh.coord_of(src));
        prop_assert_eq!(*path.last().unwrap(), mesh.coord_of(dst));
    }

    /// On power-of-two square meshes the locality curves are gap-free, and on
    /// all meshes the number of gaps is bounded by the mesh height (gaps only
    /// happen where the truncated curve leaves the mesh).
    #[test]
    fn locality_curves_have_few_gaps(k in 1u32..5) {
        let side = 1u16 << k;
        let mesh = Mesh2D::new(side, side);
        for kind in [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing] {
            let curve = CurveOrder::build(kind, mesh);
            prop_assert_eq!(curve.discontinuities(), 0);
        }
    }

    /// Rectilinear component counting never exceeds the set size and is 1 for
    /// a full row of the mesh.
    #[test]
    fn components_bounds(mesh in arb_mesh()) {
        let row: Vec<_> = (0..mesh.width())
            .map(|x| mesh.id_of(Coord::new(x, 0)))
            .collect();
        prop_assert_eq!(mesh.components(&row), 1);
        let all: Vec<_> = mesh.nodes().collect();
        prop_assert_eq!(mesh.components(&all), 1);
    }
}
