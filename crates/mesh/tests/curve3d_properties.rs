//! Property-based tests for the 3-D mesh/curve extension and the curve
//! optimiser.

use commalloc_mesh::curve::optimizer::{optimize_order, ordering_cost, OptimizerConfig};
use commalloc_mesh::curve3d::{Curve3Kind, Curve3Order};
use commalloc_mesh::{Mesh2D, Mesh3D, NodeId};
use proptest::prelude::*;

fn arb_mesh3() -> impl Strategy<Value = Mesh3D> {
    (1u16..6, 1u16..6, 1u16..6).prop_map(|(w, h, d)| Mesh3D::new(w, h, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every 3-D curve is a bijection between ranks and processors on any
    /// box-shaped mesh.
    #[test]
    fn every_curve3_is_a_permutation(mesh in arb_mesh3()) {
        for kind in Curve3Kind::all() {
            let curve = Curve3Order::build(kind, mesh);
            prop_assert_eq!(curve.len(), mesh.num_nodes());
            let mut seen = vec![false; mesh.num_nodes()];
            for node in curve.iter() {
                prop_assert!(!seen[node.index()]);
                seen[node.index()] = true;
            }
            for rank in 0..curve.len() {
                prop_assert_eq!(curve.rank_of(curve.node_at(rank)), rank);
            }
        }
    }

    /// The 3-D snake is gap-free on every box; on power-of-two cubes the 3-D
    /// Hilbert curve is too.
    #[test]
    fn snake_is_always_gap_free(mesh in arb_mesh3()) {
        let snake = Curve3Order::build(Curve3Kind::Snake, mesh);
        prop_assert_eq!(snake.discontinuities(), 0);
    }

    /// 3-D Manhattan distance is a metric (symmetry + triangle inequality)
    /// over node triples.
    #[test]
    fn mesh3_distance_is_a_metric(
        mesh in arb_mesh3(),
        picks in prop::collection::vec(any::<u32>(), 3),
    ) {
        let n = mesh.num_nodes() as u32;
        let a = NodeId(picks[0] % n);
        let b = NodeId(picks[1] % n);
        let c = NodeId(picks[2] % n);
        prop_assert_eq!(mesh.distance(a, b), mesh.distance(b, a));
        prop_assert_eq!(mesh.distance(a, a), 0);
        prop_assert!(mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c));
    }

    /// The curve optimiser never makes an ordering worse (it returns the best
    /// ordering it saw) and always returns a permutation of its input.
    #[test]
    fn optimizer_never_worsens_an_ordering(
        width in 2u16..7,
        height in 2u16..7,
        iterations in 0usize..400,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::new(width, height);
        let nodes: Vec<NodeId> = mesh.nodes().collect();
        let config = OptimizerConfig {
            iterations,
            seed,
            ..OptimizerConfig::default()
        };
        let result = optimize_order(mesh, &nodes, &config);
        prop_assert!(result.final_cost <= result.initial_cost + 1e-9);
        prop_assert!((result.final_cost - ordering_cost(mesh, &result.order, &config)).abs() < 1e-9);
        let mut sorted = result.order.clone();
        sorted.sort();
        prop_assert_eq!(sorted, nodes);
    }
}
