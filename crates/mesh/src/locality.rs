//! Locality measures of a curve ordering.
//!
//! The paper's Section 5 observes that "the choice of curve seems to have the
//! dominant effect on performance for Paging algorithms". These metrics
//! quantify what "a good curve" means so that claim can be tested directly
//! (ablation bench `curves` in `commalloc-bench`): a curve with good locality
//! maps any window of consecutive ranks to a mesh region with small average
//! pairwise distance and few connected components.

use crate::coord::NodeId;
use crate::curve::CurveOrder;
use serde::{Deserialize, Serialize};

/// Summary of how well a rank window of a given size preserves locality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowLocality {
    /// The window (allocation) size measured.
    pub window: usize,
    /// Average over all windows of the average pairwise Manhattan distance of
    /// the window's processors.
    pub mean_pairwise_distance: f64,
    /// Worst window's average pairwise distance.
    pub max_pairwise_distance: f64,
    /// Average number of rectilinear components the window splits into.
    pub mean_components: f64,
    /// Fraction of windows that form a single component.
    pub contiguous_fraction: f64,
}

/// Computes [`WindowLocality`] for every window of `window` consecutive ranks
/// of `curve` (sliding by one).
///
/// This models the best case for a one-dimensional-reduction allocator: the
/// machine is empty and the job receives a contiguous range of ranks.
///
/// # Panics
///
/// Panics if `window` is zero or larger than the curve.
pub fn window_locality(curve: &CurveOrder, window: usize) -> WindowLocality {
    assert!(window > 0, "window must be positive");
    assert!(
        window <= curve.len(),
        "window {window} larger than curve of length {}",
        curve.len()
    );
    let mesh = curve.mesh();
    let nodes: Vec<NodeId> = curve.iter().collect();
    let num_windows = curve.len() - window + 1;
    let mut sum_pd = 0.0;
    let mut max_pd: f64 = 0.0;
    let mut sum_components = 0.0;
    let mut contiguous = 0usize;
    for start in 0..num_windows {
        let slice = &nodes[start..start + window];
        let pd = mesh.avg_pairwise_distance(slice);
        sum_pd += pd;
        max_pd = max_pd.max(pd);
        let comps = mesh.components(slice);
        sum_components += comps as f64;
        if comps == 1 {
            contiguous += 1;
        }
    }
    WindowLocality {
        window,
        mean_pairwise_distance: sum_pd / num_windows as f64,
        max_pairwise_distance: max_pd,
        mean_components: sum_components / num_windows as f64,
        contiguous_fraction: contiguous as f64 / num_windows as f64,
    }
}

/// The average Manhattan distance between processors at rank distance
/// exactly `lag` along the curve. `lag = 1` with value 1.0 means the curve is
/// gap-free; larger lags probe how quickly the curve disperses.
pub fn mean_distance_at_lag(curve: &CurveOrder, lag: usize) -> f64 {
    assert!(lag >= 1 && lag < curve.len());
    let mesh = curve.mesh();
    let nodes: Vec<NodeId> = curve.iter().collect();
    let mut sum = 0u64;
    for i in 0..nodes.len() - lag {
        sum += mesh.distance(nodes[i], nodes[i + lag]) as u64;
    }
    sum as f64 / (nodes.len() - lag) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{CurveKind, CurveOrder};
    use crate::mesh::Mesh2D;

    #[test]
    fn hilbert_windows_beat_row_major_on_square_mesh() {
        let mesh = Mesh2D::new(16, 16);
        let hilbert = CurveOrder::build(CurveKind::Hilbert, mesh);
        let row_major = CurveOrder::build(CurveKind::RowMajor, mesh);
        for window in [8usize, 32, 64] {
            let h = window_locality(&hilbert, window);
            let r = window_locality(&row_major, window);
            assert!(
                h.mean_pairwise_distance < r.mean_pairwise_distance,
                "window {window}: Hilbert {h:?} should beat row-major {r:?}"
            );
        }
    }

    #[test]
    fn gap_free_curve_has_unit_lag_one_distance() {
        let mesh = Mesh2D::new(16, 16);
        let hilbert = CurveOrder::build(CurveKind::Hilbert, mesh);
        assert!((mean_distance_at_lag(&hilbert, 1) - 1.0).abs() < 1e-12);
        let s = CurveOrder::build(CurveKind::SCurve, mesh);
        assert!((mean_distance_at_lag(&s, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_window_of_a_gap_free_curve_is_contiguous_at_small_sizes() {
        let mesh = Mesh2D::new(8, 8);
        let hilbert = CurveOrder::build(CurveKind::Hilbert, mesh);
        let l = window_locality(&hilbert, 4);
        assert_eq!(l.contiguous_fraction, 1.0);
        assert_eq!(l.mean_components, 1.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let mesh = Mesh2D::new(4, 4);
        let c = CurveOrder::build(CurveKind::Hilbert, mesh);
        window_locality(&c, 0);
    }
}
