//! Processor coordinates and identifiers on a 2-D mesh.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor coordinate on a 2-D mesh.
///
/// `x` is the column (0 at the left) and `y` is the row (0 at the bottom).
/// The paper's meshes are described as `16 × 22` and `16 × 16`; we follow the
/// convention `width × height`, i.e. `x ∈ [0, width)` and `y ∈ [0, height)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (hop) distance to `other`, the routing distance on a mesh
    /// with dimension-ordered routing and no wraparound links.
    pub fn manhattan(&self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }

    /// Returns true if `other` is a mesh neighbour (distance exactly one).
    pub fn is_adjacent(&self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Dense identifier of a processor within a specific [`crate::Mesh2D`].
///
/// Identifiers are row-major: `id = y * width + x`. They are only meaningful
/// relative to the mesh that produced them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric_and_zero_on_self() {
        let a = Coord::new(3, 7);
        let b = Coord::new(10, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 7 + 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn adjacency_is_distance_one() {
        let a = Coord::new(4, 4);
        assert!(a.is_adjacent(Coord::new(5, 4)));
        assert!(a.is_adjacent(Coord::new(4, 3)));
        assert!(!a.is_adjacent(Coord::new(5, 5)));
        assert!(!a.is_adjacent(a));
    }

    #[test]
    fn node_id_conversions_round_trip() {
        let id: NodeId = 42usize.into();
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(format!("{id}"), "n42");
    }
}
