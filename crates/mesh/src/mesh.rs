//! The 2-D mesh machine model.

use crate::coord::{Coord, NodeId};
use serde::{Deserialize, Serialize};

/// A `width × height` mesh of processors with no wraparound links.
///
/// The paper simulates the 352-node Intel Paragon partition as a `16 × 22`
/// mesh and also a square `16 × 16` mesh. Messages are routed with x-y
/// (dimension-ordered) routing: first along the x dimension, then along y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh2D {
    width: u16,
    height: u16,
}

impl Mesh2D {
    /// Creates a mesh with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh2D { width, height }
    }

    /// The paper's non-square machine: 16 columns by 22 rows (352 nodes),
    /// matching the SDSC Paragon partition that produced the trace.
    pub fn paragon_16x22() -> Self {
        Mesh2D::new(16, 22)
    }

    /// The paper's square machine: 16 by 16 (256 nodes).
    pub fn square_16x16() -> Self {
        Mesh2D::new(16, 16)
    }

    /// Number of columns.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total number of processors.
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Returns true if `c` lies within the mesh.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// The dense identifier of coordinate `c` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn id_of(&self, c: Coord) -> NodeId {
        assert!(self.contains(c), "coordinate {c} outside {self:?}");
        NodeId(c.y as u32 * self.width as u32 + c.x as u32)
    }

    /// The coordinate of identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coord_of(&self, id: NodeId) -> Coord {
        assert!(id.index() < self.num_nodes(), "node {id} outside {self:?}");
        Coord::new(
            (id.0 % self.width as u32) as u16,
            (id.0 / self.width as u32) as u16,
        )
    }

    /// Manhattan distance in hops between two processors.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord_of(a).manhattan(self.coord_of(b))
    }

    /// Iterator over all node identifiers in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        let h = self.height;
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// The (up to four) mesh neighbours of `id`.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let c = self.coord_of(id);
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(self.id_of(Coord::new(c.x - 1, c.y)));
        }
        if c.x + 1 < self.width {
            out.push(self.id_of(Coord::new(c.x + 1, c.y)));
        }
        if c.y > 0 {
            out.push(self.id_of(Coord::new(c.x, c.y - 1)));
        }
        if c.y + 1 < self.height {
            out.push(self.id_of(Coord::new(c.x, c.y + 1)));
        }
        out
    }

    /// The sequence of coordinates visited by an x-y dimension-ordered route
    /// from `src` to `dst`, inclusive of both endpoints.
    ///
    /// The message first corrects its x offset, then its y offset; this is the
    /// deterministic deadlock-free routing used by ProcSimity's mesh model and
    /// by the Paragon/CPlant-class machines the paper targets.
    pub fn xy_route(&self, src: NodeId, dst: NodeId) -> Vec<Coord> {
        let s = self.coord_of(src);
        let d = self.coord_of(dst);
        let mut path = Vec::with_capacity((s.manhattan(d) + 1) as usize);
        let mut cur = s;
        path.push(cur);
        while cur.x != d.x {
            cur.x = if d.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != d.y {
            cur.y = if d.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        path
    }

    /// The directed links traversed by the x-y route from `src` to `dst`,
    /// as `(from, to)` node pairs. Empty when `src == dst`.
    pub fn xy_route_links(&self, src: NodeId, dst: NodeId) -> Vec<(NodeId, NodeId)> {
        let path = self.xy_route(src, dst);
        path.windows(2)
            .map(|w| (self.id_of(w[0]), self.id_of(w[1])))
            .collect()
    }

    /// All coordinates of the `w × h` submesh whose lower-left corner is
    /// `origin`, restricted to coordinates inside the mesh.
    pub fn submesh(&self, origin: Coord, w: u16, h: u16) -> Vec<Coord> {
        let mut out = Vec::new();
        for dy in 0..h {
            for dx in 0..w {
                let c = Coord::new(origin.x.saturating_add(dx), origin.y.saturating_add(dy));
                if self.contains(c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Average pairwise Manhattan distance over a set of nodes.
    ///
    /// This is the dispersion metric of Mache & Lo that MC1x1 and Gen-Alg try
    /// to minimise; returns 0.0 for sets with fewer than two nodes.
    pub fn avg_pairwise_distance(&self, nodes: &[NodeId]) -> f64 {
        if nodes.len() < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                total += self.distance(a, b) as u64;
            }
        }
        let pairs = nodes.len() * (nodes.len() - 1) / 2;
        total as f64 / pairs as f64
    }

    /// Number of rectilinearly-connected components of a node set.
    ///
    /// The paper (Section 4.3) calls a job *contiguously allocated* when all
    /// of its processors form a single component under 4-neighbour adjacency
    /// restricted to the job's own processors.
    pub fn components(&self, nodes: &[NodeId]) -> usize {
        if nodes.is_empty() {
            return 0;
        }
        let in_set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut components = 0;
        for &start in nodes {
            if seen.contains(&start) {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(n) = stack.pop() {
                for nb in self.neighbors(n) {
                    if in_set.contains(&nb) && seen.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let mesh = Mesh2D::new(16, 22);
        for id in mesh.nodes() {
            assert_eq!(mesh.id_of(mesh.coord_of(id)), id);
        }
        assert_eq!(mesh.num_nodes(), 352);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_out_of_range_panics() {
        let mesh = Mesh2D::new(4, 4);
        mesh.id_of(Coord::new(4, 0));
    }

    #[test]
    fn neighbors_of_corner_edge_interior() {
        let mesh = Mesh2D::new(4, 4);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord::new(0, 0))).len(), 2);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord::new(1, 0))).len(), 3);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord::new(2, 2))).len(), 4);
    }

    #[test]
    fn xy_route_goes_x_first_then_y() {
        let mesh = Mesh2D::new(8, 8);
        let src = mesh.id_of(Coord::new(1, 1));
        let dst = mesh.id_of(Coord::new(4, 3));
        let path = mesh.xy_route(src, dst);
        assert_eq!(path.len(), 3 + 2 + 1);
        assert_eq!(path[0], Coord::new(1, 1));
        assert_eq!(path[3], Coord::new(4, 1)); // finished x correction
        assert_eq!(*path.last().unwrap(), Coord::new(4, 3));
        // Links are one fewer than path nodes.
        assert_eq!(mesh.xy_route_links(src, dst).len(), path.len() - 1);
        // Self route is a single node, no links.
        assert_eq!(mesh.xy_route(src, src).len(), 1);
        assert!(mesh.xy_route_links(src, src).is_empty());
    }

    #[test]
    fn submesh_clips_to_mesh() {
        let mesh = Mesh2D::new(4, 4);
        let full = mesh.submesh(Coord::new(1, 1), 2, 2);
        assert_eq!(full.len(), 4);
        let clipped = mesh.submesh(Coord::new(3, 3), 2, 2);
        assert_eq!(clipped.len(), 1);
    }

    #[test]
    fn avg_pairwise_distance_of_line() {
        let mesh = Mesh2D::new(8, 1);
        let nodes: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        // Pairs: d(0,1)=1 d(0,2)=2 d(0,3)=3 d(1,2)=1 d(1,3)=2 d(2,3)=1 => 10/6
        assert!((mesh.avg_pairwise_distance(&nodes) - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(mesh.avg_pairwise_distance(&nodes[..1]), 0.0);
    }

    #[test]
    fn components_counts_rectilinear_clusters() {
        let mesh = Mesh2D::new(8, 8);
        // Two separate 2x1 blocks and one isolated node.
        let nodes = vec![
            mesh.id_of(Coord::new(0, 0)),
            mesh.id_of(Coord::new(1, 0)),
            mesh.id_of(Coord::new(4, 4)),
            mesh.id_of(Coord::new(4, 5)),
            mesh.id_of(Coord::new(7, 7)),
        ];
        assert_eq!(mesh.components(&nodes), 3);
        // Diagonal adjacency does not connect.
        let diag = vec![mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(1, 1))];
        assert_eq!(mesh.components(&diag), 2);
        assert_eq!(mesh.components(&[]), 0);
    }
}
