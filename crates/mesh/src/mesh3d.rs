//! Three-dimensional mesh machine model (extension).
//!
//! The paper's experiments are on 2-D meshes, but it cites Alber &
//! Niedermeier's work on multidimensional Hilbert indexings as the route to
//! higher-dimensional machines (Section 2.1). This module provides the 3-D
//! analogue of [`crate::Mesh2D`] — coordinates, dimension-ordered routing,
//! pairwise-distance and contiguity metrics — so the curve-locality analyses
//! and the one-dimensional-reduction idea can be evaluated on 3-D tori-free
//! meshes such as those of later Cplant-class machines. The 3-D types are
//! self-contained; the paper's figure reproductions remain 2-D.

use crate::coord::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor coordinate on a 3-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord3 {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
    /// Plane index.
    pub z: u16,
}

impl Coord3 {
    /// Creates a coordinate.
    pub const fn new(x: u16, y: u16, z: u16) -> Self {
        Coord3 { x, y, z }
    }

    /// Manhattan (hop) distance to `other`.
    pub fn manhattan(&self, other: Coord3) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        let dz = (self.z as i32 - other.z as i32).unsigned_abs();
        dx + dy + dz
    }

    /// True when `other` is a mesh neighbour (distance exactly one).
    pub fn is_adjacent(&self, other: Coord3) -> bool {
        self.manhattan(other) == 1
    }
}

impl fmt::Display for Coord3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A `width × height × depth` mesh of processors with no wraparound links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh3D {
    width: u16,
    height: u16,
    depth: u16,
}

impl Mesh3D {
    /// Creates a mesh with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(width: u16, height: u16, depth: u16) -> Self {
        assert!(
            width > 0 && height > 0 && depth > 0,
            "mesh dimensions must be positive"
        );
        Mesh3D {
            width,
            height,
            depth,
        }
    }

    /// Number of columns.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of planes.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Total number of processors.
    pub fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize * self.depth as usize
    }

    /// Returns true if `c` lies within the mesh.
    pub fn contains(&self, c: Coord3) -> bool {
        c.x < self.width && c.y < self.height && c.z < self.depth
    }

    /// The dense identifier of coordinate `c` (x fastest, then y, then z).
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn id_of(&self, c: Coord3) -> NodeId {
        assert!(self.contains(c), "coordinate {c} outside {self:?}");
        let plane = self.width as u32 * self.height as u32;
        NodeId(c.z as u32 * plane + c.y as u32 * self.width as u32 + c.x as u32)
    }

    /// The coordinate of identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn coord_of(&self, id: NodeId) -> Coord3 {
        assert!(id.index() < self.num_nodes(), "node {id} outside {self:?}");
        let plane = self.width as u32 * self.height as u32;
        let z = id.0 / plane;
        let rem = id.0 % plane;
        Coord3::new(
            (rem % self.width as u32) as u16,
            (rem / self.width as u32) as u16,
            z as u16,
        )
    }

    /// Manhattan distance in hops between two processors.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord_of(a).manhattan(self.coord_of(b))
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over all coordinates (x fastest, then y, then z).
    pub fn coords(&self) -> impl Iterator<Item = Coord3> + '_ {
        let (w, h, d) = (self.width, self.height, self.depth);
        (0..d)
            .flat_map(move |z| (0..h).flat_map(move |y| (0..w).map(move |x| Coord3::new(x, y, z))))
    }

    /// The (up to six) mesh neighbours of `id`.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let c = self.coord_of(id);
        let mut out = Vec::with_capacity(6);
        if c.x > 0 {
            out.push(self.id_of(Coord3::new(c.x - 1, c.y, c.z)));
        }
        if c.x + 1 < self.width {
            out.push(self.id_of(Coord3::new(c.x + 1, c.y, c.z)));
        }
        if c.y > 0 {
            out.push(self.id_of(Coord3::new(c.x, c.y - 1, c.z)));
        }
        if c.y + 1 < self.height {
            out.push(self.id_of(Coord3::new(c.x, c.y + 1, c.z)));
        }
        if c.z > 0 {
            out.push(self.id_of(Coord3::new(c.x, c.y, c.z - 1)));
        }
        if c.z + 1 < self.depth {
            out.push(self.id_of(Coord3::new(c.x, c.y, c.z + 1)));
        }
        out
    }

    /// The sequence of coordinates visited by an x-y-z dimension-ordered
    /// route from `src` to `dst`, inclusive of both endpoints.
    pub fn xyz_route(&self, src: NodeId, dst: NodeId) -> Vec<Coord3> {
        let s = self.coord_of(src);
        let d = self.coord_of(dst);
        let mut path = Vec::with_capacity((s.manhattan(d) + 1) as usize);
        let mut cur = s;
        path.push(cur);
        while cur.x != d.x {
            cur.x = if d.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != d.y {
            cur.y = if d.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        while cur.z != d.z {
            cur.z = if d.z > cur.z { cur.z + 1 } else { cur.z - 1 };
            path.push(cur);
        }
        path
    }

    /// Average pairwise Manhattan distance over a set of nodes; 0.0 for sets
    /// with fewer than two nodes.
    pub fn avg_pairwise_distance(&self, nodes: &[NodeId]) -> f64 {
        if nodes.len() < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                total += self.distance(a, b) as u64;
            }
        }
        let pairs = nodes.len() * (nodes.len() - 1) / 2;
        total as f64 / pairs as f64
    }

    /// Number of rectilinearly-connected components of a node set under
    /// 6-neighbour adjacency restricted to the set.
    pub fn components(&self, nodes: &[NodeId]) -> usize {
        if nodes.is_empty() {
            return 0;
        }
        let in_set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut components = 0;
        for &start in nodes {
            if seen.contains(&start) {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(n) = stack.pop() {
                for nb in self.neighbors(n) {
                    if in_set.contains(&nb) && seen.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let mesh = Mesh3D::new(4, 5, 3);
        assert_eq!(mesh.num_nodes(), 60);
        for id in mesh.nodes() {
            assert_eq!(mesh.id_of(mesh.coord_of(id)), id);
        }
    }

    #[test]
    fn coords_iterator_matches_ids() {
        let mesh = Mesh3D::new(3, 2, 2);
        let coords: Vec<Coord3> = mesh.coords().collect();
        assert_eq!(coords.len(), 12);
        for (i, &c) in coords.iter().enumerate() {
            assert_eq!(mesh.id_of(c), NodeId(i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_coordinate_panics() {
        Mesh3D::new(2, 2, 2).id_of(Coord3::new(0, 0, 2));
    }

    #[test]
    fn manhattan_distance_in_three_dimensions() {
        let a = Coord3::new(1, 2, 3);
        let b = Coord3::new(4, 0, 5);
        assert_eq!(a.manhattan(b), 3 + 2 + 2);
        assert_eq!(a.manhattan(a), 0);
        assert!(Coord3::new(0, 0, 0).is_adjacent(Coord3::new(0, 0, 1)));
        assert!(!Coord3::new(0, 0, 0).is_adjacent(Coord3::new(0, 1, 1)));
    }

    #[test]
    fn neighbor_counts_at_corner_edge_interior() {
        let mesh = Mesh3D::new(4, 4, 4);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord3::new(0, 0, 0))).len(), 3);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord3::new(1, 0, 0))).len(), 4);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord3::new(1, 1, 0))).len(), 5);
        assert_eq!(mesh.neighbors(mesh.id_of(Coord3::new(1, 1, 1))).len(), 6);
    }

    #[test]
    fn xyz_route_corrects_dimensions_in_order() {
        let mesh = Mesh3D::new(4, 4, 4);
        let src = mesh.id_of(Coord3::new(0, 0, 0));
        let dst = mesh.id_of(Coord3::new(2, 1, 3));
        let path = mesh.xyz_route(src, dst);
        assert_eq!(path.len(), 2 + 1 + 3 + 1);
        assert_eq!(path[2], Coord3::new(2, 0, 0));
        assert_eq!(path[3], Coord3::new(2, 1, 0));
        assert_eq!(*path.last().unwrap(), Coord3::new(2, 1, 3));
        for pair in path.windows(2) {
            assert!(pair[0].is_adjacent(pair[1]));
        }
    }

    #[test]
    fn avg_pairwise_distance_of_a_unit_cube() {
        let mesh = Mesh3D::new(2, 2, 2);
        let nodes: Vec<NodeId> = mesh.nodes().collect();
        // 8 nodes of the unit cube: 12 pairs at distance 1, 12 at 2, 4 at 3.
        let expected = (12.0 + 24.0 + 12.0) / 28.0;
        assert!((mesh.avg_pairwise_distance(&nodes) - expected).abs() < 1e-12);
        assert_eq!(mesh.avg_pairwise_distance(&nodes[..1]), 0.0);
    }

    #[test]
    fn components_across_planes() {
        let mesh = Mesh3D::new(3, 3, 3);
        // Two nodes stacked in z are one component; a distant third is not.
        let nodes = vec![
            mesh.id_of(Coord3::new(0, 0, 0)),
            mesh.id_of(Coord3::new(0, 0, 1)),
            mesh.id_of(Coord3::new(2, 2, 2)),
        ];
        assert_eq!(mesh.components(&nodes), 2);
        assert_eq!(mesh.components(&[]), 0);
    }
}
