//! One-dimensional orderings of a 3-D mesh (extension).
//!
//! The 3-D analogue of [`crate::curve`]: the paper cites Alber & Niedermeier
//! on multidimensional Hilbert indexings as the way to carry the
//! one-dimensional-reduction idea to higher-dimensional machines. This
//! module provides
//!
//! * plain **row-major** order,
//! * a gap-free **snake** (boustrophedon in all three dimensions),
//! * the **Morton** (Z-order) interleaving, and
//! * the **Hilbert** curve via the compact transposition algorithm of
//!   Skilling, which generalises the 2-D bit-twiddling construction to any
//!   dimension.
//!
//! Orderings for meshes that are not power-of-two cubes are obtained by
//! truncating the curve of the smallest enclosing cube, mirroring how the
//! paper truncates the 32 × 32 Hilbert curve to the 16 × 22 machine.

use crate::coord::NodeId;
use crate::mesh3d::{Coord3, Mesh3D};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The curve families available in three dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Curve3Kind {
    /// Row-major (x fastest, then y, then z).
    RowMajor,
    /// Gap-free boustrophedon order.
    Snake,
    /// Morton (Z-order) bit interleaving.
    Morton,
    /// Hilbert curve via Skilling's transposition algorithm.
    Hilbert,
}

impl Curve3Kind {
    /// Every 3-D curve kind.
    pub fn all() -> [Curve3Kind; 4] {
        [
            Curve3Kind::RowMajor,
            Curve3Kind::Snake,
            Curve3Kind::Morton,
            Curve3Kind::Hilbert,
        ]
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Curve3Kind::RowMajor => "row-major-3d",
            Curve3Kind::Snake => "snake-3d",
            Curve3Kind::Morton => "Morton-3d",
            Curve3Kind::Hilbert => "Hilbert-3d",
        }
    }
}

impl fmt::Display for Curve3Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A total ordering of the processors of a 3-D mesh along a curve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Curve3Order {
    kind: Curve3Kind,
    mesh: Mesh3D,
    order: Vec<NodeId>,
    rank_of: Vec<u32>,
}

impl Curve3Order {
    /// Builds the ordering of `kind` over `mesh`.
    pub fn build(kind: Curve3Kind, mesh: Mesh3D) -> Self {
        let coords: Vec<Coord3> = match kind {
            Curve3Kind::RowMajor => mesh.coords().collect(),
            Curve3Kind::Snake => snake(mesh),
            Curve3Kind::Morton => truncate_to_mesh(mesh, morton_cube),
            Curve3Kind::Hilbert => truncate_to_mesh(mesh, hilbert_cube),
        };
        Self::from_coords(kind, mesh, &coords)
    }

    /// Builds an ordering from an explicit coordinate sequence.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is not a permutation of the mesh's coordinates.
    pub fn from_coords(kind: Curve3Kind, mesh: Mesh3D, coords: &[Coord3]) -> Self {
        assert_eq!(
            coords.len(),
            mesh.num_nodes(),
            "curve must visit every processor exactly once"
        );
        let mut order = Vec::with_capacity(coords.len());
        let mut rank_of = vec![u32::MAX; mesh.num_nodes()];
        for (rank, &c) in coords.iter().enumerate() {
            let id = mesh.id_of(c);
            assert_eq!(
                rank_of[id.index()],
                u32::MAX,
                "curve visits {c} more than once"
            );
            rank_of[id.index()] = rank as u32;
            order.push(id);
        }
        Curve3Order {
            kind,
            mesh,
            order,
            rank_of,
        }
    }

    /// The curve family this ordering was built from.
    pub fn kind(&self) -> Curve3Kind {
        self.kind
    }

    /// The mesh this ordering covers.
    pub fn mesh(&self) -> Mesh3D {
        self.mesh
    }

    /// Number of processors in the ordering.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the ordering is empty (never the case for a valid mesh).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The processor at curve rank `rank`.
    pub fn node_at(&self, rank: usize) -> NodeId {
        self.order[rank]
    }

    /// The curve rank of processor `node`.
    pub fn rank_of(&self, node: NodeId) -> usize {
        self.rank_of[node.index()] as usize
    }

    /// Iterator over processors in curve order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Number of gaps: consecutive ranks whose processors are not mesh
    /// neighbours.
    pub fn discontinuities(&self) -> usize {
        self.order
            .windows(2)
            .filter(|w| self.mesh.distance(w[0], w[1]) != 1)
            .count()
    }

    /// Mean pairwise distance of sliding rank windows of size `window`; the
    /// 3-D analogue of [`crate::locality::window_locality`].
    pub fn window_locality(&self, window: usize) -> f64 {
        assert!(window > 0 && window <= self.len());
        let nodes: Vec<NodeId> = self.iter().collect();
        let num_windows = self.len() - window + 1;
        let mut sum = 0.0;
        for start in 0..num_windows {
            sum += self
                .mesh
                .avg_pairwise_distance(&nodes[start..start + window]);
        }
        sum / num_windows as f64
    }
}

/// Gap-free boustrophedon order: sweep x back and forth within each row,
/// sweep rows back and forth within each plane, sweep planes upward.
fn snake(mesh: Mesh3D) -> Vec<Coord3> {
    let (w, h, d) = (mesh.width(), mesh.height(), mesh.depth());
    let mut out = Vec::with_capacity(mesh.num_nodes());
    for z in 0..d {
        let ys: Vec<u16> = if z % 2 == 0 {
            (0..h).collect()
        } else {
            (0..h).rev().collect()
        };
        for (yi, &y) in ys.iter().enumerate() {
            // Direction alternates with the *global* row parity so the snake
            // stays gap-free across plane boundaries too.
            let global_row = z as usize * h as usize + yi;
            if global_row.is_multiple_of(2) {
                for x in 0..w {
                    out.push(Coord3::new(x, y, z));
                }
            } else {
                for x in (0..w).rev() {
                    out.push(Coord3::new(x, y, z));
                }
            }
        }
    }
    out
}

/// Truncates a power-of-two cube curve to `mesh`: the generator is called
/// with the side of the smallest enclosing power-of-two cube and cells
/// outside the mesh are dropped, preserving order.
fn truncate_to_mesh<F>(mesh: Mesh3D, generator: F) -> Vec<Coord3>
where
    F: Fn(u16) -> Vec<Coord3>,
{
    let side = mesh.width().max(mesh.height()).max(mesh.depth());
    let full = generator(side.next_power_of_two());
    let filtered: Vec<Coord3> = full.into_iter().filter(|&c| mesh.contains(c)).collect();
    assert_eq!(
        filtered.len(),
        mesh.num_nodes(),
        "enclosing curve must cover the whole target mesh"
    );
    filtered
}

/// Morton order of the `n × n × n` cube (`n` a power of two): interleave the
/// bits of x, y and z.
fn morton_cube(n: u16) -> Vec<Coord3> {
    debug_assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    let cells = (n as usize).pow(3);
    (0..cells)
        .map(|d| {
            let mut x = 0u16;
            let mut y = 0u16;
            let mut z = 0u16;
            for bit in 0..bits {
                x |= (((d >> (3 * bit)) & 1) as u16) << bit;
                y |= (((d >> (3 * bit + 1)) & 1) as u16) << bit;
                z |= (((d >> (3 * bit + 2)) & 1) as u16) << bit;
            }
            Coord3::new(x, y, z)
        })
        .collect()
}

/// Hilbert order of the `n × n × n` cube (`n` a power of two) via Skilling's
/// transposition algorithm.
fn hilbert_cube(n: u16) -> Vec<Coord3> {
    debug_assert!(n.is_power_of_two());
    if n == 1 {
        return vec![Coord3::new(0, 0, 0)];
    }
    let bits = n.trailing_zeros() as usize;
    let cells = (n as usize).pow(3);
    (0..cells)
        .map(|d| {
            let axes = hilbert3_d_to_axes(d, bits);
            Coord3::new(axes[0] as u16, axes[1] as u16, axes[2] as u16)
        })
        .collect()
}

/// Converts a 3-D Hilbert index to axis coordinates (`bits` bits per axis).
///
/// This is Skilling's `TransposetoAxes` preceded by de-interleaving the index
/// into its transposed representation.
pub fn hilbert3_d_to_axes(d: usize, bits: usize) -> [u32; 3] {
    const N: usize = 3;
    if bits == 0 {
        return [0, 0, 0];
    }
    // De-interleave: the index's bits, most significant first, go to
    // axis 0, 1, 2, 0, 1, 2, ...
    let mut x = [0u32; N];
    for j in 0..N * bits {
        let bit = (d >> (N * bits - 1 - j)) & 1;
        if bit == 1 {
            x[j % N] |= 1 << (bits - 1 - j / N);
        }
    }
    // Skilling: transpose -> axes.
    let n_mask = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != n_mask {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x
}

/// Converts axis coordinates to the 3-D Hilbert index. Inverse of
/// [`hilbert3_d_to_axes`].
pub fn hilbert3_axes_to_d(axes: [u32; 3], bits: usize) -> usize {
    const N: usize = 3;
    if bits == 0 {
        return 0;
    }
    let mut x = axes;
    let m = 1u32 << (bits - 1);
    // Skilling: axes -> transpose. Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = m;
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
    // Re-interleave the transposed representation into a single index.
    let mut d = 0usize;
    for j in 0..N * bits {
        let axis = j % N;
        let bit_pos = bits - 1 - j / N;
        let bit = (x[axis] >> bit_pos) & 1;
        d = (d << 1) | bit as usize;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_is_permutation(c: &Curve3Order) {
        let mut seen = vec![false; c.mesh().num_nodes()];
        for node in c.iter() {
            assert!(!seen[node.index()], "node visited twice");
            seen[node.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "node never visited");
        for rank in 0..c.len() {
            assert_eq!(c.rank_of(c.node_at(rank)), rank);
        }
    }

    #[test]
    fn every_kind_is_a_permutation_on_cubes_and_boxes() {
        for mesh in [
            Mesh3D::new(4, 4, 4),
            Mesh3D::new(8, 8, 8),
            Mesh3D::new(4, 6, 3),
            Mesh3D::new(1, 1, 9),
        ] {
            for kind in Curve3Kind::all() {
                let c = Curve3Order::build(kind, mesh);
                assert_is_permutation(&c);
            }
        }
    }

    #[test]
    fn snake_is_gap_free_on_any_box() {
        for mesh in [
            Mesh3D::new(4, 4, 4),
            Mesh3D::new(3, 5, 2),
            Mesh3D::new(2, 2, 7),
        ] {
            let c = Curve3Order::build(Curve3Kind::Snake, mesh);
            assert_eq!(c.discontinuities(), 0, "snake must be gap-free on {mesh:?}");
        }
    }

    #[test]
    fn hilbert_is_gap_free_on_power_of_two_cubes() {
        for side in [2u16, 4, 8] {
            let mesh = Mesh3D::new(side, side, side);
            let c = Curve3Order::build(Curve3Kind::Hilbert, mesh);
            assert_eq!(
                c.discontinuities(),
                0,
                "3-D Hilbert must be gap-free on {side}^3"
            );
        }
    }

    #[test]
    fn hilbert_index_round_trips() {
        let bits = 3usize;
        let n = 1usize << bits;
        let mut seen = HashSet::new();
        for d in 0..n * n * n {
            let axes = hilbert3_d_to_axes(d, bits);
            assert!(axes.iter().all(|&a| (a as usize) < n));
            assert_eq!(hilbert3_axes_to_d(axes, bits), d);
            assert!(seen.insert(axes), "axes {axes:?} repeated");
        }
    }

    #[test]
    fn morton_has_jumps_but_covers_cube() {
        let mesh = Mesh3D::new(8, 8, 8);
        let c = Curve3Order::build(Curve3Kind::Morton, mesh);
        assert_eq!(c.len(), 512);
        assert!(c.discontinuities() > 0);
    }

    #[test]
    fn hilbert_windows_beat_row_major() {
        let mesh = Mesh3D::new(8, 8, 8);
        let hilbert = Curve3Order::build(Curve3Kind::Hilbert, mesh);
        let row_major = Curve3Order::build(Curve3Kind::RowMajor, mesh);
        for window in [8usize, 27, 64] {
            assert!(
                hilbert.window_locality(window) < row_major.window_locality(window),
                "window {window}: 3-D Hilbert should cluster better than row-major"
            );
        }
    }

    #[test]
    fn truncation_to_a_box_keeps_every_cell() {
        let mesh = Mesh3D::new(5, 6, 3);
        let c = Curve3Order::build(Curve3Kind::Hilbert, mesh);
        assert_eq!(c.len(), 90);
        // Truncation introduces gaps on a non-cube box.
        assert!(c.discontinuities() > 0);
    }

    #[test]
    fn names_are_distinct() {
        let names: HashSet<_> = Curve3Kind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(Curve3Kind::Hilbert.to_string(), "Hilbert-3d");
    }
}
