//! # commalloc-mesh
//!
//! Two-dimensional mesh topology and space-filling-curve indexings used by the
//! `commalloc` processor-allocation simulator, a reproduction of
//! *Communication Patterns and Allocation Strategies* (Leung, Bunde & Mache,
//! SAND2003-4522 / IPPS 2004).
//!
//! The crate provides:
//!
//! * [`Coord`] and [`NodeId`] — processor coordinates and dense identifiers on
//!   a mesh, with Manhattan (hop) distance.
//! * [`Mesh2D`] — a `width × height` mesh of processors with neighbour,
//!   submesh and routing-path queries (x-y dimension-ordered routing, as used
//!   by the Intel Paragon and CPlant-class machines the paper studies).
//! * [`curve::CurveOrder`] — one-dimensional orderings of the mesh produced by
//!   row-major, S-curve (boustrophedon), Hilbert, and H-indexing/Moore
//!   constructions, including the paper's truncation of `2^k × 2^k` curves to
//!   non-square meshes (Figure 6).
//! * [`locality`] — locality measures of an ordering (discontinuity count,
//!   average pairwise distance of rank windows), used for the ablation
//!   benchmarks on curve choice.
//!
//! # Example
//!
//! ```
//! use commalloc_mesh::{Mesh2D, curve::{CurveKind, CurveOrder}};
//!
//! // The paper's square machine: a 16 x 16 mesh.
//! let mesh = Mesh2D::new(16, 16);
//! let hilbert = CurveOrder::build(CurveKind::Hilbert, mesh);
//!
//! // A space-filling curve visits every processor exactly once ...
//! assert_eq!(hilbert.len(), mesh.num_nodes());
//! // ... and consecutive processors along the Hilbert curve are mesh
//! // neighbours on a power-of-two square mesh.
//! assert_eq!(hilbert.discontinuities(), 0);
//! ```

pub mod coord;
pub mod curve;
pub mod curve3d;
pub mod locality;
pub mod mesh;
pub mod mesh3d;

pub use coord::{Coord, NodeId};
pub use curve::{CurveKind, CurveOrder};
pub use curve3d::{Curve3Kind, Curve3Order};
pub use mesh::Mesh2D;
pub use mesh3d::{Coord3, Mesh3D};
