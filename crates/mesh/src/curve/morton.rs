//! Morton (Z-order) curve on `2^k × 2^k` grids.
//!
//! The Morton order interleaves the bits of the x and y coordinates. It is a
//! classic page ordering that clusters well *on average* but, unlike the
//! Hilbert curve, consecutive indices are frequently not mesh neighbours (the
//! "Z" jumps). Lo et al. considered simple orderings of this family; we keep
//! it as an ablation curve so the benches can quantify how much the jumps
//! cost relative to Hilbert-class curves.

use crate::coord::Coord;

/// Generates the Morton (Z-order) curve covering the `n × n` grid where `n`
/// is the smallest power of two that is at least `side`.
///
/// # Panics
///
/// Panics if `side` is zero.
pub fn generate(side: u16) -> Vec<Coord> {
    let n = crate::curve::hilbert::side_to_pow2(side);
    let cells = (n as usize) * (n as usize);
    (0..cells).map(d_to_xy).collect()
}

/// Converts a Morton index to a coordinate by de-interleaving its bits:
/// even bit positions hold x, odd bit positions hold y.
pub fn d_to_xy(d: usize) -> Coord {
    Coord::new(compact_bits(d as u32), compact_bits((d >> 1) as u32))
}

/// Converts a coordinate to its Morton index by interleaving the bits of the
/// two coordinates. Inverse of [`d_to_xy`].
pub fn xy_to_d(c: Coord) -> usize {
    (spread_bits(c.x) | (spread_bits(c.y) << 1)) as usize
}

/// Spreads the 16 bits of `v` so they occupy the even bit positions of the
/// result (`b15 … b1 b0` becomes `0 b15 … 0 b1 0 b0`).
fn spread_bits(v: u16) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Collects the even bits of `v` into a contiguous 16-bit value. Inverse of
/// [`spread_bits`] restricted to even positions.
fn compact_bits(v: u32) -> u16 {
    let mut x = (v as u64) & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0x0000_0000_ffff_ffff;
    x as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn order_one_z() {
        // The 2x2 Morton order is the "Z": (0,0), (1,0), (0,1), (1,1).
        let coords = generate(2);
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(1, 0),
                Coord::new(0, 1),
                Coord::new(1, 1),
            ]
        );
    }

    #[test]
    fn covers_every_cell_exactly_once() {
        for side in [2u16, 4, 8, 16, 32] {
            let coords = generate(side);
            let n = side as usize;
            assert_eq!(coords.len(), n * n);
            let unique: HashSet<_> = coords.iter().collect();
            assert_eq!(unique.len(), n * n);
        }
    }

    #[test]
    fn index_round_trips() {
        for d in 0..32 * 32 {
            let c = d_to_xy(d);
            assert_eq!(xy_to_d(c), d, "index {d} -> {c}");
        }
    }

    #[test]
    fn spread_and_compact_are_inverse() {
        for v in [0u16, 1, 2, 3, 255, 256, 1023, u16::MAX] {
            assert_eq!(compact_bits(spread_bits(v) as u32), v);
        }
    }

    #[test]
    fn morton_has_jumps_unlike_hilbert() {
        // The Z-order curve on a 16x16 grid is *not* edge-connected: some
        // consecutive indices are far apart, which is exactly why it is kept
        // only as an ablation curve.
        let coords = generate(16);
        let jumps = coords
            .windows(2)
            .filter(|w| !w[0].is_adjacent(w[1]))
            .count();
        assert!(jumps > 0, "Morton order should have non-adjacent steps");
    }

    #[test]
    fn non_power_of_two_side_rounds_up() {
        assert_eq!(generate(3).len(), 16);
        assert_eq!(generate(22).len(), 1024);
    }

    #[test]
    fn quadrant_structure() {
        // The first quarter of the indices covers the lower-left quadrant.
        let n = 8usize;
        let coords = generate(n as u16);
        for &c in &coords[..n * n / 4] {
            assert!(c.x < (n / 2) as u16 && c.y < (n / 2) as u16);
        }
    }
}
