//! Hilbert space-filling curve on `2^k × 2^k` grids.
//!
//! The Hilbert curve (Figure 2(b) of the paper) is the canonical
//! locality-preserving fractal curve: consecutive indices are always mesh
//! neighbours, and small index windows map to compact mesh regions. The
//! one-dimensional-reduction allocators of Leung et al. order processors
//! along this curve.

use crate::coord::Coord;

/// Generates the order-`k` Hilbert curve covering an `n × n` grid where `n`
/// is the smallest power of two that is at least `side`.
///
/// The returned sequence starts at `(0, 0)` and ends at `(n - 1, 0)`.
///
/// # Panics
///
/// Panics if `side` is zero.
pub fn generate(side: u16) -> Vec<Coord> {
    let n = side_to_pow2(side);
    let cells = (n as usize) * (n as usize);
    (0..cells).map(|d| d_to_xy(n as usize, d)).collect()
}

/// Smallest power of two `>= side`.
pub fn side_to_pow2(side: u16) -> u16 {
    assert!(side > 0, "grid side must be positive");
    side.next_power_of_two()
}

/// Converts a Hilbert index `d` to a coordinate on an `n × n` grid
/// (`n` a power of two). Classic iterative bit-twiddling formulation.
pub fn d_to_xy(n: usize, d: usize) -> Coord {
    debug_assert!(n.is_power_of_two());
    debug_assert!(d < n * n);
    let (mut x, mut y) = (0usize, 0usize);
    let mut t = d;
    let mut s = 1usize;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    Coord::new(x as u16, y as u16)
}

/// Converts a coordinate on an `n × n` grid (`n` a power of two) to its
/// Hilbert index. Inverse of [`d_to_xy`].
pub fn xy_to_d(n: usize, c: Coord) -> usize {
    debug_assert!(n.is_power_of_two());
    let (mut x, mut y) = (c.x as usize, c.y as usize);
    let mut d = 0usize;
    let mut s = n / 2;
    while s > 0 {
        let rx = usize::from((x & s) > 0);
        let ry = usize::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate (note: the inverse transform reflects within the full grid).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_curve() {
        let coords = generate(2);
        assert_eq!(
            coords,
            vec![
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(1, 1),
                Coord::new(1, 0)
            ]
        );
    }

    #[test]
    fn endpoints_are_bottom_corners() {
        for side in [2u16, 4, 8, 16, 32] {
            let coords = generate(side);
            let n = side as usize;
            assert_eq!(coords[0], Coord::new(0, 0));
            assert_eq!(coords[n * n - 1], Coord::new(side - 1, 0));
        }
    }

    #[test]
    fn consecutive_cells_are_adjacent() {
        let coords = generate(16);
        for pair in coords.windows(2) {
            assert!(pair[0].is_adjacent(pair[1]));
        }
    }

    #[test]
    fn d_to_xy_and_back() {
        let n = 32usize;
        for d in 0..n * n {
            let c = d_to_xy(n, d);
            assert_eq!(xy_to_d(n, c), d);
        }
    }

    #[test]
    fn non_power_of_two_side_rounds_up() {
        assert_eq!(side_to_pow2(22), 32);
        assert_eq!(side_to_pow2(16), 16);
        assert_eq!(generate(3).len(), 16);
    }
}
