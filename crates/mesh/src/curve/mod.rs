//! One-dimensional orderings ("curves") of a 2-D mesh.
//!
//! The one-dimensional-reduction allocators of Section 2.1 of the paper order
//! the processors of the machine along a curve and then solve a 1-D interval
//! selection problem. The quality of the resulting allocations depends on how
//! well the curve preserves locality: processors that are close in curve rank
//! should be close in the mesh.
//!
//! This module provides the curves the paper evaluates:
//!
//! * [`CurveKind::RowMajor`] — plain row-major order (the weakest baseline
//!   considered by Lo et al.).
//! * [`CurveKind::SCurve`] — boustrophedon ("snake") order. On non-square
//!   meshes the long straight segments run along the *shorter* dimension, the
//!   convention the paper selected after quick simulations.
//! * [`CurveKind::SCurveLongDirection`] — the rejected alternative, kept for
//!   ablation experiments.
//! * [`CurveKind::Hilbert`] — the Hilbert space-filling curve.
//! * [`CurveKind::HIndexing`] — a closed (cyclic) locality-preserving
//!   indexing standing in for the H-indexing of Niedermeier, Reinhardt &
//!   Sanders; see [`h_index`] for the exact construction and the documented
//!   substitution.
//!
//! Hilbert and H-indexing curves are defined on `2^k × 2^k` grids. Following
//! Section 4 of the paper, curves for other mesh shapes (e.g. the 16 × 22
//! CPlant-like machine) are obtained by *truncating* the curve of the
//! smallest enclosing power-of-two square to the actual mesh, which introduces
//! "gaps" (rank-consecutive processors that are not mesh neighbours), exactly
//! as illustrated by the paper's Figure 6.

pub mod h_index;
pub mod hilbert;
pub mod morton;
pub mod optimizer;
pub mod peano;
pub mod row_major;
pub mod s_curve;
pub mod truncate;

use crate::coord::{Coord, NodeId};
use crate::mesh::Mesh2D;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The curve families evaluated in the paper (plus the rejected long-direction
/// S-curve variant, kept for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveKind {
    /// Row-major order.
    RowMajor,
    /// Boustrophedon order with long segments along the shorter dimension.
    SCurve,
    /// Boustrophedon order with long segments along the longer dimension.
    SCurveLongDirection,
    /// Hilbert space-filling curve (truncated on non-power-of-two meshes).
    Hilbert,
    /// Closed locality-preserving indexing (H-indexing stand-in).
    HIndexing,
    /// Morton (Z-order) bit-interleaving order (ablation only: clusters on
    /// average but has long jumps between consecutive ranks).
    Morton,
    /// Peano curve on powers of three (ablation only: an edge-connected
    /// fractal curve that is *not* the Hilbert curve).
    Peano,
}

impl CurveKind {
    /// The curves the paper evaluates in its figures.
    pub fn paper_curves() -> [CurveKind; 3] {
        [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing]
    }

    /// Every curve kind the crate implements.
    pub fn all() -> [CurveKind; 7] {
        [
            CurveKind::RowMajor,
            CurveKind::SCurve,
            CurveKind::SCurveLongDirection,
            CurveKind::Hilbert,
            CurveKind::HIndexing,
            CurveKind::Morton,
            CurveKind::Peano,
        ]
    }

    /// Short human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            CurveKind::RowMajor => "row-major",
            CurveKind::SCurve => "S-curve",
            CurveKind::SCurveLongDirection => "S-curve (long direction)",
            CurveKind::Hilbert => "Hilbert",
            CurveKind::HIndexing => "H-indexing",
            CurveKind::Morton => "Morton",
            CurveKind::Peano => "Peano",
        }
    }
}

impl fmt::Display for CurveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A total ordering of the processors of a mesh along a curve.
///
/// A `CurveOrder` is a bijection between curve ranks `0..mesh.num_nodes()` and
/// [`NodeId`]s. Allocation algorithms use [`CurveOrder::rank_of`] to map a
/// processor to its rank and [`CurveOrder::node_at`] to map ranks back to
/// processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurveOrder {
    kind: CurveKind,
    mesh: Mesh2D,
    /// rank -> node
    order: Vec<NodeId>,
    /// node index -> rank
    rank_of: Vec<u32>,
}

impl CurveOrder {
    /// Builds the ordering of `kind` over `mesh`.
    pub fn build(kind: CurveKind, mesh: Mesh2D) -> Self {
        let coords: Vec<Coord> = match kind {
            CurveKind::RowMajor => row_major::generate(mesh),
            CurveKind::SCurve => s_curve::generate(mesh, s_curve::Orientation::ShortDirection),
            CurveKind::SCurveLongDirection => {
                s_curve::generate(mesh, s_curve::Orientation::LongDirection)
            }
            CurveKind::Hilbert => truncate::truncate_to_mesh(mesh, hilbert::generate),
            CurveKind::HIndexing => truncate::truncate_to_mesh(mesh, h_index::generate),
            CurveKind::Morton => truncate::truncate_to_mesh(mesh, morton::generate),
            CurveKind::Peano => truncate::truncate_to_mesh(mesh, peano::generate),
        };
        Self::from_coords(kind, mesh, &coords)
    }

    /// Builds an ordering from an explicit coordinate sequence.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is not a permutation of the mesh's coordinates.
    pub fn from_coords(kind: CurveKind, mesh: Mesh2D, coords: &[Coord]) -> Self {
        assert_eq!(
            coords.len(),
            mesh.num_nodes(),
            "curve must visit every processor exactly once"
        );
        let mut order = Vec::with_capacity(coords.len());
        let mut rank_of = vec![u32::MAX; mesh.num_nodes()];
        for (rank, &c) in coords.iter().enumerate() {
            let id = mesh.id_of(c);
            assert_eq!(
                rank_of[id.index()],
                u32::MAX,
                "curve visits {c} more than once"
            );
            rank_of[id.index()] = rank as u32;
            order.push(id);
        }
        CurveOrder {
            kind,
            mesh,
            order,
            rank_of,
        }
    }

    /// The curve family this ordering was built from.
    pub fn kind(&self) -> CurveKind {
        self.kind
    }

    /// The mesh this ordering covers.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Number of processors in the ordering.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the ordering is empty (never the case for a valid mesh).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The processor at curve rank `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    pub fn node_at(&self, rank: usize) -> NodeId {
        self.order[rank]
    }

    /// The curve rank of processor `node`.
    pub fn rank_of(&self, node: NodeId) -> usize {
        self.rank_of[node.index()] as usize
    }

    /// Iterator over processors in curve order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Iterator over coordinates in curve order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.order.iter().map(move |&id| self.mesh.coord_of(id))
    }

    /// Number of *gaps*: consecutive ranks whose processors are not mesh
    /// neighbours. Untruncated Hilbert, H-indexing and S-curve orderings have
    /// zero gaps; truncation to a non-power-of-two mesh introduces some
    /// (Figure 6 of the paper).
    pub fn discontinuities(&self) -> usize {
        self.order
            .windows(2)
            .filter(|w| self.mesh.distance(w[0], w[1]) != 1)
            .count()
    }

    /// Renders the ordering as an ASCII grid of ranks, top row first, for
    /// quick visual inspection (used by the Figure 2 / Figure 6 binaries).
    pub fn render_ascii(&self) -> String {
        let mesh = self.mesh;
        let width_digits = (mesh.num_nodes().max(1) as f64).log10() as usize + 1;
        let mut out = String::new();
        for y in (0..mesh.height()).rev() {
            for x in 0..mesh.width() {
                let id = mesh.id_of(Coord::new(x, y));
                let rank = self.rank_of(id);
                out.push_str(&format!("{rank:>width$} ", width = width_digits));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_permutation(c: &CurveOrder) {
        let mut seen = vec![false; c.mesh().num_nodes()];
        for node in c.iter() {
            assert!(!seen[node.index()], "node visited twice");
            seen[node.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "node never visited");
        for rank in 0..c.len() {
            assert_eq!(c.rank_of(c.node_at(rank)), rank);
        }
    }

    #[test]
    fn every_kind_is_a_permutation_on_square_and_rect_meshes() {
        for mesh in [
            Mesh2D::new(16, 16),
            Mesh2D::new(16, 22),
            Mesh2D::new(7, 5),
            Mesh2D::new(1, 9),
        ] {
            for kind in CurveKind::all() {
                let c = CurveOrder::build(kind, mesh);
                assert_is_permutation(&c);
            }
        }
    }

    #[test]
    fn locality_curves_have_no_gaps_on_power_of_two_squares() {
        let mesh = Mesh2D::new(16, 16);
        for kind in [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing] {
            let c = CurveOrder::build(kind, mesh);
            assert_eq!(c.discontinuities(), 0, "{kind} should have no gaps");
        }
        // Row-major jumps at the end of every row.
        let rm = CurveOrder::build(CurveKind::RowMajor, mesh);
        assert_eq!(rm.discontinuities(), 15);
    }

    #[test]
    fn truncated_curves_have_gaps_on_16x22() {
        let mesh = Mesh2D::paragon_16x22();
        for kind in [CurveKind::Hilbert, CurveKind::HIndexing] {
            let c = CurveOrder::build(kind, mesh);
            assert!(
                c.discontinuities() > 0,
                "{kind} truncated to 16x22 must have gaps (paper Fig. 6)"
            );
        }
        // The S-curve stays continuous on any rectangle.
        let s = CurveOrder::build(CurveKind::SCurve, mesh);
        assert_eq!(s.discontinuities(), 0);
    }

    #[test]
    fn paper_names() {
        assert_eq!(CurveKind::Hilbert.to_string(), "Hilbert");
        assert_eq!(CurveKind::SCurve.to_string(), "S-curve");
        assert_eq!(CurveKind::HIndexing.to_string(), "H-indexing");
        assert_eq!(CurveKind::paper_curves().len(), 3);
    }

    #[test]
    #[should_panic(expected = "more than once")]
    fn from_coords_rejects_duplicates() {
        let mesh = Mesh2D::new(2, 1);
        let coords = vec![Coord::new(0, 0), Coord::new(0, 0)];
        CurveOrder::from_coords(CurveKind::RowMajor, mesh, &coords);
    }

    #[test]
    fn render_ascii_has_one_line_per_row() {
        let mesh = Mesh2D::new(4, 3);
        let c = CurveOrder::build(CurveKind::SCurve, mesh);
        let art = c.render_ascii();
        assert_eq!(art.lines().count(), 3);
    }
}
