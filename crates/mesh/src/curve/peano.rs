//! Peano space-filling curve on `3^k × 3^k` grids.
//!
//! The Peano curve is the original space-filling curve (1890), defined on
//! powers of *three* rather than two. Like the Hilbert curve it is
//! edge-connected — consecutive indices are always mesh neighbours — but its
//! 3×3 building block gives it slightly different clustering constants. The
//! paper's allocators only need *some* locality-preserving total order, so
//! the Peano curve is included as an additional ablation point alongside
//! Hilbert, H-indexing and the S-curve: it lets the benches separate "any
//! fractal curve" from "specifically the Hilbert curve".
//!
//! On meshes that are not `3^k × 3^k` the curve of the smallest enclosing
//! power-of-three square is truncated to the mesh, exactly as the paper
//! truncates the 32 × 32 Hilbert curve to 16 × 22 (Figure 6).

use crate::coord::Coord;

/// Generates the Peano curve covering the `n × n` grid where `n` is the
/// smallest power of three that is at least `side`.
///
/// # Panics
///
/// Panics if `side` is zero.
pub fn generate(side: u16) -> Vec<Coord> {
    let n = side_to_pow3(side);
    let cells = (n as usize) * (n as usize);
    (0..cells).map(|d| d_to_xy(n as usize, d)).collect()
}

/// Smallest power of three `>= side`.
pub fn side_to_pow3(side: u16) -> u16 {
    assert!(side > 0, "grid side must be positive");
    let mut n: u32 = 1;
    while n < side as u32 {
        n *= 3;
    }
    n as u16
}

/// Converts a Peano index `d` to a coordinate on an `n × n` grid where `n`
/// is a power of three.
///
/// The construction is the classic switch-back Peano curve: each base-9
/// digit of the index selects one of the nine sub-squares in boustrophedon
/// column order, and the orientation (whether the sub-curve is flipped in x
/// and/or y) is tracked so that consecutive cells always touch.
pub fn d_to_xy(n: usize, d: usize) -> Coord {
    debug_assert!(is_power_of_three(n), "{n} must be a power of three");
    debug_assert!(d < n * n);

    // Number of base-3 levels.
    let mut levels = 0usize;
    let mut m = n;
    while m > 1 {
        m /= 3;
        levels += 1;
    }

    // Extract base-9 digits, most-significant first.
    let mut digits = vec![0usize; levels];
    let mut rest = d;
    for slot in (0..levels).rev() {
        digits[slot] = rest % 9;
        rest /= 9;
    }

    let mut x = 0usize;
    let mut y = 0usize;
    // Orientation state: whether x / y are mirrored inside the current cell.
    let mut flip_x = false;
    let mut flip_y = false;
    let mut size = n;
    for &digit in &digits {
        size /= 3;
        // The Peano block visits its nine children in column-boustrophedon
        // order: column 0 bottom-to-top, column 1 top-to-bottom, column 2
        // bottom-to-top. Local coordinates before applying the orientation:
        let col = digit / 3;
        let row_in_col = digit % 3;
        let row = if col % 2 == 0 {
            row_in_col
        } else {
            2 - row_in_col
        };

        // Apply the current orientation of this cell.
        let (lx, ly) = (
            if flip_x { 2 - col } else { col },
            if flip_y { 2 - row } else { row },
        );
        x += lx * size;
        y += ly * size;

        // Children in odd columns are traversed upside-down, and children in
        // odd rows are traversed right-to-left; compose with the parent
        // orientation. (This is the standard orientation bookkeeping that
        // keeps the switch-back curve edge-connected.)
        if row % 2 == 1 {
            flip_x = !flip_x;
        }
        if col % 2 == 1 {
            flip_y = !flip_y;
        }
    }
    Coord::new(x as u16, y as u16)
}

fn is_power_of_three(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    while n.is_multiple_of(3) {
        n /= 3;
    }
    n == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn side_to_pow3_rounds_up() {
        assert_eq!(side_to_pow3(1), 1);
        assert_eq!(side_to_pow3(2), 3);
        assert_eq!(side_to_pow3(3), 3);
        assert_eq!(side_to_pow3(4), 9);
        assert_eq!(side_to_pow3(9), 9);
        assert_eq!(side_to_pow3(16), 27);
        assert_eq!(side_to_pow3(22), 27);
    }

    #[test]
    fn order_one_curve_is_the_3x3_switchback() {
        let coords = generate(3);
        let expect = vec![
            Coord::new(0, 0),
            Coord::new(0, 1),
            Coord::new(0, 2),
            Coord::new(1, 2),
            Coord::new(1, 1),
            Coord::new(1, 0),
            Coord::new(2, 0),
            Coord::new(2, 1),
            Coord::new(2, 2),
        ];
        assert_eq!(coords, expect);
    }

    #[test]
    fn covers_every_cell_exactly_once() {
        for side in [1u16, 3, 9, 27] {
            let coords = generate(side);
            let n = side_to_pow3(side) as usize;
            assert_eq!(coords.len(), n * n);
            let unique: HashSet<_> = coords.iter().collect();
            assert_eq!(unique.len(), n * n);
            assert!(coords
                .iter()
                .all(|c| (c.x as usize) < n && (c.y as usize) < n));
        }
    }

    #[test]
    fn consecutive_cells_are_adjacent() {
        for side in [3u16, 9, 27] {
            let coords = generate(side);
            for pair in coords.windows(2) {
                assert!(
                    pair[0].is_adjacent(pair[1]),
                    "Peano curve must be edge-connected: {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn endpoints_are_opposite_corners() {
        for side in [3u16, 9, 27] {
            let n = side_to_pow3(side);
            let coords = generate(side);
            assert_eq!(coords[0], Coord::new(0, 0));
            assert_eq!(*coords.last().unwrap(), Coord::new(n - 1, n - 1));
        }
    }

    #[test]
    fn is_power_of_three_detects_correctly() {
        assert!(is_power_of_three(1));
        assert!(is_power_of_three(3));
        assert!(is_power_of_three(27));
        assert!(!is_power_of_three(0));
        assert!(!is_power_of_three(2));
        assert!(!is_power_of_three(6));
    }
}
