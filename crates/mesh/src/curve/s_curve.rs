//! S-curve (boustrophedon / "snake") ordering.
//!
//! The S-curve sweeps back and forth across the mesh, reversing direction at
//! the end of each pass so consecutive processors are always mesh neighbours
//! (Figure 2(a) of the paper). On a non-square mesh there is a choice of
//! whether the long straight segments run along the longer or the shorter
//! dimension; the paper found the *shorter* direction slightly better and
//! used that convention, which is the default here.

use crate::coord::Coord;
use crate::mesh::Mesh2D;

/// Which dimension the long straight segments of the snake run along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Segments run along the shorter mesh dimension (the paper's choice).
    ShortDirection,
    /// Segments run along the longer mesh dimension.
    LongDirection,
}

/// Generates the S-curve ordering of `mesh` with the given orientation.
///
/// Ties (square meshes) sweep along x, advancing in y.
pub fn generate(mesh: Mesh2D, orientation: Orientation) -> Vec<Coord> {
    let w = mesh.width();
    let h = mesh.height();
    // Decide whether the sweeps run along x (width) or along y (height).
    let sweep_along_x = match orientation {
        Orientation::ShortDirection => w <= h,
        Orientation::LongDirection => w > h,
    };
    let mut out = Vec::with_capacity(mesh.num_nodes());
    if sweep_along_x {
        for y in 0..h {
            if y % 2 == 0 {
                for x in 0..w {
                    out.push(Coord::new(x, y));
                }
            } else {
                for x in (0..w).rev() {
                    out.push(Coord::new(x, y));
                }
            }
        }
    } else {
        for x in 0..w {
            if x % 2 == 0 {
                for y in 0..h {
                    out.push(Coord::new(x, y));
                }
            } else {
                for y in (0..h).rev() {
                    out.push(Coord::new(x, y));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_is_continuous_on_rectangles() {
        for (w, h) in [(4, 4), (16, 22), (22, 16), (5, 3), (1, 7)] {
            for orientation in [Orientation::ShortDirection, Orientation::LongDirection] {
                let mesh = Mesh2D::new(w, h);
                let coords = generate(mesh, orientation);
                assert_eq!(coords.len(), mesh.num_nodes());
                for pair in coords.windows(2) {
                    assert!(
                        pair[0].is_adjacent(pair[1]),
                        "S-curve must be gap-free: {} -> {}",
                        pair[0],
                        pair[1]
                    );
                }
            }
        }
    }

    #[test]
    fn short_direction_sweeps_along_width_on_16x22() {
        // Width 16 < height 22, so sweeps run along x: the first 16 entries
        // stay in row 0.
        let coords = generate(Mesh2D::new(16, 22), Orientation::ShortDirection);
        assert!(coords[..16].iter().all(|c| c.y == 0));
        assert_eq!(coords[16], Coord::new(15, 1));
    }

    #[test]
    fn long_direction_sweeps_along_height_on_16x22() {
        let coords = generate(Mesh2D::new(16, 22), Orientation::LongDirection);
        assert!(coords[..22].iter().all(|c| c.x == 0));
        assert_eq!(coords[22], Coord::new(1, 21));
    }

    #[test]
    fn square_mesh_sweeps_along_x() {
        let coords = generate(Mesh2D::new(4, 4), Orientation::ShortDirection);
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[3], Coord::new(3, 0));
        assert_eq!(coords[4], Coord::new(3, 1));
        assert_eq!(coords[7], Coord::new(0, 1));
    }
}
