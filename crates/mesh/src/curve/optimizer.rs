//! Local-search optimisation of processor orderings.
//!
//! For machines that are not regular meshes, Leung et al. "developed an
//! integer program to find curves with locality properties" (Section 2.1 of
//! the paper). The integer program itself is proprietary to that work and is
//! substituted here (see DESIGN.md) by a randomised local-search optimiser
//! over orderings: starting from any ordering, it repeatedly applies 2-opt
//! segment reversals and single-node relocations, accepting moves that lower
//! a locality objective. On regular meshes the optimiser converges to
//! orderings whose windowed locality is comparable to the hand-constructed
//! curves; on irregular node sets (e.g. a mesh with faulted nodes removed)
//! it produces the ordering the one-dimensional allocators need.
//!
//! The objective is a weighted sum of
//!
//! * the mean distance between rank-consecutive processors (gap cost), and
//! * the mean pairwise distance of sliding rank windows (window cost),
//!
//! which mirrors what the paper's experiments reward: allocations taken from
//! an interval of ranks should be compact in the mesh.

use crate::coord::NodeId;
use crate::curve::{CurveKind, CurveOrder};
use crate::mesh::Mesh2D;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable parameters of the local-search optimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Number of candidate moves to evaluate.
    pub iterations: usize,
    /// Sliding-window size used by the window-locality term. The paper's
    /// trace has mean job size 14.5, so a window in the 8–16 range rewards
    /// exactly the localities the allocators exploit.
    pub window: usize,
    /// Weight of the consecutive-rank gap term.
    pub gap_weight: f64,
    /// Weight of the window-locality term.
    pub window_weight: f64,
    /// Initial simulated-annealing temperature (0 disables uphill moves and
    /// reduces the search to strict hill climbing).
    pub initial_temperature: f64,
    /// RNG seed; the optimiser is deterministic given the seed.
    pub seed: u64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            iterations: 20_000,
            window: 9,
            gap_weight: 1.0,
            window_weight: 2.0,
            initial_temperature: 0.5,
            seed: 0xc0de,
        }
    }
}

impl OptimizerConfig {
    /// A cheap configuration for unit tests and quick demos.
    pub fn quick() -> Self {
        OptimizerConfig {
            iterations: 2_000,
            ..Default::default()
        }
    }
}

/// Result of one optimisation run.
#[derive(Debug, Clone)]
pub struct OptimizedOrder {
    /// The optimised ordering over the node subset it was built from.
    pub order: Vec<NodeId>,
    /// Objective value of the starting ordering.
    pub initial_cost: f64,
    /// Objective value of the final ordering.
    pub final_cost: f64,
    /// Number of accepted moves.
    pub accepted_moves: usize,
}

impl OptimizedOrder {
    /// Relative improvement of the objective, in `[0, 1]` for successful
    /// runs (0 means no improvement).
    pub fn improvement(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            return 0.0;
        }
        ((self.initial_cost - self.final_cost) / self.initial_cost).max(0.0)
    }
}

/// The locality objective of an ordering of `nodes` on `mesh`.
///
/// Lower is better. Exposed so benches and tests can score arbitrary
/// orderings (including the hand-constructed curves) on the same scale.
pub fn ordering_cost(mesh: Mesh2D, order: &[NodeId], config: &OptimizerConfig) -> f64 {
    if order.len() < 2 {
        return 0.0;
    }
    let gap: f64 = order
        .windows(2)
        .map(|w| mesh.distance(w[0], w[1]) as f64)
        .sum::<f64>()
        / (order.len() - 1) as f64;

    let window = config.window.min(order.len());
    let mut window_cost = 0.0;
    let mut windows = 0usize;
    // Stride the windows so the cost stays cheap on large meshes while still
    // covering every rank.
    let stride = (window / 2).max(1);
    let mut start = 0usize;
    while start + window <= order.len() {
        window_cost += mesh.avg_pairwise_distance(&order[start..start + window]);
        windows += 1;
        start += stride;
    }
    if windows > 0 {
        window_cost /= windows as f64;
    }
    config.gap_weight * gap + config.window_weight * window_cost
}

/// Optimises an ordering of an arbitrary node subset of `mesh`.
///
/// `initial` is the starting ordering (every node exactly once); it is not
/// required to cover the whole mesh, so the optimiser can be used for
/// machines with faulted/offline processors removed.
///
/// # Panics
///
/// Panics if `initial` contains duplicate nodes.
pub fn optimize_order(
    mesh: Mesh2D,
    initial: &[NodeId],
    config: &OptimizerConfig,
) -> OptimizedOrder {
    let mut seen = vec![false; mesh.num_nodes()];
    for &n in initial {
        assert!(!seen[n.index()], "node {n} appears twice in the ordering");
        seen[n.index()] = true;
    }

    let mut order = initial.to_vec();
    let initial_cost = ordering_cost(mesh, &order, config);
    if order.len() < 3 || config.iterations == 0 {
        return OptimizedOrder {
            order,
            initial_cost,
            final_cost: initial_cost,
            accepted_moves: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cost = initial_cost;
    let mut best_order = order.clone();
    let mut best_cost = initial_cost;
    let mut accepted = 0usize;
    let n = order.len();

    for iteration in 0..config.iterations {
        // Linear cooling schedule.
        let temperature =
            config.initial_temperature * (1.0 - iteration as f64 / config.iterations as f64);

        // Propose either a 2-opt segment reversal or a single relocation.
        let mut candidate = order.clone();
        if rng.gen_bool(0.7) {
            let mut i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            if i > j {
                std::mem::swap(&mut i, &mut j);
            }
            candidate[i..=j].reverse();
        } else {
            let from = rng.gen_range(0..n);
            let to = rng.gen_range(0..n);
            if from == to {
                continue;
            }
            let node = candidate.remove(from);
            candidate.insert(to, node);
        }

        let candidate_cost = ordering_cost(mesh, &candidate, config);
        let delta = candidate_cost - cost;
        let accept =
            delta < 0.0 || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
        if accept {
            order = candidate;
            cost = candidate_cost;
            accepted += 1;
            if cost < best_cost {
                best_cost = cost;
                best_order = order.clone();
            }
        }
    }

    OptimizedOrder {
        order: best_order,
        initial_cost,
        final_cost: best_cost,
        accepted_moves: accepted,
    }
}

/// Optimises a full-mesh ordering starting from `start` and wraps the result
/// in a [`CurveOrder`] usable by the one-dimensional allocators.
///
/// The returned order reports [`CurveKind::RowMajor`] purely as a label; its
/// visiting sequence is the optimised one.
pub fn optimize_full_mesh(
    mesh: Mesh2D,
    start: CurveKind,
    config: &OptimizerConfig,
) -> (CurveOrder, OptimizedOrder) {
    let initial = CurveOrder::build(start, mesh);
    let nodes: Vec<NodeId> = initial.iter().collect();
    let optimized = optimize_order(mesh, &nodes, config);
    let coords: Vec<_> = optimized.order.iter().map(|&n| mesh.coord_of(n)).collect();
    let curve = CurveOrder::from_coords(start, mesh, &coords);
    (curve, optimized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Coord;

    #[test]
    fn cost_is_zero_for_trivial_orderings() {
        let mesh = Mesh2D::new(4, 4);
        let config = OptimizerConfig::default();
        assert_eq!(ordering_cost(mesh, &[], &config), 0.0);
        assert_eq!(ordering_cost(mesh, &[NodeId(3)], &config), 0.0);
    }

    #[test]
    fn hilbert_scores_better_than_a_shuffled_order() {
        let mesh = Mesh2D::new(8, 8);
        let config = OptimizerConfig::default();
        let hilbert: Vec<NodeId> = CurveOrder::build(CurveKind::Hilbert, mesh).iter().collect();
        // Deterministic "bad" order: stride through ids to break locality.
        let shuffled: Vec<NodeId> = (0..64u32).map(|i| NodeId((i * 29) % 64)).collect();
        assert!(
            ordering_cost(mesh, &hilbert, &config) < ordering_cost(mesh, &shuffled, &config),
            "Hilbert ordering must score better than a strided shuffle"
        );
    }

    #[test]
    fn optimizer_improves_row_major_on_a_square_mesh() {
        let mesh = Mesh2D::new(8, 8);
        let config = OptimizerConfig::quick();
        let (curve, result) = optimize_full_mesh(mesh, CurveKind::RowMajor, &config);
        assert_eq!(curve.len(), 64);
        assert!(result.final_cost <= result.initial_cost);
        assert!(result.improvement() >= 0.0);
    }

    #[test]
    fn optimizer_handles_subsets_with_holes() {
        // Remove a 2x2 block of "faulted" processors and optimise the rest.
        let mesh = Mesh2D::new(6, 6);
        let faulted: Vec<NodeId> = mesh
            .submesh(Coord::new(2, 2), 2, 2)
            .into_iter()
            .map(|c| mesh.id_of(c))
            .collect();
        let alive: Vec<NodeId> = mesh.nodes().filter(|n| !faulted.contains(n)).collect();
        let config = OptimizerConfig::quick();
        let result = optimize_order(mesh, &alive, &config);
        assert_eq!(result.order.len(), 32);
        // Still a permutation of the alive set.
        let mut sorted = result.order.clone();
        sorted.sort();
        let mut expect = alive.clone();
        expect.sort();
        assert_eq!(sorted, expect);
        assert!(result.final_cost <= result.initial_cost + 1e-9);
    }

    #[test]
    fn optimizer_is_deterministic_for_a_seed() {
        let mesh = Mesh2D::new(6, 6);
        let nodes: Vec<NodeId> = mesh.nodes().collect();
        let config = OptimizerConfig {
            iterations: 500,
            ..OptimizerConfig::default()
        };
        let a = optimize_order(mesh, &nodes, &config);
        let b = optimize_order(mesh, &nodes, &config);
        assert_eq!(a.order, b.order);
        assert_eq!(a.final_cost, b.final_cost);
        assert_eq!(a.accepted_moves, b.accepted_moves);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_nodes_are_rejected() {
        let mesh = Mesh2D::new(4, 4);
        optimize_order(mesh, &[NodeId(0), NodeId(0)], &OptimizerConfig::quick());
    }

    #[test]
    fn zero_iterations_returns_the_initial_order() {
        let mesh = Mesh2D::new(4, 4);
        let nodes: Vec<NodeId> = mesh.nodes().collect();
        let config = OptimizerConfig {
            iterations: 0,
            ..OptimizerConfig::default()
        };
        let result = optimize_order(mesh, &nodes, &config);
        assert_eq!(result.order, nodes);
        assert_eq!(result.accepted_moves, 0);
        assert_eq!(result.initial_cost, result.final_cost);
    }
}
