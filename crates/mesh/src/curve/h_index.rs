//! Closed locality-preserving indexing standing in for H-indexing.
//!
//! The paper's third curve (Figure 2(c)) is the H-indexing of Niedermeier,
//! Reinhardt & Sanders, a *closed* (cyclic) indexing of the `2^k × 2^k` mesh
//! built from recursively indexed right triangles, with locality constants
//! slightly better than the Hilbert curve's.
//!
//! **Substitution note (documented in DESIGN.md):** we realise this curve
//! with the Moore construction — four order-`k-1` Hilbert sub-curves arranged
//! so the overall index is a Hamiltonian *cycle* of the mesh. The Moore curve
//! shares every property the paper's experiments exercise: it visits each
//! processor exactly once, consecutive indices (including last-to-first) are
//! mesh neighbours, and index windows map to compact regions of Hilbert-class
//! locality. The exact per-cell order differs from the triangle-based
//! H-index, but the allocation algorithms only consume the ordering through
//! rank arithmetic, so the qualitative role of the curve (a closed
//! Hilbert-like alternative) is preserved.

use crate::coord::Coord;
use crate::curve::hilbert;

/// Generates the closed curve covering the `n × n` grid where `n` is the
/// smallest power of two `>= side`.
///
/// For `n == 1` the curve is the single cell; for `n >= 2` the result is a
/// Hamiltonian cycle (the last cell is adjacent to the first).
pub fn generate(side: u16) -> Vec<Coord> {
    let n = hilbert::side_to_pow2(side);
    if n == 1 {
        return vec![Coord::new(0, 0)];
    }
    if n == 2 {
        return vec![
            Coord::new(1, 1),
            Coord::new(0, 1),
            Coord::new(0, 0),
            Coord::new(1, 0),
        ];
    }
    let h = n / 2;
    // Base Hilbert curve on the h x h quadrant, running (0,0) -> (h-1,0).
    let base = hilbert::generate(h);
    let hm1 = (h - 1) as i32;

    // Reflection across the anti-diagonal: (x, y) -> (h-1-y, h-1-x).
    let anti = |c: Coord| Coord::new((hm1 - c.y as i32) as u16, (hm1 - c.x as i32) as u16);
    // Reflection across the main diagonal: (x, y) -> (y, x).
    let main = |c: Coord| Coord::new(c.y, c.x);

    let offset = |c: Coord, dx: u16, dy: u16| Coord::new(c.x + dx, c.y + dy);

    let mut out = Vec::with_capacity((n as usize) * (n as usize));
    // Lower-left quadrant: enters at (h-1, h-1), exits at (h-1, 0).
    out.extend(base.iter().map(|&c| offset(anti(c), 0, 0)));
    // Lower-right quadrant: enters at (h, 0), exits at (h, h-1).
    out.extend(base.iter().map(|&c| offset(main(c), h, 0)));
    // Upper-right quadrant: enters at (h, h), exits at (h, 2h-1).
    out.extend(base.iter().map(|&c| offset(main(c), h, h)));
    // Upper-left quadrant: enters at (h-1, 2h-1), exits at (h-1, h),
    // which is adjacent to the lower-left entry, closing the cycle.
    out.extend(base.iter().map(|&c| offset(anti(c), 0, h)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_cell_exactly_once() {
        for side in [2u16, 4, 8, 16, 32] {
            let coords = generate(side);
            let n = side as usize;
            assert_eq!(coords.len(), n * n);
            let unique: HashSet<_> = coords.iter().collect();
            assert_eq!(unique.len(), n * n);
        }
    }

    #[test]
    fn is_a_hamiltonian_cycle() {
        for side in [2u16, 4, 8, 16, 32] {
            let coords = generate(side);
            for pair in coords.windows(2) {
                assert!(
                    pair[0].is_adjacent(pair[1]),
                    "consecutive cells must be adjacent: {} {}",
                    pair[0],
                    pair[1]
                );
            }
            let first = coords[0];
            let last = *coords.last().unwrap();
            assert!(
                first.is_adjacent(last),
                "closed curve: last {last} must neighbour first {first}"
            );
        }
    }

    #[test]
    fn order_one_cycle() {
        let coords = generate(2);
        assert_eq!(coords.len(), 4);
        assert!(coords[0].is_adjacent(coords[3]));
    }

    #[test]
    fn single_cell_mesh() {
        assert_eq!(generate(1), vec![Coord::new(0, 0)]);
    }
}
