//! Row-major ordering: the simplest page ordering considered by Lo et al.

use crate::coord::Coord;
use crate::mesh::Mesh2D;

/// Generates the row-major ordering of `mesh`: row 0 left-to-right, then row
/// 1 left-to-right, and so on.
pub fn generate(mesh: Mesh2D) -> Vec<Coord> {
    mesh.coords().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_order_of_3x2() {
        let coords = generate(Mesh2D::new(3, 2));
        let expect: Vec<Coord> = vec![
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(2, 0),
            Coord::new(0, 1),
            Coord::new(1, 1),
            Coord::new(2, 1),
        ];
        assert_eq!(coords, expect);
    }
}
