//! Truncation of power-of-two square curves to arbitrary meshes.
//!
//! The Hilbert and H-indexing curves are defined on `2^k × 2^k` grids. To use
//! them on the 16 × 22 CPlant-like machine, the paper truncates a 32 × 32
//! curve "to the appropriate size. The result is 'curves' with gaps along the
//! top edge" (Section 4, Figure 6). This module implements that truncation:
//! the enclosing curve is walked in order and only the cells that fall inside
//! the target mesh are kept.

use crate::coord::Coord;
use crate::mesh::Mesh2D;

/// Truncates a power-of-two square curve to `mesh`.
///
/// `generator` is called with the side of the smallest enclosing power-of-two
/// square (e.g. 32 for a 16 × 22 mesh) and must return a curve covering that
/// square; the cells outside `mesh` are dropped, preserving order.
pub fn truncate_to_mesh<F>(mesh: Mesh2D, generator: F) -> Vec<Coord>
where
    F: Fn(u16) -> Vec<Coord>,
{
    let side = mesh.width().max(mesh.height());
    let full = generator(side);
    let filtered: Vec<Coord> = full.into_iter().filter(|&c| mesh.contains(c)).collect();
    assert_eq!(
        filtered.len(),
        mesh.num_nodes(),
        "enclosing curve must cover the whole target mesh"
    );
    filtered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{h_index, hilbert};

    #[test]
    fn truncation_is_identity_on_power_of_two_square() {
        let mesh = Mesh2D::new(16, 16);
        let full = hilbert::generate(16);
        let truncated = truncate_to_mesh(mesh, hilbert::generate);
        assert_eq!(full, truncated);
    }

    #[test]
    fn truncation_keeps_every_mesh_cell_once() {
        let mesh = Mesh2D::paragon_16x22();
        for generator in [
            hilbert::generate as fn(u16) -> Vec<Coord>,
            h_index::generate,
        ] {
            let coords = truncate_to_mesh(mesh, generator);
            assert_eq!(coords.len(), 352);
            let unique: std::collections::HashSet<_> = coords.iter().collect();
            assert_eq!(unique.len(), 352);
            assert!(coords.iter().all(|&c| mesh.contains(c)));
        }
    }

    #[test]
    fn truncated_hilbert_gaps_are_on_the_top_part_of_16x22() {
        // The paper's Figure 6 shows the gaps appearing in the top rows of the
        // 16 x 22 mesh (the region where the 32 x 32 curve wanders outside the
        // kept columns). Verify every gap involves a processor in the top
        // section (y >= 16).
        let mesh = Mesh2D::paragon_16x22();
        let coords = truncate_to_mesh(mesh, hilbert::generate);
        let gaps: Vec<(Coord, Coord)> = coords
            .windows(2)
            .filter(|w| !w[0].is_adjacent(w[1]))
            .map(|w| (w[0], w[1]))
            .collect();
        assert!(!gaps.is_empty());
        for (a, b) in gaps {
            assert!(
                a.y >= 16 || b.y >= 16,
                "gap {a} -> {b} should involve the truncated top region"
            );
        }
    }
}
