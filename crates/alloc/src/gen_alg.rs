//! Gen-Alg: the compact-location approximation of Krumke et al. (Section 2.2).
//!
//! Gen-Alg selects `k` free processors minimising their average pairwise
//! distance, approximately: for every free processor `p`, it gathers the
//! `k − 1` free processors closest to `p`, computes the total pairwise
//! distance of the resulting set, and returns the best set found. Krumke et
//! al. prove this is a (2 − 2/k)-approximation using only the triangle
//! inequality, so it applies to arbitrary machine metrics; here we use the
//! mesh Manhattan metric.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::{Mesh2D, NodeId};

/// The Gen-Alg allocator.
#[derive(Debug, Clone, Default)]
pub struct GenAlgAllocator;

impl GenAlgAllocator {
    /// Creates a Gen-Alg allocator.
    pub fn new() -> Self {
        GenAlgAllocator
    }
}

/// Total pairwise Manhattan distance of a set of nodes, computed in
/// `O(k log k)` by exploiting the separability of the L1 metric: the sum of
/// pairwise |xi − xj| equals Σ xi·(2i − k + 1) over sorted coordinates.
pub fn total_pairwise_distance(mesh: Mesh2D, nodes: &[NodeId]) -> u64 {
    fn axis_sum(mut values: Vec<i64>) -> u64 {
        values.sort_unstable();
        let k = values.len() as i64;
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (2 * i as i64 - k + 1))
            .sum::<i64>() as u64
    }
    let xs: Vec<i64> = nodes.iter().map(|&n| mesh.coord_of(n).x as i64).collect();
    let ys: Vec<i64> = nodes.iter().map(|&n| mesh.coord_of(n).y as i64).collect();
    axis_sum(xs) + axis_sum(ys)
}

impl Allocator for GenAlgAllocator {
    fn name(&self) -> String {
        "Gen-Alg".to_string()
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        let k = req.size;
        if k == 0 || k > machine.num_free() {
            return None;
        }
        let mesh = machine.mesh();
        let free: Vec<NodeId> = machine.free_nodes().collect();
        if k == 1 {
            // Any free processor is optimal; pick the lowest id for
            // determinism.
            return Some(Allocation::new(req.job_id, vec![free[0]]));
        }

        let mut best: Option<(u64, Vec<NodeId>)> = None;
        for &center in &free {
            // The k-1 free processors closest to `center` (plus `center`),
            // ties broken by node id for determinism.
            let mut by_distance: Vec<(u32, NodeId)> = free
                .iter()
                .filter(|&&n| n != center)
                .map(|&n| (mesh.distance(center, n), n))
                .collect();
            by_distance.sort_unstable_by_key(|&(d, n)| (d, n.0));
            let mut candidate: Vec<NodeId> = Vec::with_capacity(k);
            candidate.push(center);
            candidate.extend(by_distance.iter().take(k - 1).map(|&(_, n)| n));
            let cost = total_pairwise_distance(mesh, &candidate);
            let better = match &best {
                None => true,
                Some((best_cost, _)) => cost < *best_cost,
            };
            if better {
                best = Some((cost, candidate));
            }
        }
        // Rank order: centre first, then outward by distance — the natural
        // order Gen-Alg discovers the processors in.
        best.map(|(_, nodes)| Allocation::new(req.job_id, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    #[test]
    fn total_pairwise_distance_matches_naive() {
        let mesh = Mesh2D::new(8, 8);
        let nodes: Vec<NodeId> = [(0u16, 0u16), (3, 1), (7, 7), (2, 5), (4, 4)]
            .iter()
            .map(|&(x, y)| mesh.id_of(Coord::new(x, y)))
            .collect();
        let mut naive = 0u64;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                naive += mesh.distance(a, b) as u64;
            }
        }
        assert_eq!(total_pairwise_distance(mesh, &nodes), naive);
    }

    #[test]
    fn gen_alg_picks_a_compact_cluster_on_an_empty_mesh() {
        let mesh = Mesh2D::new(16, 16);
        let machine = MachineState::new(mesh);
        let mut alg = GenAlgAllocator::new();
        let alloc = alg.allocate(&AllocRequest::new(1, 9), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 9);
        // A 9-processor set can achieve the 3x3 square's average pairwise
        // distance of 2.0; Gen-Alg's approximation must come close.
        let avg = mesh.avg_pairwise_distance(&alloc.nodes);
        assert!(avg <= 2.5, "Gen-Alg produced a dispersed cluster: {avg}");
    }

    #[test]
    fn gen_alg_avoids_busy_processors() {
        let mesh = Mesh2D::new(8, 8);
        let mut machine = MachineState::new(mesh);
        let busy: Vec<NodeId> = (0..32u32).map(NodeId).collect();
        machine.occupy(&busy);
        let mut alg = GenAlgAllocator::new();
        let alloc = alg.allocate(&AllocRequest::new(1, 8), &machine).unwrap();
        assert!(alloc.nodes.iter().all(|&n| machine.is_free(n)));
        assert_eq!(alloc.nodes.len(), 8);
    }

    #[test]
    fn single_processor_request() {
        let mesh = Mesh2D::new(4, 4);
        let machine = MachineState::new(mesh);
        let mut alg = GenAlgAllocator::new();
        let alloc = alg.allocate(&AllocRequest::new(1, 1), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 1);
    }

    #[test]
    fn approximation_bound_against_optimum_on_small_instances() {
        // Exhaustive optimum over all k-subsets of a small free set; Gen-Alg
        // must be within the (2 - 2/k) bound of Krumke et al.
        let mesh = Mesh2D::new(4, 4);
        let mut machine = MachineState::new(mesh);
        machine.occupy(&[NodeId(0), NodeId(5), NodeId(10), NodeId(15)]);
        let free: Vec<NodeId> = machine.free_nodes().collect();
        let k = 4usize;

        fn best_subset(mesh: Mesh2D, free: &[NodeId], k: usize) -> u64 {
            fn rec(
                mesh: Mesh2D,
                free: &[NodeId],
                k: usize,
                start: usize,
                chosen: &mut Vec<NodeId>,
                best: &mut u64,
            ) {
                if chosen.len() == k {
                    *best = (*best).min(total_pairwise_distance(mesh, chosen));
                    return;
                }
                if free.len() - start < k - chosen.len() {
                    return;
                }
                for i in start..free.len() {
                    chosen.push(free[i]);
                    rec(mesh, free, k, i + 1, chosen, best);
                    chosen.pop();
                }
            }
            let mut best = u64::MAX;
            rec(mesh, free, k, 0, &mut Vec::new(), &mut best);
            best
        }

        let optimum = best_subset(mesh, &free, k);
        let mut alg = GenAlgAllocator::new();
        let alloc = alg.allocate(&AllocRequest::new(1, k), &machine).unwrap();
        let achieved = total_pairwise_distance(mesh, &alloc.nodes);
        let bound = (2.0 - 2.0 / k as f64) * optimum as f64;
        assert!(
            achieved as f64 <= bound + 1e-9,
            "Gen-Alg {achieved} exceeds (2-2/k) * optimum = {bound}"
        );
    }
}
