//! One-dimensional-reduction allocators (Section 2.1 of the paper).
//!
//! The machine's processors are ordered along a curve; the free processors
//! then form maximal intervals of consecutive ranks ("bins"), and a
//! bin-packing heuristic decides which interval serves an incoming request:
//!
//! * **Sorted free list** — the original Paging behaviour with page size one:
//!   the job simply receives the first `size` free processors in curve order,
//!   regardless of interval structure.
//! * **First Fit** — the first interval large enough.
//! * **Best Fit** — the interval that will have the fewest processors left.
//! * **Sum of Squares** — the interval whose use minimises the sum of squared
//!   remaining interval lengths (the Csirik et al. heuristic adapted by Leung
//!   et al.; the paper mentions it performed less well and omits it from the
//!   plots — we keep it for ablation).
//!
//! When no interval is large enough, all strategies fall back to the rule of
//! Leung et al.: allocate the set of free processors spanning the *smallest
//! range of ranks* along the curve.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// How an interval (bin) of free curve ranks is chosen for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Sorted free list: first `size` free processors in curve order.
    FreeList,
    /// First interval that fits.
    FirstFit,
    /// Interval that fits with the fewest processors remaining.
    BestFit,
    /// Interval that minimises the sum of squared remaining interval lengths.
    SumOfSquares,
}

impl SelectionStrategy {
    /// Short name used in reports ("free list", "FF", "BF", "SS").
    pub fn short_name(&self) -> &'static str {
        match self {
            SelectionStrategy::FreeList => "free list",
            SelectionStrategy::FirstFit => "FF",
            SelectionStrategy::BestFit => "BF",
            SelectionStrategy::SumOfSquares => "SS",
        }
    }
}

/// A maximal run of free processors with consecutive curve ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeInterval {
    /// Rank of the first free processor in the run.
    pub start: usize,
    /// Number of free processors in the run.
    pub len: usize,
}

/// Computes the maximal free intervals of `machine` along `curve`, in
/// increasing rank order.
pub fn free_intervals(curve: &CurveOrder, machine: &MachineState) -> Vec<FreeInterval> {
    let mut intervals = Vec::new();
    let mut run_start: Option<usize> = None;
    for rank in 0..curve.len() {
        let free = machine.is_free(curve.node_at(rank));
        match (free, run_start) {
            (true, None) => run_start = Some(rank),
            (false, Some(start)) => {
                intervals.push(FreeInterval {
                    start,
                    len: rank - start,
                });
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        intervals.push(FreeInterval {
            start,
            len: curve.len() - start,
        });
    }
    intervals
}

/// A one-dimensional-reduction allocator: a curve plus a selection strategy.
#[derive(Debug, Clone)]
pub struct CurveAllocator {
    curve: CurveOrder,
    strategy: SelectionStrategy,
}

impl CurveAllocator {
    /// Builds the allocator for `kind` over `mesh` using `strategy`.
    pub fn new(kind: CurveKind, mesh: Mesh2D, strategy: SelectionStrategy) -> Self {
        CurveAllocator {
            curve: CurveOrder::build(kind, mesh),
            strategy,
        }
    }

    /// Builds the allocator over an explicit curve.
    pub fn with_curve(curve: CurveOrder, strategy: SelectionStrategy) -> Self {
        CurveAllocator { curve, strategy }
    }

    /// The curve this allocator orders processors along.
    pub fn curve(&self) -> &CurveOrder {
        &self.curve
    }

    /// The selection strategy in use.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// First `size` free processors in curve order (sorted-free-list rule).
    fn free_list_take(&self, machine: &MachineState, size: usize) -> Vec<NodeId> {
        (0..self.curve.len())
            .map(|rank| self.curve.node_at(rank))
            .filter(|&n| machine.is_free(n))
            .take(size)
            .collect()
    }

    /// Takes the first `size` processors of an interval.
    fn take_from_interval(&self, interval: FreeInterval, size: usize) -> Vec<NodeId> {
        (interval.start..interval.start + size)
            .map(|rank| self.curve.node_at(rank))
            .collect()
    }

    /// Minimum-span fallback: the window of `size` free processors whose curve
    /// ranks span the smallest range.
    fn min_span_take(&self, machine: &MachineState, size: usize) -> Vec<NodeId> {
        let free_ranks: Vec<usize> = (0..self.curve.len())
            .filter(|&rank| machine.is_free(self.curve.node_at(rank)))
            .collect();
        debug_assert!(free_ranks.len() >= size);
        let mut best_start = 0usize;
        let mut best_span = usize::MAX;
        for i in 0..=free_ranks.len() - size {
            let span = free_ranks[i + size - 1] - free_ranks[i];
            if span < best_span {
                best_span = span;
                best_start = i;
            }
        }
        free_ranks[best_start..best_start + size]
            .iter()
            .map(|&rank| self.curve.node_at(rank))
            .collect()
    }

    /// Selects an interval according to the strategy, or `None` if no interval
    /// fits (triggering the minimum-span fallback).
    fn select_interval(
        &self,
        intervals: &[FreeInterval],
        size: usize,
    ) -> Option<FreeInterval> {
        let fitting = intervals.iter().copied().filter(|iv| iv.len >= size);
        match self.strategy {
            SelectionStrategy::FreeList => None, // handled separately
            SelectionStrategy::FirstFit => fitting.min_by_key(|iv| iv.start),
            SelectionStrategy::BestFit => {
                // Fewest processors remaining; ties broken towards the lowest
                // rank so results are deterministic.
                fitting.min_by_key(|iv| (iv.len - size, iv.start))
            }
            SelectionStrategy::SumOfSquares => {
                let total_sq: i64 = intervals.iter().map(|iv| (iv.len * iv.len) as i64).sum();
                fitting.min_by_key(|iv| {
                    let remaining = iv.len - size;
                    let delta =
                        (remaining * remaining) as i64 - (iv.len * iv.len) as i64;
                    (total_sq + delta, iv.start as i64)
                })
            }
        }
    }
}

impl Allocator for CurveAllocator {
    fn name(&self) -> String {
        format!("{} w/{}", self.curve.kind(), self.strategy.short_name())
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let nodes = match self.strategy {
            SelectionStrategy::FreeList => self.free_list_take(machine, req.size),
            _ => {
                let intervals = free_intervals(&self.curve, machine);
                match self.select_interval(&intervals, req.size) {
                    Some(interval) => self.take_from_interval(interval, req.size),
                    None => self.min_span_take(machine, req.size),
                }
            }
        };
        debug_assert_eq!(nodes.len(), req.size);
        Some(Allocation::new(req.job_id, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    fn machine_with_busy(mesh: Mesh2D, busy: &[NodeId]) -> MachineState {
        let mut m = MachineState::new(mesh);
        m.occupy(busy);
        m
    }

    #[test]
    fn free_intervals_on_partially_busy_machine() {
        let mesh = Mesh2D::new(4, 1);
        let curve = CurveOrder::build(CurveKind::RowMajor, mesh);
        let machine = machine_with_busy(mesh, &[mesh.id_of(Coord::new(1, 0))]);
        let intervals = free_intervals(&curve, &machine);
        assert_eq!(
            intervals,
            vec![
                FreeInterval { start: 0, len: 1 },
                FreeInterval { start: 2, len: 2 }
            ]
        );
    }

    #[test]
    fn best_fit_prefers_tightest_interval() {
        // Row-major on an 8x1 mesh; make intervals of length 2 and 4.
        let mesh = Mesh2D::new(8, 1);
        let busy = vec![mesh.id_of(Coord::new(2, 0)), mesh.id_of(Coord::new(7, 0))];
        let machine = machine_with_busy(mesh, &busy);
        // Free: ranks 0-1 (len 2), 3-6 (len 4).
        let mut bf = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::BestFit);
        let alloc = bf.allocate(&AllocRequest::new(1, 2), &machine).unwrap();
        assert_eq!(alloc.nodes, vec![NodeId(0), NodeId(1)]);

        let mut ff = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::FirstFit);
        let alloc_ff = ff.allocate(&AllocRequest::new(1, 2), &machine).unwrap();
        assert_eq!(alloc_ff.nodes, vec![NodeId(0), NodeId(1)]);

        // For a request of 3, First Fit and Best Fit must both use the second
        // interval (the only one that fits).
        let alloc3 = bf.allocate(&AllocRequest::new(2, 3), &machine).unwrap();
        assert_eq!(alloc3.nodes, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn best_fit_differs_from_first_fit_when_later_interval_is_tighter() {
        let mesh = Mesh2D::new(8, 1);
        // Busy: node 3 -> free intervals: 0-2 (len 3), 4-7 (len 4).
        let machine = machine_with_busy(mesh, &[NodeId(3)]);
        // Request 4: only the second interval fits; request 2: FF takes the
        // first interval, BF prefers... the first (len 3 leaves 1) vs second
        // (len 4 leaves 2) -> BF takes first. Make the later interval tighter:
        let machine2 = machine_with_busy(
            mesh,
            &[NodeId(2), NodeId(6)], // free: 0-1 (2), 3-5 (3), 7 (1)
        );
        let mut ff = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::FirstFit);
        let mut bf = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::BestFit);
        // Request 1: FF takes rank 0; BF takes the singleton interval at rank 7.
        let a_ff = ff.allocate(&AllocRequest::new(1, 1), &machine2).unwrap();
        let a_bf = bf.allocate(&AllocRequest::new(1, 1), &machine2).unwrap();
        assert_eq!(a_ff.nodes, vec![NodeId(0)]);
        assert_eq!(a_bf.nodes, vec![NodeId(7)]);
        drop(machine);
    }

    #[test]
    fn free_list_spans_busy_gaps() {
        let mesh = Mesh2D::new(4, 1);
        let machine = machine_with_busy(mesh, &[NodeId(1)]);
        let mut fl = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::FreeList);
        let alloc = fl.allocate(&AllocRequest::new(1, 2), &machine).unwrap();
        assert_eq!(alloc.nodes, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn min_span_fallback_when_fragmented() {
        let mesh = Mesh2D::new(8, 1);
        // Busy nodes 1, 4: free intervals 0 (1), 2-3 (2), 5-7 (3); request 4
        // cannot fit in any interval. The tightest window of 4 free
        // processors is ranks {2,3,5,6} (span 4) rather than {0,2,3,5} (span 5).
        let machine = machine_with_busy(mesh, &[NodeId(1), NodeId(4)]);
        let mut bf = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::BestFit);
        let alloc = bf.allocate(&AllocRequest::new(1, 4), &machine).unwrap();
        assert_eq!(
            alloc.nodes,
            vec![NodeId(2), NodeId(3), NodeId(5), NodeId(6)]
        );
    }

    #[test]
    fn oversized_and_zero_requests_are_rejected() {
        let mesh = Mesh2D::new(2, 2);
        let machine = MachineState::new(mesh);
        let mut a = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
        assert!(a.allocate(&AllocRequest::new(1, 5), &machine).is_none());
        assert!(a.allocate(&AllocRequest::new(1, 0), &machine).is_none());
        assert!(a.allocate(&AllocRequest::new(1, 4), &machine).is_some());
    }

    #[test]
    fn hilbert_best_fit_on_empty_square_mesh_is_contiguous() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut a = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
        for size in [4usize, 16, 30, 64, 128] {
            let alloc = a
                .allocate(&AllocRequest::new(size as u64, size), &machine)
                .unwrap();
            assert_eq!(mesh.components(&alloc.nodes), 1, "size {size}");
        }
    }

    #[test]
    fn sum_of_squares_allocates_requested_count() {
        let mesh = Mesh2D::new(8, 8);
        let machine = machine_with_busy(mesh, &[NodeId(10), NodeId(30), NodeId(31)]);
        let mut a =
            CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::SumOfSquares);
        let alloc = a.allocate(&AllocRequest::new(1, 12), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 12);
        assert!(alloc.nodes.iter().all(|&n| machine.is_free(n)));
    }
}
