//! One-dimensional-reduction allocators (Section 2.1 of the paper).
//!
//! The machine's processors are ordered along a curve; the free processors
//! then form maximal intervals of consecutive ranks ("bins"), and a
//! bin-packing heuristic decides which interval serves an incoming request:
//!
//! * **Sorted free list** — the original Paging behaviour with page size one:
//!   the job simply receives the first `size` free processors in curve order,
//!   regardless of interval structure.
//! * **First Fit** — the first interval large enough.
//! * **Best Fit** — the interval that will have the fewest processors left.
//! * **Sum of Squares** — the interval whose use minimises the sum of squared
//!   remaining interval lengths (the Csirik et al. heuristic adapted by Leung
//!   et al.; the paper mentions it performed less well and omits it from the
//!   plots — we keep it for ablation).
//!
//! When no interval is large enough, all strategies fall back to the rule of
//! Leung et al.: allocate the set of free processors spanning the *smallest
//! range of ranks* along the curve.
//!
//! # Incremental operation
//!
//! By default the allocator consults a [`FreeIntervalIndex`] — a BTree of
//! maximal free runs updated in O(log n) as processors are occupied and
//! released — instead of rescanning the occupancy bitmap on every request.
//! The index resynchronises automatically (via
//! [`MachineState::generation`]) whenever the machine changed in a way the
//! allocator did not observe, so the indexed path is decision-identical to
//! the rescan path in all circumstances; [`CurveAllocator::with_rescan`]
//! keeps the original O(n)-per-call behaviour for comparison benchmarks and
//! equivalence tests.

use crate::allocator::Allocator;
use crate::interval_index::FreeIntervalIndex;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// How an interval (bin) of free curve ranks is chosen for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Sorted free list: first `size` free processors in curve order.
    FreeList,
    /// First interval that fits.
    FirstFit,
    /// Interval that fits with the fewest processors remaining.
    BestFit,
    /// Interval that minimises the sum of squared remaining interval lengths.
    SumOfSquares,
}

impl SelectionStrategy {
    /// Short name used in reports ("free list", "FF", "BF", "SS").
    pub fn short_name(&self) -> &'static str {
        match self {
            SelectionStrategy::FreeList => "free list",
            SelectionStrategy::FirstFit => "FF",
            SelectionStrategy::BestFit => "BF",
            SelectionStrategy::SumOfSquares => "SS",
        }
    }
}

/// A maximal run of free processors with consecutive curve ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeInterval {
    /// Rank of the first free processor in the run.
    pub start: usize,
    /// Number of free processors in the run.
    pub len: usize,
}

/// Computes the maximal free intervals of `machine` along `curve`, in
/// increasing rank order.
pub fn free_intervals(curve: &CurveOrder, machine: &MachineState) -> Vec<FreeInterval> {
    let mut intervals = Vec::new();
    let mut run_start: Option<usize> = None;
    for rank in 0..curve.len() {
        let free = machine.is_free(curve.node_at(rank));
        match (free, run_start) {
            (true, None) => run_start = Some(rank),
            (false, Some(start)) => {
                intervals.push(FreeInterval {
                    start,
                    len: rank - start,
                });
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        intervals.push(FreeInterval {
            start,
            len: curve.len() - start,
        });
    }
    intervals
}

/// The incremental index state of an indexed [`CurveAllocator`].
#[derive(Debug, Clone)]
struct IndexedState {
    index: FreeIntervalIndex,
    /// The `(state_id, generation)` pair the index is synchronised with —
    /// both components must match for the cached intervals to be trusted,
    /// since generation counters of distinct machines (or diverged clones)
    /// can coincide. `None` when the index is known stale.
    synced: Option<(u64, u64)>,
    /// A grant handed out at the `synced` point whose commit (the
    /// caller's `machine.occupy`) has not been observed yet. Rank runs in
    /// ascending order plus the total size.
    pending: Option<PendingGrant>,
}

/// A not-yet-committed grant: the index is NOT updated at grant time,
/// because the caller may discard the grant (e.g. a hybrid allocator
/// probing several inner allocators, or a backfill feasibility check).
/// The grant is applied at the next call, once its commit is *proven*:
///
/// * the machine advanced by exactly the expected number of mutations,
/// * every granted node is busy in the machine, and
/// * the free counts agree exactly.
///
/// Each mutation occupies an all-free set or frees an all-busy set, so
/// "granted nodes ⊆ busy" plus the exact count pins the committed set to
/// be exactly this grant; anything else rebuilds the index from scratch.
#[derive(Debug, Clone)]
struct PendingGrant {
    /// Maximal consecutive rank runs of the grant, ascending.
    runs: PendingRuns,
    /// Total ranks granted.
    size: usize,
}

/// Rank runs of a pending grant. Interval-selected grants — the hot path —
/// are a single contiguous run, stored inline so recording a grant does not
/// allocate; only the scattered fallback paths (sorted free list, minimum
/// span) heap-allocate.
#[derive(Debug, Clone)]
enum PendingRuns {
    Single(usize, usize),
    Many(Vec<(usize, usize)>),
}

impl PendingRuns {
    /// Applies `f` to every `(start, len)` run, stopping at the first
    /// `false`.
    fn all(&self, mut f: impl FnMut(usize, usize) -> bool) -> bool {
        match self {
            PendingRuns::Single(start, len) => f(*start, *len),
            PendingRuns::Many(runs) => runs.iter().all(|&(start, len)| f(start, len)),
        }
    }
}

impl IndexedState {
    fn stale() -> Self {
        IndexedState {
            index: FreeIntervalIndex::default(),
            synced: None,
            pending: None,
        }
    }

    fn rebuild(&mut self, curve: &CurveOrder, machine: &MachineState) {
        self.index = FreeIntervalIndex::from_machine(curve, machine);
        self.synced = Some((machine.state_id(), machine.generation()));
        self.pending = None;
    }

    /// Brings the index up to date with `machine`: a no-op when nothing
    /// changed (any pending grant was discarded), a validated incremental
    /// update when exactly the pending grant was committed, and a full
    /// rebuild otherwise.
    fn sync(&mut self, curve: &CurveOrder, machine: &MachineState) {
        let identity = machine.state_id();
        let generation = machine.generation();
        match self.synced {
            // Unchanged machine: a pending grant, if any, was discarded —
            // the index is still exact.
            Some((id, synced)) if id == identity && generation == synced => {
                self.pending = None;
            }
            // Exactly one mutation since the grant: prove it was the
            // grant, then apply it incrementally.
            Some((id, synced)) if id == identity && generation == synced + 1 => {
                match self.pending.take() {
                    Some(grant) if self.commit_pending(curve, machine, &grant, 0) => {
                        self.synced = Some((identity, generation));
                    }
                    _ => self.rebuild(curve, machine),
                }
            }
            _ => self.rebuild(curve, machine),
        }
    }

    /// Proves the pending `grant` is what the machine committed and
    /// applies it to the index. `extra_freed` accounts for ranks released
    /// by the machine but not yet applied to the index (the release-hook
    /// path). Returns `false` without guarantees about partial index
    /// state — the caller must rebuild.
    fn commit_pending(
        &mut self,
        curve: &CurveOrder,
        machine: &MachineState,
        grant: &PendingGrant,
        extra_freed: usize,
    ) -> bool {
        // Exact-count check: the committed set has the grant's size.
        if machine.num_free() + grant.size != self.index.num_free() + extra_freed {
            return false;
        }
        // Subset check: every granted node is busy. Together with the
        // count this pins the committed set to the grant exactly.
        let all_busy = grant.runs.all(|start, len| {
            (start..start + len).all(|rank| !machine.is_free(curve.node_at(rank)))
        });
        all_busy
            && grant
                .runs
                .all(|start, len| self.index.occupy_run(start, len))
    }
}

/// A one-dimensional-reduction allocator: a curve plus a selection strategy.
#[derive(Debug, Clone)]
pub struct CurveAllocator {
    curve: CurveOrder,
    strategy: SelectionStrategy,
    /// `Some` = incremental free-interval index; `None` = rescan per call.
    indexed: Option<IndexedState>,
}

impl CurveAllocator {
    /// Builds the allocator for `kind` over `mesh` using `strategy`, with
    /// the incremental free-interval index enabled.
    pub fn new(kind: CurveKind, mesh: Mesh2D, strategy: SelectionStrategy) -> Self {
        Self::with_curve(CurveOrder::build(kind, mesh), strategy)
    }

    /// Builds the allocator over an explicit curve (indexed).
    pub fn with_curve(curve: CurveOrder, strategy: SelectionStrategy) -> Self {
        CurveAllocator {
            curve,
            strategy,
            indexed: Some(IndexedState::stale()),
        }
    }

    /// Builds the allocator with the original rescan-per-call behaviour:
    /// the free-interval list is recomputed from the occupancy bitmap on
    /// every request. Used by the index-equivalence tests and the
    /// index-vs-rescan benchmarks.
    pub fn with_rescan(kind: CurveKind, mesh: Mesh2D, strategy: SelectionStrategy) -> Self {
        CurveAllocator {
            curve: CurveOrder::build(kind, mesh),
            strategy,
            indexed: None,
        }
    }

    /// True when the incremental index is enabled.
    pub fn is_indexed(&self) -> bool {
        self.indexed.is_some()
    }

    /// The curve this allocator orders processors along.
    pub fn curve(&self) -> &CurveOrder {
        &self.curve
    }

    /// The selection strategy in use.
    pub fn strategy(&self) -> SelectionStrategy {
        self.strategy
    }

    /// First `size` free processors in curve order (sorted-free-list rule).
    fn free_list_take(&self, machine: &MachineState, size: usize) -> Vec<NodeId> {
        (0..self.curve.len())
            .map(|rank| self.curve.node_at(rank))
            .filter(|&n| machine.is_free(n))
            .take(size)
            .collect()
    }

    /// Takes the first `size` processors of an interval.
    fn take_from_interval(&self, interval: FreeInterval, size: usize) -> Vec<NodeId> {
        (interval.start..interval.start + size)
            .map(|rank| self.curve.node_at(rank))
            .collect()
    }

    /// Minimum-span fallback: the window of `size` free processors whose curve
    /// ranks span the smallest range.
    fn min_span_take(&self, machine: &MachineState, size: usize) -> Vec<NodeId> {
        let free_ranks: Vec<usize> = (0..self.curve.len())
            .filter(|&rank| machine.is_free(self.curve.node_at(rank)))
            .collect();
        debug_assert!(free_ranks.len() >= size);
        let mut best_start = 0usize;
        let mut best_span = usize::MAX;
        for i in 0..=free_ranks.len() - size {
            let span = free_ranks[i + size - 1] - free_ranks[i];
            if span < best_span {
                best_span = span;
                best_start = i;
            }
        }
        free_ranks[best_start..best_start + size]
            .iter()
            .map(|&rank| self.curve.node_at(rank))
            .collect()
    }

    /// The rescan decision path: recompute the interval list from the
    /// occupancy bitmap, then select.
    fn allocate_rescan(&self, machine: &MachineState, size: usize) -> Vec<NodeId> {
        match self.strategy {
            SelectionStrategy::FreeList => self.free_list_take(machine, size),
            _ => {
                let intervals = free_intervals(&self.curve, machine);
                match self.select_interval(&intervals, size) {
                    Some(interval) => self.take_from_interval(interval, size),
                    None => self.min_span_take(machine, size),
                }
            }
        }
    }

    /// The indexed decision path: synchronise the incremental index with
    /// the machine (a no-op unless the machine changed behind our back),
    /// query it, and optimistically apply the grant.
    fn allocate_indexed(&mut self, machine: &MachineState, size: usize) -> Vec<NodeId> {
        let state = self
            .indexed
            .as_mut()
            .expect("allocate_indexed requires the index");
        state.sync(&self.curve, machine);
        // The grant is recorded as *pending*, not applied: callers may
        // discard it (hybrid probing, backfill checks). The next sync()
        // proves whether it was committed and applies it then.
        let interval = match self.strategy {
            SelectionStrategy::FreeList => None,
            _ => state.index.select(self.strategy, size),
        };
        let (nodes, runs) = match interval {
            // Fast path: the grant is one contiguous rank run.
            Some(interval) => {
                let nodes = (interval.start..interval.start + size)
                    .map(|rank| self.curve.node_at(rank))
                    .collect();
                (nodes, PendingRuns::Single(interval.start, size))
            }
            // Fallback paths produce scattered ranks; group them into
            // maximal runs.
            None => {
                let ranks = match self.strategy {
                    SelectionStrategy::FreeList => state.index.free_list_ranks(size),
                    _ => state.index.min_span_ranks(size),
                };
                let mut runs: Vec<(usize, usize)> = Vec::new();
                for &rank in &ranks {
                    match runs.last_mut() {
                        Some((start, len)) if *start + *len == rank => *len += 1,
                        _ => runs.push((rank, 1)),
                    }
                }
                let nodes = ranks.iter().map(|&rank| self.curve.node_at(rank)).collect();
                (nodes, PendingRuns::Many(runs))
            }
        };
        state.pending = Some(PendingGrant { runs, size });
        nodes
    }

    /// Selects an interval according to the strategy, or `None` if no interval
    /// fits (triggering the minimum-span fallback).
    fn select_interval(&self, intervals: &[FreeInterval], size: usize) -> Option<FreeInterval> {
        let fitting = intervals.iter().copied().filter(|iv| iv.len >= size);
        match self.strategy {
            SelectionStrategy::FreeList => None, // handled separately
            SelectionStrategy::FirstFit => fitting.min_by_key(|iv| iv.start),
            SelectionStrategy::BestFit => {
                // Fewest processors remaining; ties broken towards the lowest
                // rank so results are deterministic.
                fitting.min_by_key(|iv| (iv.len - size, iv.start))
            }
            SelectionStrategy::SumOfSquares => {
                let total_sq: i64 = intervals.iter().map(|iv| (iv.len * iv.len) as i64).sum();
                fitting.min_by_key(|iv| {
                    let remaining = iv.len - size;
                    let delta = (remaining * remaining) as i64 - (iv.len * iv.len) as i64;
                    (total_sq + delta, iv.start as i64)
                })
            }
        }
    }
}

impl Allocator for CurveAllocator {
    fn name(&self) -> String {
        format!("{} w/{}", self.curve.kind(), self.strategy.short_name())
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let nodes = if self.indexed.is_some() {
            self.allocate_indexed(machine, req.size)
        } else {
            self.allocate_rescan(machine, req.size)
        };
        debug_assert_eq!(nodes.len(), req.size);
        Some(Allocation::new(req.job_id, nodes))
    }

    fn release(&mut self, allocation: &Allocation, machine: &MachineState) {
        let Some(state) = &mut self.indexed else {
            return;
        };
        // The hook runs right after `machine.release(...)`. Expected
        // generation distance from the synced point: 1 (just the release)
        // or 2 (an unobserved grant commit plus the release). Resolve any
        // pending grant first — released nodes are disjoint from a still-
        // held grant, so the commit proof remains valid — then apply the
        // release. Any surprise marks the index stale for the next
        // allocate to rebuild.
        let identity = machine.state_id();
        let generation = machine.generation();
        let in_step = match (state.synced, state.pending.take()) {
            (Some((id, synced)), None) => id == identity && generation == synced + 1,
            (Some((id, synced)), Some(grant)) => {
                id == identity
                    && generation == synced + 2
                    && state.commit_pending(&self.curve, machine, &grant, allocation.nodes.len())
            }
            (None, _) => false,
        };
        if !in_step {
            state.synced = None;
            return;
        }
        // Curve allocations list nodes in ascending rank order, so the
        // ranks group into maximal runs in one pass with no intermediate
        // allocation.
        let mut ok = true;
        let mut ranks = allocation.nodes.iter().map(|&n| self.curve.rank_of(n));
        if let Some(first) = ranks.next() {
            let mut run_start = first;
            let mut prev = first;
            for rank in ranks {
                if rank == prev + 1 {
                    prev = rank;
                } else if rank > prev {
                    ok &= state.index.release_run(run_start, prev - run_start + 1);
                    run_start = rank;
                    prev = rank;
                } else {
                    ok = false;
                    break;
                }
            }
            ok = ok && state.index.release_run(run_start, prev - run_start + 1);
        }
        state.synced = ok.then_some((identity, generation));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    fn machine_with_busy(mesh: Mesh2D, busy: &[NodeId]) -> MachineState {
        let mut m = MachineState::new(mesh);
        m.occupy(busy);
        m
    }

    #[test]
    fn free_intervals_on_partially_busy_machine() {
        let mesh = Mesh2D::new(4, 1);
        let curve = CurveOrder::build(CurveKind::RowMajor, mesh);
        let machine = machine_with_busy(mesh, &[mesh.id_of(Coord::new(1, 0))]);
        let intervals = free_intervals(&curve, &machine);
        assert_eq!(
            intervals,
            vec![
                FreeInterval { start: 0, len: 1 },
                FreeInterval { start: 2, len: 2 }
            ]
        );
    }

    #[test]
    fn best_fit_prefers_tightest_interval() {
        // Row-major on an 8x1 mesh; make intervals of length 2 and 4.
        let mesh = Mesh2D::new(8, 1);
        let busy = vec![mesh.id_of(Coord::new(2, 0)), mesh.id_of(Coord::new(7, 0))];
        let machine = machine_with_busy(mesh, &busy);
        // Free: ranks 0-1 (len 2), 3-6 (len 4).
        let mut bf = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::BestFit);
        let alloc = bf.allocate(&AllocRequest::new(1, 2), &machine).unwrap();
        assert_eq!(alloc.nodes, vec![NodeId(0), NodeId(1)]);

        let mut ff = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::FirstFit);
        let alloc_ff = ff.allocate(&AllocRequest::new(1, 2), &machine).unwrap();
        assert_eq!(alloc_ff.nodes, vec![NodeId(0), NodeId(1)]);

        // For a request of 3, First Fit and Best Fit must both use the second
        // interval (the only one that fits).
        let alloc3 = bf.allocate(&AllocRequest::new(2, 3), &machine).unwrap();
        assert_eq!(alloc3.nodes, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn best_fit_differs_from_first_fit_when_later_interval_is_tighter() {
        let mesh = Mesh2D::new(8, 1);
        // Busy: node 3 -> free intervals: 0-2 (len 3), 4-7 (len 4).
        let machine = machine_with_busy(mesh, &[NodeId(3)]);
        // Request 4: only the second interval fits; request 2: FF takes the
        // first interval, BF prefers... the first (len 3 leaves 1) vs second
        // (len 4 leaves 2) -> BF takes first. Make the later interval tighter:
        let machine2 = machine_with_busy(
            mesh,
            &[NodeId(2), NodeId(6)], // free: 0-1 (2), 3-5 (3), 7 (1)
        );
        let mut ff = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::FirstFit);
        let mut bf = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::BestFit);
        // Request 1: FF takes rank 0; BF takes the singleton interval at rank 7.
        let a_ff = ff.allocate(&AllocRequest::new(1, 1), &machine2).unwrap();
        let a_bf = bf.allocate(&AllocRequest::new(1, 1), &machine2).unwrap();
        assert_eq!(a_ff.nodes, vec![NodeId(0)]);
        assert_eq!(a_bf.nodes, vec![NodeId(7)]);
        drop(machine);
    }

    #[test]
    fn free_list_spans_busy_gaps() {
        let mesh = Mesh2D::new(4, 1);
        let machine = machine_with_busy(mesh, &[NodeId(1)]);
        let mut fl = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::FreeList);
        let alloc = fl.allocate(&AllocRequest::new(1, 2), &machine).unwrap();
        assert_eq!(alloc.nodes, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn min_span_fallback_when_fragmented() {
        let mesh = Mesh2D::new(8, 1);
        // Busy nodes 1, 4: free intervals 0 (1), 2-3 (2), 5-7 (3); request 4
        // cannot fit in any interval. The tightest window of 4 free
        // processors is ranks {2,3,5,6} (span 4) rather than {0,2,3,5} (span 5).
        let machine = machine_with_busy(mesh, &[NodeId(1), NodeId(4)]);
        let mut bf = CurveAllocator::new(CurveKind::RowMajor, mesh, SelectionStrategy::BestFit);
        let alloc = bf.allocate(&AllocRequest::new(1, 4), &machine).unwrap();
        assert_eq!(
            alloc.nodes,
            vec![NodeId(2), NodeId(3), NodeId(5), NodeId(6)]
        );
    }

    #[test]
    fn oversized_and_zero_requests_are_rejected() {
        let mesh = Mesh2D::new(2, 2);
        let machine = MachineState::new(mesh);
        let mut a = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
        assert!(a.allocate(&AllocRequest::new(1, 5), &machine).is_none());
        assert!(a.allocate(&AllocRequest::new(1, 0), &machine).is_none());
        assert!(a.allocate(&AllocRequest::new(1, 4), &machine).is_some());
    }

    #[test]
    fn hilbert_best_fit_on_empty_square_mesh_is_contiguous() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut a = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
        for size in [4usize, 16, 30, 64, 128] {
            let alloc = a
                .allocate(&AllocRequest::new(size as u64, size), &machine)
                .unwrap();
            assert_eq!(mesh.components(&alloc.nodes), 1, "size {size}");
        }
    }

    #[test]
    fn sum_of_squares_allocates_requested_count() {
        let mesh = Mesh2D::new(8, 8);
        let machine = machine_with_busy(mesh, &[NodeId(10), NodeId(30), NodeId(31)]);
        let mut a = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::SumOfSquares);
        let alloc = a.allocate(&AllocRequest::new(1, 12), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 12);
        assert!(alloc.nodes.iter().all(|&n| machine.is_free(n)));
    }
}
