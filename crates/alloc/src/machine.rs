//! Machine occupancy state shared by scheduler, allocator and simulator.

use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// The free/busy state of every processor of a mesh machine.
///
/// Processors are exclusively dedicated to a job from allocation until the
/// job terminates (space sharing), so the state is a simple bitmap plus a
/// free-count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineState {
    mesh: Mesh2D,
    free: Vec<bool>,
    num_free: usize,
}

impl MachineState {
    /// Creates a fully-free machine over `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        MachineState {
            mesh,
            free: vec![true; mesh.num_nodes()],
            num_free: mesh.num_nodes(),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Total number of processors.
    pub fn num_nodes(&self) -> usize {
        self.mesh.num_nodes()
    }

    /// Number of currently free processors.
    pub fn num_free(&self) -> usize {
        self.num_free
    }

    /// Number of currently busy processors.
    pub fn num_busy(&self) -> usize {
        self.num_nodes() - self.num_free
    }

    /// True if `node` is free.
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free[node.index()]
    }

    /// Iterator over the free processors in row-major order.
    pub fn free_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Marks `nodes` busy.
    ///
    /// # Panics
    ///
    /// Panics if any of the nodes is already busy — double allocation is a
    /// simulator bug, never a recoverable condition.
    pub fn occupy(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            assert!(
                self.free[n.index()],
                "processor {n} allocated twice"
            );
            self.free[n.index()] = false;
        }
        self.num_free -= nodes.len();
    }

    /// Marks `nodes` free again.
    ///
    /// # Panics
    ///
    /// Panics if any of the nodes is already free.
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            assert!(
                !self.free[n.index()],
                "processor {n} released while free"
            );
            self.free[n.index()] = true;
        }
        self.num_free += nodes.len();
    }

    /// System utilisation in `[0, 1]`: fraction of processors busy.
    pub fn utilization(&self) -> f64 {
        self.num_busy() as f64 / self.num_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    #[test]
    fn occupy_release_round_trip() {
        let mesh = Mesh2D::new(4, 4);
        let mut m = MachineState::new(mesh);
        assert_eq!(m.num_free(), 16);
        let nodes = vec![mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(1, 0))];
        m.occupy(&nodes);
        assert_eq!(m.num_free(), 14);
        assert_eq!(m.num_busy(), 2);
        assert!(!m.is_free(nodes[0]));
        assert!((m.utilization() - 2.0 / 16.0).abs() < 1e-12);
        m.release(&nodes);
        assert_eq!(m.num_free(), 16);
        assert!(m.is_free(nodes[0]));
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_occupy_panics() {
        let mesh = Mesh2D::new(2, 2);
        let mut m = MachineState::new(mesh);
        m.occupy(&[NodeId(0)]);
        m.occupy(&[NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "released while free")]
    fn double_release_panics() {
        let mesh = Mesh2D::new(2, 2);
        let mut m = MachineState::new(mesh);
        m.release(&[NodeId(0)]);
    }

    #[test]
    fn free_nodes_iterates_only_free() {
        let mesh = Mesh2D::new(2, 2);
        let mut m = MachineState::new(mesh);
        m.occupy(&[NodeId(1), NodeId(3)]);
        let free: Vec<_> = m.free_nodes().collect();
        assert_eq!(free, vec![NodeId(0), NodeId(2)]);
    }
}
