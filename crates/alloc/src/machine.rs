//! Machine occupancy state shared by scheduler, allocator and simulator.

use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of unique machine identities (see [`MachineState::state_id`]).
static NEXT_MACHINE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_machine_id() -> u64 {
    NEXT_MACHINE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The free/busy state of every processor of a mesh machine.
///
/// Processors are exclusively dedicated to a job from allocation until the
/// job terminates (space sharing), so the state is a simple bitmap plus a
/// free-count.
#[derive(Debug, Serialize)]
pub struct MachineState {
    mesh: Mesh2D,
    free: Vec<bool>,
    num_free: usize,
    /// Counter of state-mutating calls ([`MachineState::occupy`] /
    /// [`MachineState::release`]), used by incremental observers (e.g.
    /// `FreeIntervalIndex`-backed allocators) to detect that the occupancy
    /// changed underneath them and resynchronise.
    generation: u64,
    /// Process-unique identity of this state's mutation history (see
    /// [`MachineState::state_id`]).
    id: u64,
}

/// Clones receive a **fresh identity**: the clone's occupancy equals the
/// original's, but the two histories diverge from here, so incremental
/// observers keyed on `(state_id, generation)` must not confuse them.
impl Clone for MachineState {
    fn clone(&self) -> Self {
        MachineState {
            mesh: self.mesh,
            free: self.free.clone(),
            num_free: self.num_free,
            generation: self.generation,
            id: fresh_machine_id(),
        }
    }
}

/// Deserialised machines likewise get a fresh identity — the serialised
/// form is a snapshot, not a live mutation history.
impl Deserialize for MachineState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for MachineState"))?;
        let null = serde::Value::Null;
        Ok(MachineState {
            mesh: Deserialize::from_value(obj.get("mesh").unwrap_or(&null))?,
            free: Deserialize::from_value(obj.get("free").unwrap_or(&null))?,
            num_free: Deserialize::from_value(obj.get("num_free").unwrap_or(&null))?,
            generation: Deserialize::from_value(obj.get("generation").unwrap_or(&null))?,
            id: fresh_machine_id(),
        })
    }
}

/// Occupancy equality ignores [`MachineState::generation`]: two machines
/// with the same free set are interchangeable for allocation decisions even
/// if they arrived there through different histories.
impl PartialEq for MachineState {
    fn eq(&self, other: &Self) -> bool {
        self.mesh == other.mesh && self.free == other.free && self.num_free == other.num_free
    }
}

impl Eq for MachineState {}

impl MachineState {
    /// Creates a fully-free machine over `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        MachineState {
            mesh,
            free: vec![true; mesh.num_nodes()],
            num_free: mesh.num_nodes(),
            generation: 0,
            id: fresh_machine_id(),
        }
    }

    /// Number of mutations applied so far; increments on every
    /// [`MachineState::occupy`] and [`MachineState::release`] call.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Process-unique identity of this state's mutation history. Two
    /// `MachineState` values never share an id unless one is a move of the
    /// other — clones and deserialised copies get fresh ids — so
    /// `(state_id, generation)` pins an exact occupancy: an incremental
    /// observer that cached state under one pair can trust it only while
    /// both components match.
    pub fn state_id(&self) -> u64 {
        self.id
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Total number of processors.
    pub fn num_nodes(&self) -> usize {
        self.mesh.num_nodes()
    }

    /// Number of currently free processors.
    pub fn num_free(&self) -> usize {
        self.num_free
    }

    /// Number of currently busy processors.
    pub fn num_busy(&self) -> usize {
        self.num_nodes() - self.num_free
    }

    /// True if `node` is free.
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free[node.index()]
    }

    /// Iterator over the free processors in row-major order.
    pub fn free_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Marks `nodes` busy.
    ///
    /// # Panics
    ///
    /// Panics if any of the nodes is already busy — double allocation is a
    /// simulator bug, never a recoverable condition.
    pub fn occupy(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            assert!(self.free[n.index()], "processor {n} allocated twice");
            self.free[n.index()] = false;
        }
        self.num_free -= nodes.len();
        self.generation += 1;
    }

    /// Marks `nodes` free again.
    ///
    /// # Panics
    ///
    /// Panics if any of the nodes is already free.
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            assert!(!self.free[n.index()], "processor {n} released while free");
            self.free[n.index()] = true;
        }
        self.num_free += nodes.len();
        self.generation += 1;
    }

    /// System utilisation in `[0, 1]`: fraction of processors busy.
    pub fn utilization(&self) -> f64 {
        self.num_busy() as f64 / self.num_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    #[test]
    fn occupy_release_round_trip() {
        let mesh = Mesh2D::new(4, 4);
        let mut m = MachineState::new(mesh);
        assert_eq!(m.num_free(), 16);
        let nodes = vec![mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(1, 0))];
        m.occupy(&nodes);
        assert_eq!(m.num_free(), 14);
        assert_eq!(m.num_busy(), 2);
        assert!(!m.is_free(nodes[0]));
        assert!((m.utilization() - 2.0 / 16.0).abs() < 1e-12);
        m.release(&nodes);
        assert_eq!(m.num_free(), 16);
        assert!(m.is_free(nodes[0]));
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn double_occupy_panics() {
        let mesh = Mesh2D::new(2, 2);
        let mut m = MachineState::new(mesh);
        m.occupy(&[NodeId(0)]);
        m.occupy(&[NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "released while free")]
    fn double_release_panics() {
        let mesh = Mesh2D::new(2, 2);
        let mut m = MachineState::new(mesh);
        m.release(&[NodeId(0)]);
    }

    #[test]
    fn free_nodes_iterates_only_free() {
        let mesh = Mesh2D::new(2, 2);
        let mut m = MachineState::new(mesh);
        m.occupy(&[NodeId(1), NodeId(3)]);
        let free: Vec<_> = m.free_nodes().collect();
        assert_eq!(free, vec![NodeId(0), NodeId(2)]);
    }
}
