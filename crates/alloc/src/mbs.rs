//! Multiple Buddy Strategy (MBS) allocation (Lo, Windisch, Liu & Nitzberg).
//!
//! MBS is the non-contiguous relative of the 2-D buddy system, proposed in
//! the same paper as Paging (reference [19] of the paper reproduced here).
//! The request for `k` processors is factored by its base-4 representation
//! into a collection of square blocks — `k = Σ dᵢ · 4^i` asks for `dᵢ`
//! blocks of side `2^i` — and each block is satisfied from the free aligned
//! block of exactly that size if one exists, or by breaking the sub-request
//! into four blocks of the next smaller size otherwise. Because a request
//! can always be broken all the way down to single processors, MBS succeeds
//! whenever enough processors are free (no external-fragmentation failures),
//! while still preferring large square chunks that keep the allocation
//! compact.
//!
//! The implementation is stateless with respect to occupancy: the free-block
//! structure is recomputed from [`MachineState`] on each call, which keeps
//! the allocator trivially consistent with the simulator's single source of
//! truth (the paper's simulator owns occupancy the same way).

use crate::allocator::Allocator;
use crate::buddy::BuddyAllocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::{Coord, Mesh2D, NodeId};

/// Multiple Buddy Strategy allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MbsAllocator;

impl MbsAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        MbsAllocator
    }

    /// The base-4 factorisation of a request: `factorize(k)[i]` is the
    /// number of blocks of side `2^i` requested. The factorisation is
    /// truncated at the largest block that fits the mesh.
    pub fn factorize(size: usize, max_order: u32) -> Vec<usize> {
        let mut digits = Vec::new();
        let mut rest = size;
        while rest > 0 {
            digits.push(rest % 4);
            rest /= 4;
        }
        // Blocks larger than the machine's largest aligned block are broken
        // into four blocks of the next order down.
        while digits.len() as u32 > max_order + 1 {
            let top = digits.pop().expect("len checked above");
            let next = digits.len() - 1;
            digits[next] += top * 4;
        }
        digits
    }

    /// The largest block order whose `2^o × 2^o` footprint fits inside the
    /// mesh (`⌊log₂ min(width, height)⌋`).
    pub fn max_order(mesh: Mesh2D) -> u32 {
        let side = mesh.width().min(mesh.height());
        debug_assert!(side > 0);
        15 - side.leading_zeros()
    }

    /// Nodes of the aligned block at `origin` with side `2^order`, row-major.
    fn block_nodes(mesh: Mesh2D, origin: Coord, order: u32) -> Vec<NodeId> {
        let side = 1u16 << order;
        let mut nodes = Vec::with_capacity((side as usize) * (side as usize));
        for dy in 0..side {
            for dx in 0..side {
                nodes.push(mesh.id_of(Coord::new(origin.x + dx, origin.y + dy)));
            }
        }
        nodes
    }
}

impl Allocator for MbsAllocator {
    fn name(&self) -> String {
        "MBS".to_string()
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let mesh = machine.mesh();
        let max_order = Self::max_order(mesh);
        let mut wanted = Self::factorize(req.size, max_order);

        // Track which processors this allocation has already claimed so a
        // later block does not reuse them (the machine state itself is
        // immutable during one call).
        let mut claimed = vec![false; mesh.num_nodes()];
        let mut nodes: Vec<NodeId> = Vec::with_capacity(req.size);

        // Serve block requests from the largest order down; an unsatisfiable
        // block request is broken into four of the next smaller order.
        let mut order = wanted.len().saturating_sub(1) as i32;
        while order >= 0 {
            let o = order as u32;
            let mut remaining = wanted[o as usize];
            if remaining == 0 {
                order -= 1;
                continue;
            }
            let candidates: Vec<Coord> = BuddyAllocator::free_blocks(machine, o)
                .into_iter()
                .filter(|&origin| {
                    Self::block_nodes(mesh, origin, o)
                        .iter()
                        .all(|n| !claimed[n.index()])
                })
                .collect();
            for origin in candidates {
                if remaining == 0 {
                    break;
                }
                for n in Self::block_nodes(mesh, origin, o) {
                    claimed[n.index()] = true;
                    nodes.push(n);
                }
                remaining -= 1;
            }
            if remaining > 0 {
                if o == 0 {
                    // Fall back to arbitrary free processors for the
                    // leftovers (MBS's final break-down step).
                    for n in machine.free_nodes() {
                        if remaining == 0 {
                            break;
                        }
                        if !claimed[n.index()] {
                            claimed[n.index()] = true;
                            nodes.push(n);
                            remaining -= 1;
                        }
                    }
                    debug_assert_eq!(remaining, 0, "enough free processors were guaranteed");
                } else {
                    // Break each missing block into four of the next order.
                    wanted[(o - 1) as usize] += remaining * 4;
                }
            }
            wanted[o as usize] = 0;
            order -= 1;
        }

        // The factorisation may have over-claimed (a broken-down block can
        // only be filled in units of smaller blocks); trim to the request.
        nodes.truncate(req.size);
        debug_assert_eq!(nodes.len(), req.size);
        Some(Allocation::new(req.job_id, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_is_base_four() {
        assert_eq!(MbsAllocator::factorize(1, 4), vec![1]);
        assert_eq!(MbsAllocator::factorize(5, 4), vec![1, 1]);
        assert_eq!(MbsAllocator::factorize(14, 4), vec![2, 3]);
        assert_eq!(MbsAllocator::factorize(64, 4), vec![0, 0, 0, 1]);
        assert_eq!(MbsAllocator::factorize(30, 4), vec![2, 3, 1]);
    }

    #[test]
    fn factorize_respects_the_maximum_order() {
        // 64 processors = one order-3 block, but if the machine only holds
        // order-2 blocks the request becomes four of them.
        assert_eq!(MbsAllocator::factorize(64, 2), vec![0, 0, 4]);
        assert_eq!(MbsAllocator::factorize(80, 1), vec![0, 20]);
    }

    #[test]
    fn max_order_matches_mesh_dimensions() {
        assert_eq!(MbsAllocator::max_order(Mesh2D::new(16, 16)), 4);
        assert_eq!(MbsAllocator::max_order(Mesh2D::new(16, 22)), 4);
        assert_eq!(MbsAllocator::max_order(Mesh2D::new(8, 22)), 3);
        assert_eq!(MbsAllocator::max_order(Mesh2D::new(1, 9)), 0);
    }

    #[test]
    fn empty_mesh_allocations_are_compact() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut mbs = MbsAllocator::new();
        for size in [1usize, 4, 14, 16, 30, 64, 100, 128] {
            let alloc = mbs.allocate(&AllocRequest::new(1, size), &machine).unwrap();
            assert_eq!(alloc.nodes.len(), size, "size {size}");
            let unique: std::collections::HashSet<_> = alloc.nodes.iter().collect();
            assert_eq!(unique.len(), size, "size {size} must not repeat processors");
            // Power-of-four requests on an empty mesh come back as a single
            // aligned square block.
            if size.is_power_of_two() && size.trailing_zeros() % 2 == 0 {
                assert_eq!(mesh.components(&alloc.nodes), 1, "size {size}");
            }
        }
    }

    #[test]
    fn never_fails_when_enough_processors_are_free() {
        // Fragment the machine heavily (checkerboard) and allocate half of
        // it: MBS must still succeed, unlike the contiguous strategies.
        let mesh = Mesh2D::new(8, 8);
        let busy: Vec<NodeId> = mesh
            .nodes()
            .filter(|n| {
                let c = mesh.coord_of(*n);
                (c.x + c.y).is_multiple_of(2)
            })
            .collect();
        let mut machine = MachineState::new(mesh);
        machine.occupy(&busy);
        let mut mbs = MbsAllocator::new();
        let alloc = mbs.allocate(&AllocRequest::new(1, 32), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 32);
        assert!(alloc.nodes.iter().all(|&n| machine.is_free(n)));
    }

    #[test]
    fn prefers_whole_blocks_when_available() {
        // With the left half busy, a 16-processor request should come back as
        // the free aligned 4x4 block in the right half.
        let mesh = Mesh2D::new(8, 4);
        let busy: Vec<NodeId> = mesh.nodes().filter(|n| mesh.coord_of(*n).x < 4).collect();
        let mut machine = MachineState::new(mesh);
        machine.occupy(&busy);
        let mut mbs = MbsAllocator::new();
        let alloc = mbs.allocate(&AllocRequest::new(1, 16), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 16);
        assert_eq!(mesh.components(&alloc.nodes), 1);
        assert!(alloc.nodes.iter().all(|&n| mesh.coord_of(n).x >= 4));
    }

    #[test]
    fn zero_and_oversized_requests_are_rejected() {
        let mesh = Mesh2D::new(4, 4);
        let machine = MachineState::new(mesh);
        let mut mbs = MbsAllocator::new();
        assert!(mbs.allocate(&AllocRequest::new(1, 0), &machine).is_none());
        assert!(mbs.allocate(&AllocRequest::new(1, 17), &machine).is_none());
        assert!(mbs.allocate(&AllocRequest::new(1, 16), &machine).is_some());
    }
}
