//! Two-dimensional buddy-system allocation (Li & Cheng).
//!
//! The 2-D buddy system partitions the machine into aligned square blocks of
//! side `2^j`. A request for `k` processors is rounded up to the smallest
//! block that can hold it, and the allocator searches for a free block of
//! that size; blocks are aligned, so a block of side `2^j` always starts at
//! coordinates that are multiples of `2^j`. Rounding the request up to a
//! power-of-four block causes *internal fragmentation* (processors inside
//! the block but beyond the request go unused only if the caller insists on
//! exclusive blocks; here the unused remainder of the block stays free, like
//! the MC footprint), and alignment causes *external fragmentation* — both
//! effects the later non-contiguous strategies (Paging, MBS, MC) were
//! designed to remove.
//!
//! On meshes that are not power-of-two squares (the paper's 16 × 22 machine)
//! blocks are still aligned to the power-of-two lattice of the enclosing
//! square and simply must lie entirely inside the mesh.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::{Coord, Mesh2D, NodeId};

/// Buddy-system allocator over aligned power-of-two square blocks.
///
/// The allocator is stateless with respect to occupancy (it rescans
/// [`MachineState`] on every call), so "splitting" and "coalescing" are
/// implicit: a block is available exactly when all of its processors are
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuddyAllocator;

impl BuddyAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        BuddyAllocator
    }

    /// The block order used for a request of `size` processors: the smallest
    /// `j` such that a `2^j × 2^j` block holds `size`.
    pub fn order_for(size: usize) -> u32 {
        let mut order = 0u32;
        while (1usize << order) * (1usize << order) < size {
            order += 1;
        }
        order
    }

    /// All aligned free blocks of side `2^order` that lie entirely inside the
    /// mesh, as their origin coordinates in row-major order.
    pub fn free_blocks(machine: &MachineState, order: u32) -> Vec<Coord> {
        let mesh = machine.mesh();
        let side = 1u16 << order;
        if side > mesh.width() || side > mesh.height() {
            return Vec::new();
        }
        let mut blocks = Vec::new();
        let mut y = 0u16;
        while y + side <= mesh.height() {
            let mut x = 0u16;
            while x + side <= mesh.width() {
                let origin = Coord::new(x, y);
                if Self::block_is_free(machine, origin, side) {
                    blocks.push(origin);
                }
                x += side;
            }
            y += side;
        }
        blocks
    }

    fn block_is_free(machine: &MachineState, origin: Coord, side: u16) -> bool {
        let mesh = machine.mesh();
        for dy in 0..side {
            for dx in 0..side {
                let c = Coord::new(origin.x + dx, origin.y + dy);
                if !mesh.contains(c) || !machine.is_free(mesh.id_of(c)) {
                    return false;
                }
            }
        }
        true
    }

    /// The nodes of the block at `origin`, row-major, truncated to `size`.
    fn take_block(mesh: Mesh2D, origin: Coord, side: u16, size: usize) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(size);
        'outer: for dy in 0..side {
            for dx in 0..side {
                if nodes.len() == size {
                    break 'outer;
                }
                nodes.push(mesh.id_of(Coord::new(origin.x + dx, origin.y + dy)));
            }
        }
        nodes
    }
}

impl Allocator for BuddyAllocator {
    fn name(&self) -> String {
        "2-D buddy".to_string()
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let mesh = machine.mesh();
        let order = Self::order_for(req.size);
        let blocks = Self::free_blocks(machine, order);
        let origin = blocks.first().copied()?;
        let nodes = Self::take_block(mesh, origin, 1u16 << order, req.size);
        debug_assert_eq!(nodes.len(), req.size);
        Some(Allocation::new(req.job_id, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_for_rounds_up_to_power_of_four_areas() {
        assert_eq!(BuddyAllocator::order_for(1), 0);
        assert_eq!(BuddyAllocator::order_for(2), 1);
        assert_eq!(BuddyAllocator::order_for(4), 1);
        assert_eq!(BuddyAllocator::order_for(5), 2);
        assert_eq!(BuddyAllocator::order_for(16), 2);
        assert_eq!(BuddyAllocator::order_for(17), 3);
        assert_eq!(BuddyAllocator::order_for(64), 3);
        assert_eq!(BuddyAllocator::order_for(65), 4);
    }

    #[test]
    fn empty_mesh_allocations_are_contiguous_and_aligned() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut buddy = BuddyAllocator::new();
        for size in [1usize, 3, 4, 14, 16, 60, 64] {
            let alloc = buddy
                .allocate(&AllocRequest::new(1, size), &machine)
                .unwrap();
            assert_eq!(alloc.nodes.len(), size);
            assert_eq!(mesh.components(&alloc.nodes), 1, "size {size}");
            // The block origin is aligned to its side.
            let side = 1u16 << BuddyAllocator::order_for(size);
            let origin = mesh.coord_of(alloc.nodes[0]);
            assert_eq!(origin.x % side, 0);
            assert_eq!(origin.y % side, 0);
        }
    }

    #[test]
    fn alignment_causes_external_fragmentation() {
        // Occupy one processor in each aligned 4x4 block of an 8x8 mesh: 60
        // processors remain free, but no 4x4 block is free, so a 16-processor
        // request fails.
        let mesh = Mesh2D::new(8, 8);
        let busy: Vec<NodeId> = [(0u16, 0u16), (4, 0), (0, 4), (4, 4)]
            .iter()
            .map(|&(x, y)| mesh.id_of(Coord::new(x, y)))
            .collect();
        let mut machine = MachineState::new(mesh);
        machine.occupy(&busy);
        let mut buddy = BuddyAllocator::new();
        assert!(buddy
            .allocate(&AllocRequest::new(1, 16), &machine)
            .is_none());
        // Smaller requests that fit a free aligned 2x2 block still succeed.
        assert!(buddy.allocate(&AllocRequest::new(1, 4), &machine).is_some());
    }

    #[test]
    fn blocks_never_cross_the_mesh_boundary_on_16x22() {
        let mesh = Mesh2D::paragon_16x22();
        let machine = MachineState::new(mesh);
        // Order-4 blocks are 16x16: exactly one fits in x, one in y (rows
        // 0..16); the strip y in 16..22 can never hold one.
        let blocks = BuddyAllocator::free_blocks(&machine, 4);
        assert_eq!(blocks, vec![Coord::new(0, 0)]);
        // Order-5 blocks (32x32) do not fit at all.
        assert!(BuddyAllocator::free_blocks(&machine, 5).is_empty());
    }

    #[test]
    fn request_larger_than_any_block_fails_even_on_an_empty_mesh() {
        // A 17-processor request needs an 8x8 block; an 8x4 mesh has 32 free
        // processors but can never hold one, so the buddy system refuses.
        let mesh = Mesh2D::new(8, 4);
        let machine = MachineState::new(mesh);
        let mut buddy = BuddyAllocator::new();
        assert!(buddy
            .allocate(&AllocRequest::new(1, 16), &machine)
            .is_some());
        assert!(buddy
            .allocate(&AllocRequest::new(1, 17), &machine)
            .is_none());
    }

    #[test]
    fn zero_and_oversized_requests_are_rejected() {
        let mesh = Mesh2D::new(4, 4);
        let machine = MachineState::new(mesh);
        let mut buddy = BuddyAllocator::new();
        assert!(buddy.allocate(&AllocRequest::new(1, 0), &machine).is_none());
        assert!(buddy
            .allocate(&AllocRequest::new(1, 17), &machine)
            .is_none());
    }
}
