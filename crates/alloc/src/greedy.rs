//! Greedy incremental dispersion minimisation.
//!
//! Gen-Alg (Section 2.2 of the paper) evaluates *every* free processor as a
//! potential centre and, for each, gathers the `k − 1` nearest free
//! processors — an `O(F² log F)` decision for `F` free processors. This
//! module provides the natural cheaper relative: grow the allocation one
//! processor at a time, always adding the free processor that increases the
//! total pairwise distance the least. The greedy rule needs only the sum of
//! distances from each free processor to the already-chosen set, which can be
//! maintained incrementally, giving an `O(k · F)` decision.
//!
//! The greedy allocator is an extension (the paper does not evaluate it); it
//! exists so the benches can ask whether Gen-Alg's extra work buys anything
//! over the obvious cheap heuristic targeting the *same* metric, and so the
//! allocator-cost microbenchmarks have a like-for-like comparison point.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::NodeId;

/// Greedy incremental minimiser of total pairwise distance.
///
/// The first processor is chosen as the free processor whose total distance
/// to all other free processors is smallest (the "most central" free
/// processor), which keeps the greedy process from starting in a sparse
/// corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyAllocator;

impl GreedyAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        GreedyAllocator
    }
}

impl Allocator for GreedyAllocator {
    fn name(&self) -> String {
        "greedy".to_string()
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        let k = req.size;
        if k == 0 || k > machine.num_free() {
            return None;
        }
        let mesh = machine.mesh();
        let free: Vec<NodeId> = machine.free_nodes().collect();
        if k == free.len() {
            return Some(Allocation::new(req.job_id, free));
        }

        // Seed: the most central free processor (smallest total distance to
        // the rest of the free set).
        let mut best_seed = 0usize;
        let mut best_total = u64::MAX;
        for (i, &a) in free.iter().enumerate() {
            let total: u64 = free.iter().map(|&b| mesh.distance(a, b) as u64).sum();
            if total < best_total {
                best_total = total;
                best_seed = i;
            }
        }

        let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
        let mut chosen_mask = vec![false; free.len()];
        // dist_to_chosen[i] = Σ distance(free[i], c) over chosen c.
        let mut dist_to_chosen = vec![0u64; free.len()];

        let add = |idx: usize,
                   chosen: &mut Vec<NodeId>,
                   chosen_mask: &mut Vec<bool>,
                   dist_to_chosen: &mut Vec<u64>| {
            chosen.push(free[idx]);
            chosen_mask[idx] = true;
            for (i, &node) in free.iter().enumerate() {
                if !chosen_mask[i] {
                    dist_to_chosen[i] += mesh.distance(node, free[idx]) as u64;
                }
            }
        };
        add(
            best_seed,
            &mut chosen,
            &mut chosen_mask,
            &mut dist_to_chosen,
        );

        while chosen.len() < k {
            let mut best_idx = usize::MAX;
            let mut best_cost = u64::MAX;
            for (i, &cost) in dist_to_chosen.iter().enumerate() {
                if !chosen_mask[i] && cost < best_cost {
                    best_cost = cost;
                    best_idx = i;
                }
            }
            debug_assert_ne!(best_idx, usize::MAX, "free processors remain");
            add(best_idx, &mut chosen, &mut chosen_mask, &mut dist_to_chosen);
        }

        Some(Allocation::new(req.job_id, chosen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_alg::GenAlgAllocator;
    use crate::metrics::quality;
    use commalloc_mesh::{Coord, Mesh2D};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn fragmented(mesh: Mesh2D, busy: usize, seed: u64) -> MachineState {
        let mut machine = MachineState::new(mesh);
        let mut nodes: Vec<NodeId> = mesh.nodes().collect();
        nodes.shuffle(&mut StdRng::seed_from_u64(seed));
        nodes.truncate(busy);
        machine.occupy(&nodes);
        machine
    }

    #[test]
    fn allocates_exactly_the_requested_count_of_free_processors() {
        let mesh = Mesh2D::square_16x16();
        let machine = fragmented(mesh, 100, 3);
        let mut greedy = GreedyAllocator::new();
        for size in [1usize, 5, 14, 40] {
            let a = greedy
                .allocate(&AllocRequest::new(1, size), &machine)
                .unwrap();
            assert_eq!(a.nodes.len(), size);
            let unique: std::collections::HashSet<_> = a.nodes.iter().collect();
            assert_eq!(unique.len(), size);
            assert!(a.nodes.iter().all(|&n| machine.is_free(n)));
        }
    }

    #[test]
    fn empty_machine_allocations_are_compact() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut greedy = GreedyAllocator::new();
        for size in [4usize, 9, 16, 30] {
            let a = greedy
                .allocate(&AllocRequest::new(1, size), &machine)
                .unwrap();
            let q = quality(mesh, &a.nodes);
            assert_eq!(q.components, 1, "size {size} should be one blob");
            // A compact blob of k processors has average pairwise distance
            // well below the random expectation (~10.6 on a 16x16 mesh).
            assert!(q.avg_pairwise_distance < 5.0, "size {size}: {q:?}");
        }
    }

    #[test]
    fn greedy_tracks_gen_alg_quality_closely() {
        // The greedy heuristic targets the same metric as Gen-Alg; on
        // moderately fragmented machines its dispersion should be within a
        // small factor of Gen-Alg's (it need not match it exactly).
        let mesh = Mesh2D::square_16x16();
        for seed in 0..5u64 {
            let machine = fragmented(mesh, 120, seed);
            let req = AllocRequest::new(seed, 16);
            let greedy = GreedyAllocator::new().allocate(&req, &machine).unwrap();
            let gen_alg = GenAlgAllocator::new().allocate(&req, &machine).unwrap();
            let dg = mesh.avg_pairwise_distance(&greedy.nodes);
            let da = mesh.avg_pairwise_distance(&gen_alg.nodes);
            assert!(
                dg <= da * 1.5 + 1e-9,
                "seed {seed}: greedy dispersion {dg:.2} too far above Gen-Alg {da:.2}"
            );
        }
    }

    #[test]
    fn rejects_zero_and_oversized_requests() {
        let mesh = Mesh2D::new(4, 4);
        let machine = MachineState::new(mesh);
        let mut greedy = GreedyAllocator::new();
        assert!(greedy
            .allocate(&AllocRequest::new(1, 0), &machine)
            .is_none());
        assert!(greedy
            .allocate(&AllocRequest::new(1, 17), &machine)
            .is_none());
        // Taking the whole machine is the trivial case.
        let all = greedy
            .allocate(&AllocRequest::new(1, 16), &machine)
            .unwrap();
        assert_eq!(all.nodes.len(), 16);
    }

    #[test]
    fn seed_is_the_most_central_free_processor() {
        // Free processors form an L shape; the corner of the L is the most
        // central and must be chosen first.
        let mesh = Mesh2D::new(8, 8);
        let free_coords = [
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(2, 0),
            Coord::new(0, 1),
            Coord::new(0, 2),
        ];
        let free_ids: Vec<NodeId> = free_coords.iter().map(|&c| mesh.id_of(c)).collect();
        let busy: Vec<NodeId> = mesh.nodes().filter(|n| !free_ids.contains(n)).collect();
        let mut machine = MachineState::new(mesh);
        machine.occupy(&busy);
        let mut greedy = GreedyAllocator::new();
        let a = greedy.allocate(&AllocRequest::new(1, 1), &machine).unwrap();
        assert_eq!(mesh.coord_of(a.nodes[0]), Coord::new(0, 0));
    }
}
