//! Allocation-quality metrics (Section 4.3 of the paper).
//!
//! Three measures are used to characterise an allocation independently of the
//! network simulation:
//!
//! * **average pairwise distance** — the dispersion metric of Mache & Lo that
//!   MC1x1 and Gen-Alg explicitly minimise (Figures 1 and 9);
//! * **number of rectilinear components** and **contiguity** — how many
//!   connected pieces the allocation splits into (Figure 11);
//! * **curve span** — the range of curve ranks covered, a cheap proxy used by
//!   the one-dimensional strategies' fallback rule;
//! * **dispersal metrics** ([`DispersionMetrics`]) — the wider family studied
//!   by Mache & Lo: maximum pairwise distance (diameter), bounding-box area
//!   and the fraction of the bounding box actually used.

use commalloc_mesh::curve::CurveOrder;
use commalloc_mesh::{Coord, Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// Quality summary of a single allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationQuality {
    /// Number of processors in the allocation.
    pub size: usize,
    /// Average pairwise Manhattan distance between the processors.
    pub avg_pairwise_distance: f64,
    /// Number of rectilinear connected components.
    pub components: usize,
    /// True when the allocation forms a single component.
    pub contiguous: bool,
}

/// Computes the quality summary of an allocation on `mesh`.
pub fn quality(mesh: Mesh2D, nodes: &[NodeId]) -> AllocationQuality {
    let components = mesh.components(nodes);
    AllocationQuality {
        size: nodes.len(),
        avg_pairwise_distance: mesh.avg_pairwise_distance(nodes),
        components,
        contiguous: components == 1,
    }
}

/// The dispersal-metric family of Mache & Lo, computed for one allocation.
///
/// The paper's Section 4.3 investigates which static metric best predicts
/// running time; these are the companions of the average-pairwise-distance
/// metric reported there, exposed so the correlation experiment (Figures 9
/// and 10) can be repeated against any of them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispersionMetrics {
    /// Number of processors in the allocation.
    pub size: usize,
    /// Average pairwise Manhattan distance (the metric MC1x1 and Gen-Alg
    /// minimise).
    pub avg_pairwise_distance: f64,
    /// Maximum pairwise Manhattan distance (the allocation's diameter).
    pub max_pairwise_distance: u32,
    /// Width of the axis-aligned bounding box.
    pub bbox_width: u16,
    /// Height of the axis-aligned bounding box.
    pub bbox_height: u16,
    /// Fraction of the bounding box occupied by the allocation, in `(0, 1]`.
    /// A perfect rectangle scores 1; scattered allocations score low.
    pub bbox_utilization: f64,
}

impl DispersionMetrics {
    /// Semi-perimeter of the bounding box, a cheap upper bound on the hop
    /// count of any intra-job message under x-y routing.
    pub fn bbox_semiperimeter(&self) -> u32 {
        (self.bbox_width as u32 - 1) + (self.bbox_height as u32 - 1)
    }
}

/// Computes the dispersal metrics of an allocation on `mesh`.
///
/// # Panics
///
/// Panics if `nodes` is empty: dispersal of an empty allocation is
/// meaningless and always indicates a caller bug.
pub fn dispersion(mesh: Mesh2D, nodes: &[NodeId]) -> DispersionMetrics {
    assert!(!nodes.is_empty(), "dispersal of an empty allocation");
    let coords: Vec<Coord> = nodes.iter().map(|&n| mesh.coord_of(n)).collect();
    let min_x = coords.iter().map(|c| c.x).min().expect("non-empty");
    let max_x = coords.iter().map(|c| c.x).max().expect("non-empty");
    let min_y = coords.iter().map(|c| c.y).min().expect("non-empty");
    let max_y = coords.iter().map(|c| c.y).max().expect("non-empty");
    let bbox_width = max_x - min_x + 1;
    let bbox_height = max_y - min_y + 1;
    let bbox_area = bbox_width as f64 * bbox_height as f64;

    let mut max_pairwise = 0u32;
    for (i, &a) in coords.iter().enumerate() {
        for &b in &coords[i + 1..] {
            max_pairwise = max_pairwise.max(a.manhattan(b));
        }
    }

    DispersionMetrics {
        size: nodes.len(),
        avg_pairwise_distance: mesh.avg_pairwise_distance(nodes),
        max_pairwise_distance: max_pairwise,
        bbox_width,
        bbox_height,
        bbox_utilization: nodes.len() as f64 / bbox_area,
    }
}

/// The span of curve ranks covered by an allocation: the difference between
/// the largest and smallest rank of its processors. A perfectly packed
/// interval of `k` processors has span `k − 1`.
pub fn curve_span(curve: &CurveOrder, nodes: &[NodeId]) -> usize {
    if nodes.is_empty() {
        return 0;
    }
    let ranks: Vec<usize> = nodes.iter().map(|&n| curve.rank_of(n)).collect();
    let min = *ranks.iter().min().expect("non-empty");
    let max = *ranks.iter().max().expect("non-empty");
    max - min
}

/// Aggregates allocation qualities across many jobs, producing the two
/// columns of the paper's Figure 11: the percentage of jobs allocated
/// contiguously and the average number of components per job.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContiguityStats {
    jobs: usize,
    contiguous_jobs: usize,
    total_components: usize,
}

impl ContiguityStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one job's allocation quality.
    pub fn record(&mut self, q: &AllocationQuality) {
        self.jobs += 1;
        if q.contiguous {
            self.contiguous_jobs += 1;
        }
        self.total_components += q.components;
    }

    /// Number of jobs recorded.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Percentage of jobs allocated contiguously (0–100).
    pub fn percent_contiguous(&self) -> f64 {
        if self.jobs == 0 {
            return 0.0;
        }
        100.0 * self.contiguous_jobs as f64 / self.jobs as f64
    }

    /// Average number of components per job.
    pub fn avg_components(&self) -> f64 {
        if self.jobs == 0 {
            return 0.0;
        }
        self.total_components as f64 / self.jobs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::curve::CurveKind;
    use commalloc_mesh::Coord;

    #[test]
    fn quality_of_a_square_block() {
        let mesh = Mesh2D::new(8, 8);
        let nodes: Vec<NodeId> = mesh
            .submesh(Coord::new(2, 2), 2, 2)
            .into_iter()
            .map(|c| mesh.id_of(c))
            .collect();
        let q = quality(mesh, &nodes);
        assert_eq!(q.size, 4);
        assert!(q.contiguous);
        assert_eq!(q.components, 1);
        // 2x2 block: pairs at distance 1 (4 of them) and 2 (2 of them) -> 8/6.
        assert!((q.avg_pairwise_distance - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quality_of_a_split_allocation() {
        let mesh = Mesh2D::new(8, 8);
        let nodes = vec![mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(7, 7))];
        let q = quality(mesh, &nodes);
        assert!(!q.contiguous);
        assert_eq!(q.components, 2);
    }

    #[test]
    fn curve_span_of_a_packed_interval() {
        let mesh = Mesh2D::new(8, 8);
        let curve = CurveOrder::build(CurveKind::Hilbert, mesh);
        let nodes: Vec<NodeId> = (10..20).map(|r| curve.node_at(r)).collect();
        assert_eq!(curve_span(&curve, &nodes), 9);
        assert_eq!(curve_span(&curve, &[]), 0);
    }

    #[test]
    fn contiguity_stats_match_hand_computation() {
        let mesh = Mesh2D::new(8, 8);
        let mut stats = ContiguityStats::new();
        let contiguous = quality(
            mesh,
            &[mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(1, 0))],
        );
        let split = quality(
            mesh,
            &[mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(5, 5))],
        );
        stats.record(&contiguous);
        stats.record(&split);
        stats.record(&split);
        assert_eq!(stats.jobs(), 3);
        assert!((stats.percent_contiguous() - 100.0 / 3.0).abs() < 1e-9);
        assert!((stats.avg_components() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = ContiguityStats::new();
        assert_eq!(stats.percent_contiguous(), 0.0);
        assert_eq!(stats.avg_components(), 0.0);
    }

    #[test]
    fn dispersion_of_a_perfect_rectangle() {
        let mesh = Mesh2D::new(8, 8);
        let nodes: Vec<NodeId> = mesh
            .submesh(Coord::new(1, 2), 3, 2)
            .into_iter()
            .map(|c| mesh.id_of(c))
            .collect();
        let d = dispersion(mesh, &nodes);
        assert_eq!(d.size, 6);
        assert_eq!(d.bbox_width, 3);
        assert_eq!(d.bbox_height, 2);
        assert!((d.bbox_utilization - 1.0).abs() < 1e-12);
        assert_eq!(d.max_pairwise_distance, 3);
        assert_eq!(d.bbox_semiperimeter(), 3);
    }

    #[test]
    fn dispersion_of_scattered_corners() {
        let mesh = Mesh2D::new(8, 8);
        let nodes = vec![mesh.id_of(Coord::new(0, 0)), mesh.id_of(Coord::new(7, 7))];
        let d = dispersion(mesh, &nodes);
        assert_eq!(d.max_pairwise_distance, 14);
        assert_eq!(d.bbox_width, 8);
        assert_eq!(d.bbox_height, 8);
        assert!((d.bbox_utilization - 2.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn dispersion_of_a_single_processor() {
        let mesh = Mesh2D::new(4, 4);
        let d = dispersion(mesh, &[mesh.id_of(Coord::new(2, 3))]);
        assert_eq!(d.size, 1);
        assert_eq!(d.max_pairwise_distance, 0);
        assert_eq!(d.bbox_width, 1);
        assert_eq!(d.bbox_height, 1);
        assert!((d.bbox_utilization - 1.0).abs() < 1e-12);
        assert_eq!(d.avg_pairwise_distance, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty allocation")]
    fn dispersion_of_nothing_panics() {
        let mesh = Mesh2D::new(4, 4);
        dispersion(mesh, &[]);
    }

    #[test]
    fn compact_allocations_dominate_dispersed_ones_on_every_metric() {
        let mesh = Mesh2D::new(16, 16);
        let compact: Vec<NodeId> = mesh
            .submesh(Coord::new(4, 4), 4, 4)
            .into_iter()
            .map(|c| mesh.id_of(c))
            .collect();
        let dispersed: Vec<NodeId> = (0..16u32).map(|i| NodeId(i * 16 + (i * 7) % 16)).collect();
        let dc = dispersion(mesh, &compact);
        let dd = dispersion(mesh, &dispersed);
        assert!(dc.avg_pairwise_distance < dd.avg_pairwise_distance);
        assert!(dc.max_pairwise_distance < dd.max_pairwise_distance);
        assert!(dc.bbox_utilization > dd.bbox_utilization);
    }
}
