//! # commalloc-alloc
//!
//! Processor-allocation algorithms for space-shared 2-D mesh machines, as
//! evaluated by *Communication Patterns and Allocation Strategies* (Leung,
//! Bunde & Mache, SAND2003-4522 / IPPS 2004).
//!
//! On CPlant-class machines the scheduler decides *which* job runs next and
//! the allocator decides *where* it runs; this crate implements the
//! allocator side:
//!
//! * [`curve_alloc::CurveAllocator`] — the one-dimensional-reduction family
//!   (Section 2.1): processors are ordered along a space-filling curve and a
//!   bin-packing heuristic ([`curve_alloc::SelectionStrategy`]: sorted free
//!   list, First Fit, Best Fit, Sum-of-Squares) picks an interval of free
//!   ranks.
//! * [`paging::PagingAllocator`] — the original Paging algorithm of Lo et al.
//!   with `2^s × 2^s` pages (the paper uses `s = 0`, a special case of the
//!   curve allocator; larger pages are kept for ablation).
//! * [`gen_alg::GenAlgAllocator`] — the (2 − 2/k)-approximation of Krumke et
//!   al. for minimising average pairwise distance (Section 2.2).
//! * [`mc::McAllocator`] — MC and MC1x1, the shell-based free-processor
//!   scoring of Mache et al. (Section 2.3).
//! * [`random_alloc::RandomAllocator`] — a dispersion-oblivious baseline.
//! * [`contiguous::ContiguousAllocator`] — the historical submesh-only
//!   baseline the paper's survey opens with (jobs wait until a free
//!   rectangle exists).
//! * [`buddy::BuddyAllocator`] and [`mbs::MbsAllocator`] — the 2-D buddy
//!   system of Li & Cheng and the Multiple Buddy Strategy of Lo et al.,
//!   the contiguous and non-contiguous block-structured relatives of Paging.
//! * [`hybrid::HybridAllocator`] — a best-of-several meta-strategy answering
//!   the paper's closing call for "a strategy to harness the strengths of
//!   different algorithms".
//! * [`metrics`] — allocation-quality measures: average pairwise distance,
//!   rectilinear components and contiguity (Section 4.3, Figure 11), plus
//!   the wider dispersal-metric family of Mache & Lo.
//!
//! All allocators implement the [`Allocator`] trait and operate on a
//! [`MachineState`] occupancy view; [`AllocatorKind`] names every
//! configuration the paper plots and builds it via [`AllocatorKind::build`].
//!
//! # Example
//!
//! ```
//! use commalloc_alloc::{AllocRequest, Allocator, AllocatorKind, MachineState};
//! use commalloc_mesh::Mesh2D;
//!
//! let mesh = Mesh2D::square_16x16();
//! let mut machine = MachineState::new(mesh);
//! let mut allocator = AllocatorKind::HilbertBestFit.build(mesh);
//!
//! let first = allocator
//!     .allocate(&AllocRequest::new(1, 17), &machine)
//!     .expect("empty machine can host 17 processors");
//! machine.occupy(&first.nodes);
//! assert_eq!(first.nodes.len(), 17);
//!
//! // On an empty mesh a Best Fit Hilbert allocation is contiguous.
//! assert_eq!(mesh.components(&first.nodes), 1);
//! ```

pub mod allocator;
pub mod buddy;
pub mod contiguous;
pub mod curve_alloc;
pub mod gen_alg;
pub mod greedy;
pub mod hybrid;
pub mod interval_index;
pub mod machine;
pub mod mbs;
pub mod mc;
pub mod metrics;
pub mod paging;
pub mod random_alloc;
pub mod request;

pub use allocator::{Allocator, AllocatorKind};
pub use interval_index::FreeIntervalIndex;
pub use machine::MachineState;
pub use metrics::{AllocationQuality, DispersionMetrics};
pub use request::{AllocRequest, Allocation};
