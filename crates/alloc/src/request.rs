//! Allocation requests and grants.

use commalloc_mesh::NodeId;
use serde::{Deserialize, Serialize};

/// A request for a number of processors on behalf of a job.
///
/// CPlant users request only a *count* of processors (not a shape), which is
/// why the paper introduces MC1x1; allocators that want a shape (MC) derive a
/// near-square one from the count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocRequest {
    /// Identifier of the requesting job (used for deterministic tie-breaking
    /// and by stateful allocators).
    pub job_id: u64,
    /// Number of processors requested.
    pub size: usize,
}

impl AllocRequest {
    /// Creates a request for `size` processors for job `job_id`.
    pub fn new(job_id: u64, size: usize) -> Self {
        AllocRequest { job_id, size }
    }
}

/// A granted allocation: an *ordered* list of processors.
///
/// The order matters: it defines the mapping from the job's logical ranks
/// (0, 1, …) to physical processors, which is what the ring-structured n-body
/// pattern communicates over. Curve allocators list processors in curve
/// order, MC lists them centre-outward, and the random baseline lists them in
/// the (random) order they were drawn.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// The job this allocation belongs to.
    pub job_id: u64,
    /// Processors granted, in rank order.
    pub nodes: Vec<NodeId>,
}

impl Allocation {
    /// Creates an allocation for `job_id` over `nodes` (rank order).
    pub fn new(job_id: u64, nodes: Vec<NodeId>) -> Self {
        Allocation { job_id, nodes }
    }

    /// Number of processors in the allocation.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the allocation holds no processors.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_len() {
        let a = Allocation::new(3, vec![NodeId(0), NodeId(5)]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(Allocation::new(1, vec![]).is_empty());
    }
}
