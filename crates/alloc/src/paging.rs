//! The original Paging algorithm of Lo et al. with `2^s × 2^s` pages.
//!
//! Paging subdivides the mesh into square pages, keeps a sorted free list of
//! pages (sorted by the page's position along a page-level curve) and assigns
//! an incoming job a prefix of the free list large enough to cover its
//! request. With `s = 0` every page is a single processor and Paging with a
//! sorted free list coincides with
//! [`crate::curve_alloc::CurveAllocator`] using
//! [`crate::curve_alloc::SelectionStrategy::FreeList`]; the paper evaluates
//! only that case to avoid internal fragmentation, but larger pages are
//! implemented here for the fragmentation ablation.
//!
//! A page is *free* only when **all** of its processors are free; pages that
//! are partially busy are unusable, which is exactly the internal
//! fragmentation the paper avoids by setting `s = 0`.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::{Coord, Mesh2D, NodeId};

/// Paging allocator with configurable page size.
#[derive(Debug, Clone)]
pub struct PagingAllocator {
    mesh: Mesh2D,
    /// Page side length (2^s).
    page_side: u16,
    /// Pages in curve order; each page is the list of its member processors.
    pages: Vec<Vec<NodeId>>,
}

impl PagingAllocator {
    /// Creates a Paging allocator with pages of side `2^s`, ordered by `kind`
    /// over the page grid.
    ///
    /// # Panics
    ///
    /// Panics if the mesh dimensions are not multiples of the page side.
    pub fn new(kind: CurveKind, mesh: Mesh2D, s: u32) -> Self {
        let page_side = 1u16 << s;
        assert!(
            mesh.width().is_multiple_of(page_side) && mesh.height().is_multiple_of(page_side),
            "mesh {}x{} not divisible into {page_side}x{page_side} pages",
            mesh.width(),
            mesh.height()
        );
        let pages_w = mesh.width() / page_side;
        let pages_h = mesh.height() / page_side;
        let page_mesh = Mesh2D::new(pages_w, pages_h);
        let page_curve = CurveOrder::build(kind, page_mesh);
        let mut pages = Vec::with_capacity(page_mesh.num_nodes());
        for rank in 0..page_curve.len() {
            let pc = page_mesh.coord_of(page_curve.node_at(rank));
            let origin = Coord::new(pc.x * page_side, pc.y * page_side);
            let members: Vec<NodeId> = mesh
                .submesh(origin, page_side, page_side)
                .into_iter()
                .map(|c| mesh.id_of(c))
                .collect();
            pages.push(members);
        }
        PagingAllocator {
            mesh,
            page_side,
            pages,
        }
    }

    /// The page side length (`2^s`).
    pub fn page_side(&self) -> u16 {
        self.page_side
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages that are currently entirely free.
    pub fn free_pages(&self, machine: &MachineState) -> usize {
        self.pages
            .iter()
            .filter(|p| p.iter().all(|&n| machine.is_free(n)))
            .count()
    }
}

impl Allocator for PagingAllocator {
    fn name(&self) -> String {
        format!("Paging({0}x{0} pages)", self.page_side)
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 {
            return None;
        }
        let page_area = self.page_side as usize * self.page_side as usize;
        let pages_needed = req.size.div_ceil(page_area);
        let free_pages: Vec<&Vec<NodeId>> = self
            .pages
            .iter()
            .filter(|p| p.iter().all(|&n| machine.is_free(n)))
            .collect();
        if free_pages.len() < pages_needed {
            return None;
        }
        let mut nodes: Vec<NodeId> = Vec::with_capacity(req.size);
        for page in free_pages.into_iter().take(pages_needed) {
            for &n in page {
                if nodes.len() < req.size {
                    nodes.push(n);
                }
            }
        }
        debug_assert_eq!(nodes.len(), req.size);
        let _ = self.mesh;
        Some(Allocation::new(req.job_id, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_side_zero_equals_free_list_curve_allocator() {
        use crate::curve_alloc::{CurveAllocator, SelectionStrategy};
        let mesh = Mesh2D::new(8, 8);
        let mut machine = MachineState::new(mesh);
        machine.occupy(&[NodeId(3), NodeId(17), NodeId(40)]);
        let mut paging = PagingAllocator::new(CurveKind::Hilbert, mesh, 0);
        let mut curve = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::FreeList);
        let req = AllocRequest::new(1, 13);
        assert_eq!(
            paging.allocate(&req, &machine).unwrap().nodes,
            curve.allocate(&req, &machine).unwrap().nodes
        );
    }

    #[test]
    fn larger_pages_cause_internal_fragmentation() {
        let mesh = Mesh2D::new(8, 8);
        let mut machine = MachineState::new(mesh);
        // One busy processor poisons its whole 2x2 page.
        machine.occupy(&[NodeId(0)]);
        let mut paging = PagingAllocator::new(CurveKind::Hilbert, mesh, 1);
        assert_eq!(paging.num_pages(), 16);
        assert_eq!(paging.free_pages(&machine), 15);
        // 61 processors requested but only 15*4 = 60 are in free pages.
        assert!(paging
            .allocate(&AllocRequest::new(1, 61), &machine)
            .is_none());
        // A request of 6 takes two pages (8 processors' worth of pages).
        let alloc = paging.allocate(&AllocRequest::new(1, 6), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 6);
        assert!(alloc.nodes.iter().all(|&n| machine.is_free(n)));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_mesh_panics() {
        PagingAllocator::new(CurveKind::Hilbert, Mesh2D::new(6, 8), 2);
    }
}
