//! Incremental index of maximal free intervals along a curve.
//!
//! The one-dimensional-reduction allocators of Section 2.1 repeatedly need
//! the maximal runs of free processors in curve-rank order. The original
//! implementation ([`crate::curve_alloc::free_intervals`]) rebuilds that
//! list by scanning the whole occupancy bitmap on every allocation — O(n)
//! per decision even when only a handful of processors changed state.
//!
//! [`FreeIntervalIndex`] maintains the same information incrementally:
//!
//! * `by_start` — a `BTreeMap` from interval start rank to interval length,
//!   i.e. the maximal free runs in increasing rank order, split and merged
//!   in O(log n) tree operations per occupy/release run;
//! * a rank-indexed free bitmap used to validate splits and merges.
//!
//! Selection queries iterate the interval list; its length is bounded by
//! the number of live jobs plus one, so at realistic machine sizes the
//! scan is a few cache lines. (A secondary by-length set would make
//! best-fit O(log n) but doubles the update cost of every occupy and
//! release, which measured slower at every scale we benchmark.)
//!
//! The selection queries are written to be **decision-identical** to the
//! rescan path for every [`SelectionStrategy`] — the
//! `index_equivalence` property tests in `crates/alloc/tests` assert
//! byte-identical allocations over random occupy/release histories.

use crate::curve_alloc::{FreeInterval, SelectionStrategy};
use crate::machine::MachineState;
use commalloc_mesh::curve::CurveOrder;
use std::collections::BTreeMap;

/// Incrementally maintained maximal free intervals over curve ranks
/// `0..len`.
#[derive(Debug, Clone, Default)]
pub struct FreeIntervalIndex {
    /// rank -> currently free?
    free: Vec<bool>,
    num_free: usize,
    /// start rank -> run length, for every maximal free run.
    by_start: BTreeMap<usize, usize>,
}

impl FreeIntervalIndex {
    /// An index over `len` ranks, all free.
    pub fn all_free(len: usize) -> Self {
        let mut index = FreeIntervalIndex {
            free: vec![true; len],
            num_free: len,
            by_start: BTreeMap::new(),
        };
        if len > 0 {
            index.insert_interval(0, len);
        }
        index
    }

    /// Builds the index for the current occupancy of `machine` along
    /// `curve` (O(n) scan; used for initial construction and resync).
    pub fn from_machine(curve: &CurveOrder, machine: &MachineState) -> Self {
        let len = curve.len();
        let mut index = FreeIntervalIndex {
            free: vec![false; len],
            num_free: 0,
            by_start: BTreeMap::new(),
        };
        let mut run_start: Option<usize> = None;
        for rank in 0..len {
            let free = machine.is_free(curve.node_at(rank));
            index.free[rank] = free;
            if free {
                index.num_free += 1;
                if run_start.is_none() {
                    run_start = Some(rank);
                }
            } else if let Some(start) = run_start.take() {
                index.insert_interval(start, rank - start);
            }
        }
        if let Some(start) = run_start {
            index.insert_interval(start, len - start);
        }
        index
    }

    /// Total number of ranks covered.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when the index covers no ranks.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Number of currently free ranks.
    pub fn num_free(&self) -> usize {
        self.num_free
    }

    /// Number of maximal free intervals.
    pub fn num_intervals(&self) -> usize {
        self.by_start.len()
    }

    /// True if `rank` is free.
    pub fn is_free(&self, rank: usize) -> bool {
        self.free[rank]
    }

    fn insert_interval(&mut self, start: usize, len: usize) {
        debug_assert!(len > 0);
        self.by_start.insert(start, len);
    }

    fn remove_interval(&mut self, start: usize, _len: usize) {
        self.by_start.remove(&start);
    }

    /// The interval containing `rank`, if `rank` is free.
    fn interval_containing(&self, rank: usize) -> Option<(usize, usize)> {
        let (&start, &len) = self.by_start.range(..=rank).next_back()?;
        (rank < start + len).then_some((start, len))
    }

    /// Marks the `run_len` consecutive ranks starting at `run_start`
    /// busy, splitting their containing interval with O(log n) tree
    /// operations **total** (consecutive free ranks always lie in one
    /// maximal interval, so one split suffices for any grant chunk).
    ///
    /// Returns `false` (leaving the index unchanged) when the run is not
    /// entirely free — the caller treats that as drift and resyncs.
    pub fn occupy_run(&mut self, run_start: usize, run_len: usize) -> bool {
        if run_len == 0 {
            return true;
        }
        if run_start + run_len > self.free.len() {
            return false;
        }
        let Some((start, len)) = self.interval_containing(run_start) else {
            return false;
        };
        if run_start + run_len > start + len {
            return false; // spills past the containing interval => not all free
        }
        self.remove_interval(start, len);
        if run_start > start {
            self.insert_interval(start, run_start - start);
        }
        if run_start + run_len < start + len {
            self.insert_interval(run_start + run_len, start + len - run_start - run_len);
        }
        self.free[run_start..run_start + run_len].fill(false);
        self.num_free -= run_len;
        true
    }

    /// Marks `rank` busy (single-rank form of
    /// [`FreeIntervalIndex::occupy_run`]).
    pub fn occupy_rank(&mut self, rank: usize) -> bool {
        self.occupy_run(rank, 1)
    }

    /// Marks the `run_len` consecutive ranks starting at `run_start`
    /// free, merging with the adjacent intervals with O(log n) tree
    /// operations total.
    ///
    /// Returns `false` (leaving the index unchanged) when the run is not
    /// entirely busy.
    pub fn release_run(&mut self, run_start: usize, run_len: usize) -> bool {
        if run_len == 0 {
            return true;
        }
        if run_start + run_len > self.free.len()
            || self.free[run_start..run_start + run_len].iter().any(|&f| f)
        {
            return false;
        }
        let mut start = run_start;
        let mut len = run_len;
        // Merge with a run ending exactly at `run_start`.
        if let Some((&left_start, &left_len)) = self.by_start.range(..run_start).next_back() {
            if left_start + left_len == run_start {
                self.remove_interval(left_start, left_len);
                start = left_start;
                len += left_len;
            }
        }
        // Merge with a run starting exactly past the released span.
        if let Some(&right_len) = self.by_start.get(&(run_start + run_len)) {
            self.remove_interval(run_start + run_len, right_len);
            len += right_len;
        }
        self.insert_interval(start, len);
        self.free[run_start..run_start + run_len].fill(true);
        self.num_free += run_len;
        true
    }

    /// Marks `rank` free (single-rank form of
    /// [`FreeIntervalIndex::release_run`]).
    pub fn release_rank(&mut self, rank: usize) -> bool {
        self.release_run(rank, 1)
    }

    /// Applies `op` to `ranks` grouped into maximal consecutive runs (the
    /// common case — a whole allocation — is one or a few runs, each one
    /// tree operation). `ranks` may be in any order; a sorted copy is
    /// made only when needed. Returns `false` on the first failing run,
    /// leaving earlier runs applied — callers treat `false` as drift and
    /// rebuild.
    fn apply_grouped(
        &mut self,
        ranks: &[usize],
        mut op: impl FnMut(&mut Self, usize, usize) -> bool,
    ) -> bool {
        let sorted_storage;
        let sorted: &[usize] = if ranks.windows(2).all(|w| w[0] < w[1]) {
            ranks
        } else {
            let mut copy = ranks.to_vec();
            copy.sort_unstable();
            sorted_storage = copy;
            &sorted_storage
        };
        let mut i = 0usize;
        while i < sorted.len() {
            let start = sorted[i];
            let mut len = 1usize;
            while i + len < sorted.len() && sorted[i + len] == start + len {
                len += 1;
            }
            if !op(self, start, len) {
                return false;
            }
            i += len;
        }
        true
    }

    /// Marks every rank in `ranks` busy (run-grouped; see
    /// [`FreeIntervalIndex::occupy_run`] for the failure contract).
    pub fn occupy_ranks(&mut self, ranks: &[usize]) -> bool {
        self.apply_grouped(ranks, |index, start, len| index.occupy_run(start, len))
    }

    /// Marks every rank in `ranks` free (run-grouped; see
    /// [`FreeIntervalIndex::release_run`] for the failure contract).
    pub fn release_ranks(&mut self, ranks: &[usize]) -> bool {
        self.apply_grouped(ranks, |index, start, len| index.release_run(start, len))
    }

    /// The maximal free intervals in increasing rank order (same order and
    /// contents as [`crate::curve_alloc::free_intervals`]).
    pub fn intervals(&self) -> impl Iterator<Item = FreeInterval> + '_ {
        self.by_start
            .iter()
            .map(|(&start, &len)| FreeInterval { start, len })
    }

    /// The interval the given strategy picks for a request of `size`, or
    /// `None` when no interval fits (the caller then applies the
    /// minimum-span fallback). Decision-identical to running the strategy
    /// over the rescan-produced interval list.
    pub fn select(&self, strategy: SelectionStrategy, size: usize) -> Option<FreeInterval> {
        match strategy {
            // The sorted-free-list rule does not pick an interval.
            SelectionStrategy::FreeList => None,
            SelectionStrategy::FirstFit => self
                .by_start
                .iter()
                .find(|(_, &len)| len >= size)
                .map(|(&start, &len)| FreeInterval { start, len }),
            SelectionStrategy::BestFit => {
                // Smallest fitting length; iterating in start order with a
                // strict `<` keeps the lowest start on length ties.
                let mut best: Option<FreeInterval> = None;
                for (&start, &len) in &self.by_start {
                    if len >= size && best.is_none_or(|b| len < b.len) {
                        best = Some(FreeInterval { start, len });
                    }
                }
                best
            }
            SelectionStrategy::SumOfSquares => {
                // The naive path minimises (total_sq + delta, start) where
                // total_sq is the same for every candidate, so the argmin
                // reduces to (delta, start).
                self.by_start
                    .iter()
                    .filter(|(_, &len)| len >= size)
                    .min_by_key(|(&start, &len)| {
                        let remaining = len - size;
                        (
                            (remaining * remaining) as i64 - (len * len) as i64,
                            start as i64,
                        )
                    })
                    .map(|(&start, &len)| FreeInterval { start, len })
            }
        }
    }

    /// The first `size` free ranks in curve order (sorted-free-list rule).
    pub fn free_list_ranks(&self, size: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(size);
        for (&start, &len) in &self.by_start {
            for rank in start..start + len {
                out.push(rank);
                if out.len() == size {
                    return out;
                }
            }
        }
        out
    }

    /// Minimum-span fallback: the window of `size` free ranks spanning the
    /// smallest rank range (ties towards the lowest start, matching the
    /// rescan path).
    pub fn min_span_ranks(&self, size: usize) -> Vec<usize> {
        let free_ranks: Vec<usize> = self
            .by_start
            .iter()
            .flat_map(|(&start, &len)| start..start + len)
            .collect();
        debug_assert!(free_ranks.len() >= size);
        let mut best_start = 0usize;
        let mut best_span = usize::MAX;
        for i in 0..=free_ranks.len() - size {
            let span = free_ranks[i + size - 1] - free_ranks[i];
            if span < best_span {
                best_span = span;
                best_start = i;
            }
        }
        free_ranks[best_start..best_start + size].to_vec()
    }

    /// Exhaustive structural validation against a machine state (test and
    /// debug helper; O(n)).
    pub fn is_consistent_with(&self, curve: &CurveOrder, machine: &MachineState) -> bool {
        if self.free.len() != curve.len() {
            return false;
        }
        // Bitmap must match the machine.
        for rank in 0..curve.len() {
            if self.free[rank] != machine.is_free(curve.node_at(rank)) {
                return false;
            }
        }
        // The interval map must describe exactly the bitmap's runs.
        let mut covered = 0usize;
        let mut prev_end: Option<usize> = None;
        for (&start, &len) in &self.by_start {
            if len == 0 {
                return false;
            }
            // Maximality: the run must be surrounded by busy ranks.
            if prev_end == Some(start) {
                return false;
            }
            if start > 0 && self.free[start - 1] {
                return false;
            }
            if start + len < self.free.len() && self.free[start + len] {
                return false;
            }
            if !(start..start + len).all(|r| self.free[r]) {
                return false;
            }
            covered += len;
            prev_end = Some(start + len);
        }
        covered == self.num_free && self.num_free == machine.num_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve_alloc::free_intervals;
    use commalloc_mesh::curve::CurveKind;
    use commalloc_mesh::Mesh2D;

    fn naive_intervals(index_len: usize, free: &[bool]) -> Vec<FreeInterval> {
        let mut out = Vec::new();
        let mut run_start = None;
        for (rank, &rank_free) in free.iter().enumerate().take(index_len) {
            match (rank_free, run_start) {
                (true, None) => run_start = Some(rank),
                (false, Some(start)) => {
                    out.push(FreeInterval {
                        start,
                        len: rank - start,
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            out.push(FreeInterval {
                start,
                len: index_len - start,
            });
        }
        out
    }

    #[test]
    fn occupy_and_release_maintain_maximal_runs() {
        let mut index = FreeIntervalIndex::all_free(10);
        let mut shadow = vec![true; 10];
        // A deterministic occupy/release script with splits and merges.
        let script: &[(bool, usize)] = &[
            (true, 4),
            (true, 5),
            (true, 0),
            (true, 9),
            (false, 4),
            (true, 2),
            (false, 5),
            (false, 0),
            (true, 4),
            (false, 9),
            (false, 2),
            (false, 4),
        ];
        for &(occupy, rank) in script {
            if occupy {
                assert!(index.occupy_rank(rank));
                shadow[rank] = false;
            } else {
                assert!(index.release_rank(rank));
                shadow[rank] = true;
            }
            let expected = naive_intervals(10, &shadow);
            let got: Vec<FreeInterval> = index.intervals().collect();
            assert_eq!(got, expected, "after {:?} rank {rank}", occupy);
            assert_eq!(index.num_free(), shadow.iter().filter(|&&f| f).count());
        }
    }

    #[test]
    fn double_occupy_and_double_release_are_rejected() {
        let mut index = FreeIntervalIndex::all_free(4);
        assert!(index.occupy_rank(1));
        assert!(!index.occupy_rank(1), "second occupy must report drift");
        assert!(index.release_rank(1));
        assert!(!index.release_rank(1), "second release must report drift");
        assert_eq!(index.num_free(), 4);
    }

    #[test]
    fn from_machine_matches_rescan() {
        let mesh = Mesh2D::new(8, 8);
        let curve = CurveOrder::build(CurveKind::Hilbert, mesh);
        let mut machine = MachineState::new(mesh);
        let busy: Vec<_> = (0..64)
            .filter(|i| i % 3 == 0)
            .map(|i| curve.node_at(i))
            .collect();
        machine.occupy(&busy);
        let index = FreeIntervalIndex::from_machine(&curve, &machine);
        let expected = free_intervals(&curve, &machine);
        let got: Vec<FreeInterval> = index.intervals().collect();
        assert_eq!(got, expected);
        assert!(index.is_consistent_with(&curve, &machine));
    }

    #[test]
    fn best_fit_lookup_matches_linear_scan() {
        let mut index = FreeIntervalIndex::all_free(20);
        // Carve intervals of lengths 3, 5, 2, 4 (and several busy gaps).
        for rank in [3, 9, 12, 17, 18, 19] {
            index.occupy_rank(rank);
        }
        // Intervals now: [0,3) len 3, [4,9) len 5, [10,12) len 2, [13,17) len 4.
        for size in 1..=6 {
            let scan = index
                .intervals()
                .filter(|iv| iv.len >= size)
                .min_by_key(|iv| (iv.len - size, iv.start));
            assert_eq!(
                index.select(SelectionStrategy::BestFit, size),
                scan,
                "size {size}"
            );
            let first = index.intervals().find(|iv| iv.len >= size);
            assert_eq!(
                index.select(SelectionStrategy::FirstFit, size),
                first,
                "size {size}"
            );
        }
        assert_eq!(index.select(SelectionStrategy::BestFit, 7), None);
    }

    #[test]
    fn free_list_and_min_span_walk_intervals_in_rank_order() {
        let mut index = FreeIntervalIndex::all_free(8);
        index.occupy_rank(1);
        index.occupy_rank(4);
        // Free ranks: 0, 2, 3, 5, 6, 7.
        assert_eq!(index.free_list_ranks(4), vec![0, 2, 3, 5]);
        // Tightest window of 4: {2,3,5,6} (span 4) beats {0,2,3,5} (span 5).
        assert_eq!(index.min_span_ranks(4), vec![2, 3, 5, 6]);
    }
}
