//! Contiguous (submesh-only) allocation, the historical baseline.
//!
//! The paper's survey opens with the first generation of allocators, which
//! "allocated only convex sets of processors to a job" (Bhattacharya & Tsai,
//! Chuang & Tzeng, Li & Cheng, Zhu). Such allocators eliminate inter-job
//! contention when routing stays inside the allocation, but they refuse to
//! start a job unless a whole free submesh of the right shape exists — which
//! is exactly why "requiring that jobs be allocated to convex sets of
//! processors reduces system utilization to levels unacceptable for any
//! government-audited system".
//!
//! This module implements that baseline so the benches can reproduce the
//! trade-off quantitatively: a [`ContiguousAllocator`] derives a near-square
//! shape from the requested processor count (CPlant requests are shapeless,
//! as for MC), scans the mesh for a fully-free placement of that shape in
//! either orientation, and **fails** (returns `None`) when none exists even
//! if enough scattered processors are free. The simulation engine keeps the
//! job queued in that case, so the utilization loss shows up directly in the
//! response-time results.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::{Coord, Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// How a placement is chosen among all fully-free submeshes of the shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubmeshStrategy {
    /// The first free placement in row-major scan order (frame sliding /
    /// first fit of Zhu).
    FirstFit,
    /// The free placement touching the largest number of busy or boundary
    /// cells, which packs jobs against existing allocations and the mesh
    /// edge to keep the remaining free area as unfragmented as possible
    /// (best fit of Zhu).
    BestFit,
}

impl SubmeshStrategy {
    /// Short human-readable name.
    pub fn short_name(&self) -> &'static str {
        match self {
            SubmeshStrategy::FirstFit => "FF",
            SubmeshStrategy::BestFit => "BF",
        }
    }
}

/// Submesh-only allocator: every job gets a free `w × h` rectangle or waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContiguousAllocator {
    strategy: SubmeshStrategy,
}

impl ContiguousAllocator {
    /// First-fit submesh allocation.
    pub fn first_fit() -> Self {
        ContiguousAllocator {
            strategy: SubmeshStrategy::FirstFit,
        }
    }

    /// Best-fit submesh allocation.
    pub fn best_fit() -> Self {
        ContiguousAllocator {
            strategy: SubmeshStrategy::BestFit,
        }
    }

    /// The placement strategy.
    pub fn strategy(&self) -> SubmeshStrategy {
        self.strategy
    }

    /// The near-square shape derived from a processor count, identical to the
    /// rule MC uses so the contiguous baseline and MC look for the same
    /// footprint.
    pub fn shape_for(size: usize) -> (u16, u16) {
        let w = (size as f64).sqrt().ceil() as u16;
        let w = w.max(1);
        let h = size.div_ceil(w as usize) as u16;
        (w, h.max(1))
    }

    /// The candidate shapes tried, in order: the near-square shape, its
    /// transpose, and (for requests that do not factor nicely) a final
    /// `1 × size` strip so small jobs can still slot into narrow free
    /// corridors.
    pub fn candidate_shapes(size: usize, mesh: Mesh2D) -> Vec<(u16, u16)> {
        let (w, h) = Self::shape_for(size);
        let mut shapes = vec![(w, h)];
        if w != h {
            shapes.push((h, w));
        }
        if size <= mesh.width() as usize && w != 1 {
            shapes.push((size as u16, 1));
        }
        if size <= mesh.height() as usize && h != 1 {
            shapes.push((1, size as u16));
        }
        shapes.retain(|&(sw, sh)| sw <= mesh.width() && sh <= mesh.height());
        shapes
    }

    /// Whether the `w × h` submesh at `origin` lies inside the mesh and is
    /// entirely free.
    fn placement_is_free(machine: &MachineState, origin: Coord, w: u16, h: u16) -> bool {
        let mesh = machine.mesh();
        if origin.x + w > mesh.width() || origin.y + h > mesh.height() {
            return false;
        }
        for dy in 0..h {
            for dx in 0..w {
                let c = Coord::new(origin.x + dx, origin.y + dy);
                if !machine.is_free(mesh.id_of(c)) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of cells bordering the `w × h` placement that are busy or
    /// outside the mesh. Higher scores mean the placement is tucked against
    /// existing allocations or the machine boundary.
    fn boundary_pressure(machine: &MachineState, origin: Coord, w: u16, h: u16) -> usize {
        let mesh = machine.mesh();
        let mut pressure = 0usize;
        let x0 = origin.x as i32 - 1;
        let y0 = origin.y as i32 - 1;
        let x1 = origin.x as i32 + w as i32;
        let y1 = origin.y as i32 + h as i32;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let on_ring = x == x0 || x == x1 || y == y0 || y == y1;
                if !on_ring {
                    continue;
                }
                if x < 0 || y < 0 || x >= mesh.width() as i32 || y >= mesh.height() as i32 {
                    pressure += 1;
                    continue;
                }
                let c = Coord::new(x as u16, y as u16);
                if !machine.is_free(mesh.id_of(c)) {
                    pressure += 1;
                }
            }
        }
        pressure
    }

    /// Finds a placement of the `w × h` shape according to the strategy.
    fn find_placement(&self, machine: &MachineState, w: u16, h: u16) -> Option<Coord> {
        let mesh = machine.mesh();
        let mut best: Option<(usize, Coord)> = None;
        for y in 0..=(mesh.height().saturating_sub(h)) {
            for x in 0..=(mesh.width().saturating_sub(w)) {
                let origin = Coord::new(x, y);
                if !Self::placement_is_free(machine, origin, w, h) {
                    continue;
                }
                match self.strategy {
                    SubmeshStrategy::FirstFit => return Some(origin),
                    SubmeshStrategy::BestFit => {
                        let pressure = Self::boundary_pressure(machine, origin, w, h);
                        let better = match best {
                            None => true,
                            Some((best_pressure, _)) => pressure > best_pressure,
                        };
                        if better {
                            best = Some((pressure, origin));
                        }
                    }
                }
            }
        }
        best.map(|(_, origin)| origin)
    }

    /// The nodes of a `w × h` placement in row-major order, truncated to the
    /// requested count (a 14-processor job in a 4 × 4 footprint leaves the
    /// last two cells of the rectangle free).
    fn take_nodes(mesh: Mesh2D, origin: Coord, w: u16, h: u16, size: usize) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(size);
        'outer: for dy in 0..h {
            for dx in 0..w {
                if nodes.len() == size {
                    break 'outer;
                }
                nodes.push(mesh.id_of(Coord::new(origin.x + dx, origin.y + dy)));
            }
        }
        nodes
    }
}

impl Allocator for ContiguousAllocator {
    fn name(&self) -> String {
        format!("contiguous {}", self.strategy.short_name())
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let mesh = machine.mesh();
        for (w, h) in Self::candidate_shapes(req.size, mesh) {
            if let Some(origin) = self.find_placement(machine, w, h) {
                let nodes = Self::take_nodes(mesh, origin, w, h, req.size);
                debug_assert_eq!(nodes.len(), req.size);
                return Some(Allocation::new(req.job_id, nodes));
            }
        }
        // Enough processors are free but no rectangle fits: the job waits.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with_busy(mesh: Mesh2D, busy: &[NodeId]) -> MachineState {
        let mut m = MachineState::new(mesh);
        m.occupy(busy);
        m
    }

    #[test]
    fn shape_for_is_near_square() {
        assert_eq!(ContiguousAllocator::shape_for(1), (1, 1));
        assert_eq!(ContiguousAllocator::shape_for(4), (2, 2));
        assert_eq!(ContiguousAllocator::shape_for(14), (4, 4));
        assert_eq!(ContiguousAllocator::shape_for(30), (6, 5));
        assert_eq!(ContiguousAllocator::shape_for(128), (12, 11));
    }

    #[test]
    fn allocation_on_an_empty_mesh_is_contiguous() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        for strategy in [
            ContiguousAllocator::first_fit(),
            ContiguousAllocator::best_fit(),
        ] {
            let mut a = strategy;
            for size in [1usize, 4, 14, 30, 64, 128] {
                let alloc = a.allocate(&AllocRequest::new(1, size), &machine).unwrap();
                assert_eq!(alloc.nodes.len(), size);
                assert_eq!(mesh.components(&alloc.nodes), 1, "size {size}");
            }
        }
    }

    #[test]
    fn fails_when_no_rectangle_exists_despite_free_processors() {
        // A 4x4 mesh with a busy column down the middle: 12 processors are
        // free, but no 2x2 submesh is fully free on the left half ... wait,
        // the left 1-wide and right 2-wide strips remain. Make it tighter:
        // occupy a checkerboard so no 2x2 rectangle is free.
        let mesh = Mesh2D::new(4, 4);
        let busy: Vec<NodeId> = mesh
            .nodes()
            .filter(|n| {
                let c = mesh.coord_of(*n);
                (c.x + c.y).is_multiple_of(2)
            })
            .collect();
        let machine = machine_with_busy(mesh, &busy);
        assert_eq!(machine.num_free(), 8);
        let mut a = ContiguousAllocator::first_fit();
        // 4 processors would need a 2x2 (or 4x1 / 1x4) free rectangle; the
        // checkerboard has none.
        assert!(a.allocate(&AllocRequest::new(1, 4), &machine).is_none());
        // A single processor still fits.
        assert!(a.allocate(&AllocRequest::new(1, 1), &machine).is_some());
    }

    #[test]
    fn strip_shapes_let_small_jobs_use_corridors() {
        // Only row y == 3 is free: a 3-processor job fits as a 3x1 strip even
        // though the 2x2 near-square shape does not.
        let mesh = Mesh2D::new(8, 8);
        let busy: Vec<NodeId> = mesh.nodes().filter(|n| mesh.coord_of(*n).y != 3).collect();
        let machine = machine_with_busy(mesh, &busy);
        let mut a = ContiguousAllocator::first_fit();
        let alloc = a.allocate(&AllocRequest::new(1, 3), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 3);
        assert!(alloc.nodes.iter().all(|&n| mesh.coord_of(n).y == 3));
    }

    #[test]
    fn first_fit_takes_the_lowest_placement() {
        let mesh = Mesh2D::new(8, 8);
        let machine = MachineState::new(mesh);
        let mut a = ContiguousAllocator::first_fit();
        let alloc = a.allocate(&AllocRequest::new(1, 4), &machine).unwrap();
        let coords: Vec<Coord> = alloc.nodes.iter().map(|&n| mesh.coord_of(n)).collect();
        assert!(coords.contains(&Coord::new(0, 0)));
        assert!(coords.contains(&Coord::new(1, 1)));
    }

    #[test]
    fn best_fit_packs_against_existing_allocations() {
        let mesh = Mesh2D::new(8, 8);
        // Occupy the left 2 columns; best fit should place the next 2x2 job
        // against that block (or the mesh boundary), not float it mid-mesh.
        let busy: Vec<NodeId> = mesh.nodes().filter(|n| mesh.coord_of(*n).x < 2).collect();
        let machine = machine_with_busy(mesh, &busy);
        let mut bf = ContiguousAllocator::best_fit();
        let alloc = bf.allocate(&AllocRequest::new(1, 4), &machine).unwrap();
        let touches_busy_or_border = alloc.nodes.iter().any(|&n| {
            let c = mesh.coord_of(n);
            c.x == 2 || c.x == 7 || c.y == 0 || c.y == 7
        });
        assert!(
            touches_busy_or_border,
            "best fit should pack against the busy block or the boundary"
        );
        assert_eq!(mesh.components(&alloc.nodes), 1);
    }

    #[test]
    fn oversized_and_zero_requests_are_rejected() {
        let mesh = Mesh2D::new(4, 4);
        let machine = MachineState::new(mesh);
        let mut a = ContiguousAllocator::best_fit();
        assert!(a.allocate(&AllocRequest::new(1, 0), &machine).is_none());
        assert!(a.allocate(&AllocRequest::new(1, 17), &machine).is_none());
        assert!(a.allocate(&AllocRequest::new(1, 16), &machine).is_some());
    }

    #[test]
    fn candidate_shapes_respect_mesh_bounds() {
        let mesh = Mesh2D::new(4, 4);
        for size in 1..=16usize {
            for (w, h) in ContiguousAllocator::candidate_shapes(size, mesh) {
                assert!(w <= 4 && h <= 4, "size {size} shape {w}x{h}");
                assert!(w as usize * h as usize >= size);
            }
        }
    }
}
