//! The [`Allocator`] trait and the catalogue of named configurations.

use crate::buddy::BuddyAllocator;
use crate::contiguous::ContiguousAllocator;
use crate::curve_alloc::{CurveAllocator, SelectionStrategy};
use crate::gen_alg::GenAlgAllocator;
use crate::greedy::GreedyAllocator;
use crate::hybrid::HybridAllocator;
use crate::machine::MachineState;
use crate::mbs::MbsAllocator;
use crate::mc::McAllocator;
use crate::paging::PagingAllocator;
use crate::random_alloc::RandomAllocator;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::curve::CurveKind;
use commalloc_mesh::Mesh2D;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor allocator.
///
/// The allocator is invoked by the scheduler once a job has been selected to
/// run; it must immediately choose the processors (or report that it cannot).
/// Allocators are *stateless with respect to machine occupancy* — they read
/// the current [`MachineState`] on every call — so the simulator owns the
/// single source of truth about which processors are busy.
pub trait Allocator: Send {
    /// Human-readable name matching the paper's terminology where possible
    /// (e.g. `"Hilbert w/BF"`, `"MC1x1"`).
    fn name(&self) -> String;

    /// Chooses `req.size` free processors for the job, or returns `None` when
    /// the request cannot be satisfied (more processors requested than are
    /// free). The returned node list is in *rank order* (see
    /// [`Allocation`]).
    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation>;

    /// Notifies the allocator that a job's processors were released. Most
    /// allocators are stateless and ignore this; it exists so stateful
    /// strategies (e.g. ones caching free intervals) can stay consistent.
    fn release(&mut self, _allocation: &Allocation, _machine: &MachineState) {}
}

/// Every allocator configuration evaluated in the paper, plus the extras kept
/// for ablation studies.
///
/// The first twelve variants are exactly the rows of the paper's Figure 11
/// table; [`AllocatorKind::paper_set`] returns the nine configurations that
/// appear in the response-time plots (Figures 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// S-curve ordering with Best Fit interval selection.
    SCurveBestFit,
    /// Hilbert ordering with Best Fit interval selection.
    HilbertBestFit,
    /// Hilbert ordering with First Fit interval selection.
    HilbertFirstFit,
    /// H-indexing ordering with Best Fit interval selection.
    HIndexBestFit,
    /// S-curve ordering with First Fit interval selection.
    SCurveFirstFit,
    /// H-indexing ordering with First Fit interval selection.
    HIndexFirstFit,
    /// MC with a near-square derived shape.
    Mc,
    /// MC1x1 (shell 0 is a single processor).
    Mc1x1,
    /// S-curve ordering with the sorted free list (Paging, s = 0).
    SCurveFreeList,
    /// H-indexing ordering with the sorted free list.
    HIndexFreeList,
    /// Gen-Alg (Krumke et al. approximation).
    GenAlg,
    /// Hilbert ordering with the sorted free list.
    HilbertFreeList,
    /// Hilbert ordering with Sum-of-Squares selection (ablation only).
    HilbertSumOfSquares,
    /// Row-major ordering with Best Fit (ablation only).
    RowMajorBestFit,
    /// Uniformly random free processors (ablation only).
    Random,
    /// Morton (Z-order) ordering with Best Fit (ablation only).
    MortonBestFit,
    /// Peano ordering with Best Fit (ablation only).
    PeanoBestFit,
    /// Submesh-only first fit: the job waits until a free near-square
    /// rectangle exists (the historical contiguous baseline).
    ContiguousFirstFit,
    /// Submesh-only best fit (packs placements against busy regions).
    ContiguousBestFit,
    /// 2-D buddy system over aligned power-of-two square blocks.
    Buddy2D,
    /// Multiple Buddy Strategy (non-contiguous buddy blocks).
    Mbs,
    /// Best-of-several hybrid over Hilbert Best Fit and MC (extension
    /// answering the paper's closing discussion).
    Hybrid,
    /// Greedy incremental pairwise-distance minimisation (the cheap
    /// relative of Gen-Alg; extension).
    Greedy,
    /// Paging with 2 × 2 pages ordered along the Hilbert curve (the paper
    /// uses page size 0; larger pages are kept to quantify the internal
    /// fragmentation they cause).
    Paging2x2,
}

impl AllocatorKind {
    /// The nine configurations plotted in Figures 7 and 8 of the paper
    /// (First Fit results were measured but omitted from the graphs).
    pub fn paper_set() -> [AllocatorKind; 9] {
        [
            AllocatorKind::Mc,
            AllocatorKind::Mc1x1,
            AllocatorKind::GenAlg,
            AllocatorKind::HilbertFreeList,
            AllocatorKind::HilbertBestFit,
            AllocatorKind::HIndexFreeList,
            AllocatorKind::HIndexBestFit,
            AllocatorKind::SCurveFreeList,
            AllocatorKind::SCurveBestFit,
        ]
    }

    /// The twelve configurations of the paper's Figure 11 contiguity table.
    pub fn figure11_set() -> [AllocatorKind; 12] {
        [
            AllocatorKind::SCurveBestFit,
            AllocatorKind::HilbertBestFit,
            AllocatorKind::HilbertFirstFit,
            AllocatorKind::HIndexBestFit,
            AllocatorKind::SCurveFirstFit,
            AllocatorKind::HIndexFirstFit,
            AllocatorKind::Mc,
            AllocatorKind::Mc1x1,
            AllocatorKind::SCurveFreeList,
            AllocatorKind::HIndexFreeList,
            AllocatorKind::GenAlg,
            AllocatorKind::HilbertFreeList,
        ]
    }

    /// The additional configurations implemented beyond the paper's plots:
    /// ablation curves, the historical contiguous/buddy baselines and the
    /// hybrid meta-strategy.
    pub fn extended_set() -> [AllocatorKind; 12] {
        [
            AllocatorKind::HilbertSumOfSquares,
            AllocatorKind::RowMajorBestFit,
            AllocatorKind::Random,
            AllocatorKind::MortonBestFit,
            AllocatorKind::PeanoBestFit,
            AllocatorKind::ContiguousFirstFit,
            AllocatorKind::ContiguousBestFit,
            AllocatorKind::Buddy2D,
            AllocatorKind::Mbs,
            AllocatorKind::Hybrid,
            AllocatorKind::Greedy,
            AllocatorKind::Paging2x2,
        ]
    }

    /// Every configuration the crate implements.
    pub fn all() -> Vec<AllocatorKind> {
        let mut v = Self::figure11_set().to_vec();
        v.extend(Self::extended_set());
        v
    }

    /// True for allocators that can refuse a request even though enough
    /// processors are free (the contiguous-only strategies): the simulation
    /// engine keeps such jobs queued, reproducing the utilization loss the
    /// paper's survey attributes to convex-only allocation.
    pub fn may_refuse_with_free_processors(&self) -> bool {
        matches!(
            self,
            AllocatorKind::ContiguousFirstFit
                | AllocatorKind::ContiguousBestFit
                | AllocatorKind::Buddy2D
                | AllocatorKind::Paging2x2
        )
    }

    /// The paper's name for this configuration.
    pub fn name(&self) -> &'static str {
        match self {
            AllocatorKind::SCurveBestFit => "S-curve w/BF",
            AllocatorKind::HilbertBestFit => "Hilbert w/BF",
            AllocatorKind::HilbertFirstFit => "Hilbert w/FF",
            AllocatorKind::HIndexBestFit => "H-index w/BF",
            AllocatorKind::SCurveFirstFit => "S-curve w/FF",
            AllocatorKind::HIndexFirstFit => "H-index w/FF",
            AllocatorKind::Mc => "MC",
            AllocatorKind::Mc1x1 => "MC1x1",
            AllocatorKind::SCurveFreeList => "S-curve",
            AllocatorKind::HIndexFreeList => "H-index",
            AllocatorKind::GenAlg => "Gen-Alg",
            AllocatorKind::HilbertFreeList => "Hilbert",
            AllocatorKind::HilbertSumOfSquares => "Hilbert w/SS",
            AllocatorKind::RowMajorBestFit => "row-major w/BF",
            AllocatorKind::Random => "Random",
            AllocatorKind::MortonBestFit => "Morton w/BF",
            AllocatorKind::PeanoBestFit => "Peano w/BF",
            AllocatorKind::ContiguousFirstFit => "contiguous FF",
            AllocatorKind::ContiguousBestFit => "contiguous BF",
            AllocatorKind::Buddy2D => "2-D buddy",
            AllocatorKind::Mbs => "MBS",
            AllocatorKind::Hybrid => "hybrid",
            AllocatorKind::Greedy => "greedy",
            AllocatorKind::Paging2x2 => "Paging(2x2)",
        }
    }

    /// Parses a paper-style name back into a kind (used by the CLI binaries).
    pub fn parse(name: &str) -> Option<AllocatorKind> {
        Self::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name.trim()))
    }

    /// Builds the allocator over `mesh`. The random baseline is seeded from
    /// the kind so repeated builds are deterministic.
    pub fn build(&self, mesh: Mesh2D) -> Box<dyn Allocator> {
        let curve = |kind: CurveKind, strategy: SelectionStrategy| -> Box<dyn Allocator> {
            Box::new(CurveAllocator::new(kind, mesh, strategy))
        };
        match self {
            AllocatorKind::SCurveBestFit => curve(CurveKind::SCurve, SelectionStrategy::BestFit),
            AllocatorKind::HilbertBestFit => curve(CurveKind::Hilbert, SelectionStrategy::BestFit),
            AllocatorKind::HilbertFirstFit => {
                curve(CurveKind::Hilbert, SelectionStrategy::FirstFit)
            }
            AllocatorKind::HIndexBestFit => curve(CurveKind::HIndexing, SelectionStrategy::BestFit),
            AllocatorKind::SCurveFirstFit => curve(CurveKind::SCurve, SelectionStrategy::FirstFit),
            AllocatorKind::HIndexFirstFit => {
                curve(CurveKind::HIndexing, SelectionStrategy::FirstFit)
            }
            AllocatorKind::Mc => Box::new(McAllocator::mc()),
            AllocatorKind::Mc1x1 => Box::new(McAllocator::mc1x1()),
            AllocatorKind::SCurveFreeList => curve(CurveKind::SCurve, SelectionStrategy::FreeList),
            AllocatorKind::HIndexFreeList => {
                curve(CurveKind::HIndexing, SelectionStrategy::FreeList)
            }
            AllocatorKind::GenAlg => Box::new(GenAlgAllocator::new()),
            AllocatorKind::HilbertFreeList => {
                curve(CurveKind::Hilbert, SelectionStrategy::FreeList)
            }
            AllocatorKind::HilbertSumOfSquares => {
                curve(CurveKind::Hilbert, SelectionStrategy::SumOfSquares)
            }
            AllocatorKind::RowMajorBestFit => {
                curve(CurveKind::RowMajor, SelectionStrategy::BestFit)
            }
            AllocatorKind::Random => Box::new(RandomAllocator::new(0x5eed_0000)),
            AllocatorKind::MortonBestFit => curve(CurveKind::Morton, SelectionStrategy::BestFit),
            AllocatorKind::PeanoBestFit => curve(CurveKind::Peano, SelectionStrategy::BestFit),
            AllocatorKind::ContiguousFirstFit => Box::new(ContiguousAllocator::first_fit()),
            AllocatorKind::ContiguousBestFit => Box::new(ContiguousAllocator::best_fit()),
            AllocatorKind::Buddy2D => Box::new(BuddyAllocator::new()),
            AllocatorKind::Mbs => Box::new(MbsAllocator::new()),
            AllocatorKind::Hybrid => Box::new(HybridAllocator::new(
                "hybrid",
                vec![
                    Box::new(CurveAllocator::new(
                        CurveKind::Hilbert,
                        mesh,
                        SelectionStrategy::BestFit,
                    )),
                    Box::new(McAllocator::mc()),
                ],
            )),
            AllocatorKind::Greedy => Box::new(GreedyAllocator::new()),
            AllocatorKind::Paging2x2 => Box::new(PagingAllocator::new(CurveKind::Hilbert, mesh, 1)),
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_allocates_on_both_paper_meshes() {
        for mesh in [Mesh2D::square_16x16(), Mesh2D::paragon_16x22()] {
            for kind in AllocatorKind::all() {
                let machine = MachineState::new(mesh);
                let mut alloc = kind.build(mesh);
                let req = AllocRequest::new(1, 14);
                let a = alloc
                    .allocate(&req, &machine)
                    .unwrap_or_else(|| panic!("{kind} failed on empty {mesh:?}"));
                assert_eq!(a.nodes.len(), 14, "{kind}");
                let unique: std::collections::HashSet<_> = a.nodes.iter().collect();
                assert_eq!(unique.len(), 14, "{kind} returned duplicates");
            }
        }
    }

    #[test]
    fn names_round_trip_through_parse() {
        for kind in AllocatorKind::all() {
            assert_eq!(AllocatorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(AllocatorKind::parse("no such allocator"), None);
    }

    #[test]
    fn paper_sets_have_expected_sizes_and_membership() {
        assert_eq!(AllocatorKind::paper_set().len(), 9);
        assert_eq!(AllocatorKind::figure11_set().len(), 12);
        // Every plotted configuration also appears in the Figure 11 table.
        for k in AllocatorKind::paper_set() {
            assert!(AllocatorKind::figure11_set().contains(&k));
        }
    }

    #[test]
    fn allocator_names_match_paper_terminology() {
        assert_eq!(AllocatorKind::HilbertBestFit.to_string(), "Hilbert w/BF");
        assert_eq!(AllocatorKind::Mc1x1.to_string(), "MC1x1");
        assert_eq!(AllocatorKind::HilbertFreeList.to_string(), "Hilbert");
    }
}
