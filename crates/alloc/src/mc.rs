//! MC and MC1x1: shell-based free-processor scoring (Section 2.3).
//!
//! MC (Mache, Lo & Windisch) assumes jobs request processors in a particular
//! shape, e.g. a 4 × 6 submesh. Every free processor evaluates an allocation
//! centred on itself by gathering free processors shell by shell — shell 0 is
//! the requested submesh centred on the candidate, shell `i` is the one-
//! processor-wide ring around shell `i − 1` — until the request is covered.
//! Gathered processors are weighted by their shell number and the candidate
//! with the lowest total weight wins.
//!
//! CPlant users do not supply a shape, so the paper evaluates two variants:
//!
//! * [`McAllocator::mc`] — derives a near-square `w × h` shape from the
//!   requested processor count (the advantage the paper attributes to MC).
//! * [`McAllocator::mc1x1`] — shell 0 is a single processor and shells grow
//!   as in MC; Krumke et al.'s analysis implies this is a (4 − 4/k)-
//!   approximation for average pairwise distance.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::{Coord, Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// Which shell-0 shape MC uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShapeRule {
    /// Near-square submesh large enough for the request (classic MC).
    NearSquare,
    /// Single processor (the MC1x1 variant introduced by the paper).
    Single,
}

/// The MC / MC1x1 allocator.
#[derive(Debug, Clone)]
pub struct McAllocator {
    shape: ShapeRule,
}

impl McAllocator {
    /// Classic MC with a near-square derived shape.
    pub fn mc() -> Self {
        McAllocator {
            shape: ShapeRule::NearSquare,
        }
    }

    /// The MC1x1 variant (shell 0 is one processor).
    pub fn mc1x1() -> Self {
        McAllocator {
            shape: ShapeRule::Single,
        }
    }

    /// The shell-0 dimensions used for a request of `size` processors.
    pub fn shape_for(&self, size: usize) -> (u16, u16) {
        match self.shape {
            ShapeRule::Single => (1, 1),
            ShapeRule::NearSquare => {
                // Smallest near-square submesh with area >= size.
                let w = (size as f64).sqrt().ceil() as u16;
                let w = w.max(1);
                let h = size.div_ceil(w as usize) as u16;
                (w, h.max(1))
            }
        }
    }

    /// The cells of shell `i` around a `w × h` submesh whose lower-left corner
    /// is at `origin`, clipped to the mesh. Shell 0 is the submesh itself;
    /// shell `i > 0` is the ring of the `(w + 2i) × (h + 2i)` submesh (grown
    /// by one processor on every side per shell) minus the previous shells.
    fn shell_cells(mesh: Mesh2D, origin: (i32, i32), w: u16, h: u16, shell: u32) -> Vec<Coord> {
        let grow = shell as i32;
        let x0 = origin.0 - grow;
        let y0 = origin.1 - grow;
        let x1 = origin.0 + w as i32 - 1 + grow;
        let y1 = origin.1 + h as i32 - 1 + grow;
        let mut cells = Vec::new();
        for y in y0..=y1 {
            for x in x0..=x1 {
                // Keep only the ring (cells not strictly inside the previous
                // rectangle) unless this is shell 0.
                let on_ring = shell == 0 || x == x0 || x == x1 || y == y0 || y == y1;
                if !on_ring {
                    continue;
                }
                if x < 0 || y < 0 {
                    continue;
                }
                let c = Coord::new(x as u16, y as u16);
                if mesh.contains(c) {
                    cells.push(c);
                }
            }
        }
        cells
    }

    /// Evaluates the candidate allocation centred at `center`: gathers free
    /// processors shell by shell until `size` are collected, returning the
    /// gathered processors (in shell order, nearest-first within a shell) and
    /// the total shell-weight cost. Returns `None` if the whole machine does
    /// not contain `size` free processors reachable from this centre (cannot
    /// happen when `size <= machine.num_free()` because shells eventually
    /// cover the mesh).
    fn evaluate_center(
        &self,
        machine: &MachineState,
        center: Coord,
        size: usize,
    ) -> Option<(u64, Vec<NodeId>)> {
        let mesh = machine.mesh();
        let (w, h) = self.shape_for(size);
        // Centre the shell-0 submesh on `center` (lower-left bias for even
        // dimensions, matching the submesh illustration in the paper).
        let origin = (
            center.x as i32 - ((w as i32 - 1) / 2),
            center.y as i32 - ((h as i32 - 1) / 2),
        );
        let mut cost = 0u64;
        let mut gathered: Vec<NodeId> = Vec::with_capacity(size);
        let max_shell = (mesh.width().max(mesh.height())) as u32 + 1;
        for shell in 0..=max_shell {
            let mut cells = Self::shell_cells(mesh, origin, w, h, shell);
            // Deterministic nearest-first order within the shell.
            cells.sort_by_key(|&c| (c.manhattan(center), c.y, c.x));
            for c in cells {
                if gathered.len() == size {
                    break;
                }
                let id = mesh.id_of(c);
                if machine.is_free(id) {
                    gathered.push(id);
                    cost += shell as u64;
                }
            }
            if gathered.len() == size {
                return Some((cost, gathered));
            }
        }
        None
    }
}

impl Allocator for McAllocator {
    fn name(&self) -> String {
        match self.shape {
            ShapeRule::NearSquare => "MC".to_string(),
            ShapeRule::Single => "MC1x1".to_string(),
        }
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let mesh = machine.mesh();
        let mut best: Option<(u64, NodeId, Vec<NodeId>)> = None;
        for center in machine.free_nodes() {
            let c = mesh.coord_of(center);
            if let Some((cost, nodes)) = self.evaluate_center(machine, c, req.size) {
                let better = match &best {
                    None => true,
                    Some((best_cost, best_center, _)) => {
                        cost < *best_cost || (cost == *best_cost && center.0 < best_center.0)
                    }
                };
                if better {
                    best = Some((cost, center, nodes));
                }
            }
        }
        best.map(|(_, _, nodes)| Allocation::new(req.job_id, nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_shapes() {
        let mc = McAllocator::mc();
        assert_eq!(mc.shape_for(1), (1, 1));
        assert_eq!(mc.shape_for(4), (2, 2));
        assert_eq!(mc.shape_for(6), (3, 2));
        assert_eq!(mc.shape_for(12), (4, 3));
        assert_eq!(mc.shape_for(30), (6, 5));
        let mc1 = McAllocator::mc1x1();
        assert_eq!(mc1.shape_for(30), (1, 1));
    }

    #[test]
    fn shell_zero_is_the_submesh_and_shells_ring_it() {
        let mesh = Mesh2D::new(8, 8);
        let s0 = McAllocator::shell_cells(mesh, (2, 2), 3, 1, 0);
        assert_eq!(s0.len(), 3);
        let s1 = McAllocator::shell_cells(mesh, (2, 2), 3, 1, 1);
        // Ring around a 3x1 block: a 5x3 rectangle minus the 3x1 interior.
        assert_eq!(s1.len(), 5 * 3 - 3);
        // Shells are clipped at mesh edges.
        let clipped = McAllocator::shell_cells(mesh, (0, 0), 1, 1, 1);
        assert_eq!(clipped.len(), 3);
    }

    #[test]
    fn mc_allocates_a_full_submesh_on_an_empty_machine() {
        let mesh = Mesh2D::new(16, 16);
        let machine = MachineState::new(mesh);
        let mut mc = McAllocator::mc();
        let alloc = mc.allocate(&AllocRequest::new(1, 12), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 12);
        // On an empty machine the 12 processors fit inside the 4x3 shell-0
        // submesh, so the allocation is contiguous.
        assert_eq!(mesh.components(&alloc.nodes), 1);
    }

    #[test]
    fn mc1x1_allocation_is_compact_on_an_empty_machine() {
        let mesh = Mesh2D::new(16, 16);
        let machine = MachineState::new(mesh);
        let mut mc = McAllocator::mc1x1();
        let alloc = mc.allocate(&AllocRequest::new(1, 9), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 9);
        let avg = mesh.avg_pairwise_distance(&alloc.nodes);
        // A 3x3 block achieves 2.0; the shell construction (diamond-ish
        // around a single processor) stays close.
        assert!(avg < 3.0, "MC1x1 allocation too dispersed: {avg}");
    }

    #[test]
    fn mc_only_uses_free_processors() {
        let mesh = Mesh2D::new(8, 8);
        let mut machine = MachineState::new(mesh);
        let busy: Vec<NodeId> = (16..40u32).map(NodeId).collect();
        machine.occupy(&busy);
        for mut alloc in [McAllocator::mc(), McAllocator::mc1x1()] {
            let a = alloc.allocate(&AllocRequest::new(7, 10), &machine).unwrap();
            assert_eq!(a.nodes.len(), 10);
            assert!(a.nodes.iter().all(|&n| machine.is_free(n)));
            // No duplicates.
            let unique: std::collections::HashSet<_> = a.nodes.iter().collect();
            assert_eq!(unique.len(), 10);
        }
    }

    #[test]
    fn rejects_impossible_requests() {
        let mesh = Mesh2D::new(4, 4);
        let machine = MachineState::new(mesh);
        let mut mc = McAllocator::mc();
        assert!(mc.allocate(&AllocRequest::new(1, 17), &machine).is_none());
        assert!(mc.allocate(&AllocRequest::new(1, 0), &machine).is_none());
    }

    #[test]
    fn rank_order_starts_at_the_chosen_centre_region() {
        // The first gathered processors carry shell weight 0, so they must lie
        // within the shell-0 submesh of the winning centre.
        let mesh = Mesh2D::new(8, 8);
        let machine = MachineState::new(mesh);
        let mut mc = McAllocator::mc();
        let alloc = mc.allocate(&AllocRequest::new(1, 4), &machine).unwrap();
        let (w, h) = mc.shape_for(4);
        assert_eq!((w, h), (2, 2));
        // All four processors form a 2x2 block.
        let min_x = alloc
            .nodes
            .iter()
            .map(|&n| mesh.coord_of(n).x)
            .min()
            .unwrap();
        let max_x = alloc
            .nodes
            .iter()
            .map(|&n| mesh.coord_of(n).x)
            .max()
            .unwrap();
        assert!(max_x - min_x <= 1);
    }
}
