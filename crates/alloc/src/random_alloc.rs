//! Random allocation: a dispersion-oblivious baseline.
//!
//! Not one of the paper's plotted algorithms, but the natural "no locality
//! effort at all" control used in the ablation benchmarks: it draws the
//! requested number of free processors uniformly at random.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::request::{AllocRequest, Allocation};
use commalloc_mesh::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniformly random selection of free processors.
#[derive(Debug, Clone)]
pub struct RandomAllocator {
    rng: StdRng,
}

impl RandomAllocator {
    /// Creates the allocator with a deterministic seed so simulations are
    /// reproducible.
    pub fn new(seed: u64) -> Self {
        RandomAllocator {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Allocator for RandomAllocator {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        if req.size == 0 || req.size > machine.num_free() {
            return None;
        }
        let mut free: Vec<NodeId> = machine.free_nodes().collect();
        free.shuffle(&mut self.rng);
        free.truncate(req.size);
        Some(Allocation::new(req.job_id, free))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Mesh2D;

    #[test]
    fn random_allocation_is_valid_and_seed_deterministic() {
        let mesh = Mesh2D::new(8, 8);
        let mut machine = MachineState::new(mesh);
        machine.occupy(&[NodeId(0), NodeId(1), NodeId(2)]);

        let mut a1 = RandomAllocator::new(7);
        let mut a2 = RandomAllocator::new(7);
        let r1 = a1.allocate(&AllocRequest::new(1, 10), &machine).unwrap();
        let r2 = a2.allocate(&AllocRequest::new(1, 10), &machine).unwrap();
        assert_eq!(r1, r2, "same seed must give the same allocation");
        assert_eq!(r1.nodes.len(), 10);
        assert!(r1.nodes.iter().all(|&n| machine.is_free(n)));
        let unique: std::collections::HashSet<_> = r1.nodes.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mesh = Mesh2D::new(8, 8);
        let machine = MachineState::new(mesh);
        let r1 = RandomAllocator::new(1)
            .allocate(&AllocRequest::new(1, 10), &machine)
            .unwrap();
        let r2 = RandomAllocator::new(2)
            .allocate(&AllocRequest::new(1, 10), &machine)
            .unwrap();
        assert_ne!(r1, r2);
    }
}
