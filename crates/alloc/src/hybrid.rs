//! Best-of-several meta-allocation.
//!
//! The paper's discussion closes with: "Obviously, the ideal is to find a
//! general purpose allocation algorithm that works reasonably well for all
//! types of problems, but a strategy to harness the strengths of different
//! algorithms would also be useful." This module implements the simplest
//! such strategy: run several candidate allocators on the same request and
//! keep the allocation with the best *static* quality — fewest rectilinear
//! components, then lowest average pairwise distance. The static metrics do
//! not capture everything (that is the message of Figures 9–11), but they
//! are the only information available at allocation time, and picking the
//! better of MC-style and curve-style placements already hedges the
//! pattern-dependence the paper documents.

use crate::allocator::Allocator;
use crate::machine::MachineState;
use crate::metrics::quality;
use crate::request::{AllocRequest, Allocation};

/// A meta-allocator that evaluates every candidate and keeps the best
/// allocation by (components, average pairwise distance).
pub struct HybridAllocator {
    name: String,
    candidates: Vec<Box<dyn Allocator>>,
}

impl HybridAllocator {
    /// Creates a hybrid over the given candidate allocators.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn new(name: impl Into<String>, candidates: Vec<Box<dyn Allocator>>) -> Self {
        assert!(
            !candidates.is_empty(),
            "hybrid allocator needs at least one candidate"
        );
        HybridAllocator {
            name: name.into(),
            candidates,
        }
    }

    /// Number of candidate allocators consulted per request.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }
}

impl Allocator for HybridAllocator {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn allocate(&mut self, req: &AllocRequest, machine: &MachineState) -> Option<Allocation> {
        let mesh = machine.mesh();
        let mut best: Option<(usize, f64, Allocation)> = None;
        for candidate in &mut self.candidates {
            let Some(allocation) = candidate.allocate(req, machine) else {
                continue;
            };
            let q = quality(mesh, &allocation.nodes);
            let better = match &best {
                None => true,
                Some((components, distance, _)) => {
                    q.components < *components
                        || (q.components == *components && q.avg_pairwise_distance < *distance)
                }
            };
            if better {
                best = Some((q.components, q.avg_pairwise_distance, allocation));
            }
        }
        best.map(|(_, _, allocation)| allocation)
    }

    fn release(&mut self, allocation: &Allocation, machine: &MachineState) {
        for candidate in &mut self.candidates {
            candidate.release(allocation, machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve_alloc::{CurveAllocator, SelectionStrategy};
    use crate::mc::McAllocator;
    use crate::random_alloc::RandomAllocator;
    use commalloc_mesh::curve::CurveKind;
    use commalloc_mesh::{Mesh2D, NodeId};

    fn hybrid(mesh: Mesh2D) -> HybridAllocator {
        HybridAllocator::new(
            "hybrid",
            vec![
                Box::new(CurveAllocator::new(
                    CurveKind::Hilbert,
                    mesh,
                    SelectionStrategy::BestFit,
                )),
                Box::new(McAllocator::mc()),
            ],
        )
    }

    #[test]
    fn hybrid_allocates_and_matches_request_size() {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut h = hybrid(mesh);
        assert_eq!(h.num_candidates(), 2);
        for size in [1usize, 14, 30, 64] {
            let alloc = h.allocate(&AllocRequest::new(1, size), &machine).unwrap();
            assert_eq!(alloc.nodes.len(), size);
            let unique: std::collections::HashSet<_> = alloc.nodes.iter().collect();
            assert_eq!(unique.len(), size);
        }
    }

    #[test]
    fn hybrid_is_never_worse_than_either_candidate_alone() {
        let mesh = Mesh2D::square_16x16();
        let mut machine = MachineState::new(mesh);
        // Fragment the machine a little so the candidates disagree.
        let busy: Vec<NodeId> = (0..48u32).step_by(3).map(NodeId).collect();
        machine.occupy(&busy);

        let req = AllocRequest::new(7, 24);
        let mut hilbert = CurveAllocator::new(mesh_curve(), mesh, SelectionStrategy::BestFit);
        let mut mc = McAllocator::mc();
        let mut h = hybrid(mesh);

        let q = |alloc: &Allocation| {
            let q = quality(mesh, &alloc.nodes);
            (q.components, q.avg_pairwise_distance)
        };
        let qa = q(&hilbert.allocate(&req, &machine).unwrap());
        let qb = q(&mc.allocate(&req, &machine).unwrap());
        let qh = q(&h.allocate(&req, &machine).unwrap());
        let best = if qa <= qb { qa } else { qb };
        assert!(
            qh.0 < best.0 || (qh.0 == best.0 && qh.1 <= best.1 + 1e-12),
            "hybrid {qh:?} must match or beat the better candidate {best:?}"
        );
    }

    fn mesh_curve() -> CurveKind {
        CurveKind::Hilbert
    }

    #[test]
    fn hybrid_skips_candidates_that_fail() {
        // The random allocator succeeds everywhere; a contiguous candidate
        // that fails is simply skipped.
        let mesh = Mesh2D::new(4, 4);
        let busy: Vec<NodeId> = mesh
            .nodes()
            .filter(|n| {
                let c = mesh.coord_of(*n);
                (c.x + c.y).is_multiple_of(2)
            })
            .collect();
        let mut machine = MachineState::new(mesh);
        machine.occupy(&busy);
        let mut h = HybridAllocator::new(
            "hybrid",
            vec![
                Box::new(crate::contiguous::ContiguousAllocator::first_fit()),
                Box::new(RandomAllocator::new(3)),
            ],
        );
        let alloc = h.allocate(&AllocRequest::new(1, 4), &machine).unwrap();
        assert_eq!(alloc.nodes.len(), 4);
    }

    #[test]
    fn hybrid_fails_only_when_every_candidate_fails() {
        let mesh = Mesh2D::new(2, 2);
        let machine = MachineState::new(mesh);
        let mut h = hybrid(mesh);
        assert!(h.allocate(&AllocRequest::new(1, 5), &machine).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidate_list_is_rejected() {
        HybridAllocator::new("empty", Vec::new());
    }
}
