//! Property tests: the incremental `FreeIntervalIndex` path of
//! `CurveAllocator` makes **byte-identical** decisions to the naive
//! rescan path, for every selection strategy, over random occupy/release
//! histories on the paper's two machines (16×16 and 16×22).

use commalloc_alloc::curve_alloc::{CurveAllocator, SelectionStrategy};
use commalloc_alloc::interval_index::FreeIntervalIndex;
use commalloc_alloc::{AllocRequest, Allocator, MachineState};
use commalloc_mesh::curve::{CurveKind, CurveOrder};
use commalloc_mesh::Mesh2D;
use proptest::prelude::*;
use rand::prelude::*;

/// Replays a random allocate/release interleaving against an indexed and a
/// rescan allocator in lockstep, asserting identical grants throughout.
fn assert_equivalent_history(
    mesh: Mesh2D,
    kind: CurveKind,
    strategy: SelectionStrategy,
    steps: usize,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let curve = CurveOrder::build(kind, mesh);

    let mut indexed = CurveAllocator::new(kind, mesh, strategy);
    let mut rescan = CurveAllocator::with_rescan(kind, mesh, strategy);
    prop_assert!(indexed.is_indexed());
    prop_assert!(!rescan.is_indexed());

    let mut machine_a = MachineState::new(mesh);
    let mut machine_b = MachineState::new(mesh);
    let mut live: Vec<commalloc_alloc::Allocation> = Vec::new();
    let mut next_job: u64 = 0;

    for _ in 0..steps {
        let release_some = !live.is_empty() && rng.gen_bool(0.45);
        if release_some {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            machine_a.release(&victim.nodes);
            indexed.release(&victim, &machine_a);
            machine_b.release(&victim.nodes);
            rescan.release(&victim, &machine_b);
        } else {
            let size = rng.gen_range(1usize..=48);
            let req = AllocRequest::new(next_job, size);
            next_job += 1;
            let got_a = indexed.allocate(&req, &machine_a);
            let got_b = rescan.allocate(&req, &machine_b);
            prop_assert_eq!(
                &got_a,
                &got_b,
                "divergence: {} w/{:?} size {} at occupancy {:.2}",
                kind,
                strategy,
                size,
                machine_a.utilization()
            );
            if let Some(alloc) = got_a {
                machine_a.occupy(&alloc.nodes);
                machine_b.occupy(&alloc.nodes);
                live.push(alloc);
            }
        }
        // The incremental structures must stay exactly consistent with the
        // machine between steps.
        let check = FreeIntervalIndex::from_machine(&curve, &machine_a);
        prop_assert!(check.is_consistent_with(&curve, &machine_a));
        prop_assert_eq!(machine_a.num_free(), machine_b.num_free());
    }
    Ok(())
}

fn all_strategies() -> Vec<SelectionStrategy> {
    vec![
        SelectionStrategy::FreeList,
        SelectionStrategy::FirstFit,
        SelectionStrategy::BestFit,
        SelectionStrategy::SumOfSquares,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn indexed_equals_rescan_on_16x16(
        strategy in sample::select(all_strategies()),
        kind in sample::select(vec![CurveKind::Hilbert, CurveKind::SCurve, CurveKind::HIndexing]),
        seed in any::<u64>(),
    ) {
        assert_equivalent_history(Mesh2D::square_16x16(), kind, strategy, 120, seed)?;
    }

    fn indexed_equals_rescan_on_16x22(
        strategy in sample::select(all_strategies()),
        kind in sample::select(vec![CurveKind::Hilbert, CurveKind::RowMajor]),
        seed in any::<u64>(),
    ) {
        assert_equivalent_history(Mesh2D::paragon_16x22(), kind, strategy, 120, seed)?;
    }
}

#[test]
fn index_survives_unobserved_machine_mutations() {
    // Mutate the machine without telling the allocator: the generation
    // check must force a resync, keeping decisions identical to rescan.
    let mesh = Mesh2D::square_16x16();
    let kind = CurveKind::Hilbert;
    let strategy = SelectionStrategy::BestFit;
    let mut indexed = CurveAllocator::new(kind, mesh, strategy);
    let mut rescan = CurveAllocator::with_rescan(kind, mesh, strategy);
    let mut machine = MachineState::new(mesh);

    let first = indexed
        .allocate(&AllocRequest::new(0, 10), &machine)
        .unwrap();
    machine.occupy(&first.nodes);

    // Behind-the-back mutation: occupy a scattered set directly.
    let sneak: Vec<_> = machine.free_nodes().step_by(7).collect();
    machine.occupy(&sneak);
    // And release the first job without invoking the hook.
    machine.release(&first.nodes);

    for (job, size) in [(1u64, 5usize), (2, 17), (3, 40), (4, 9)] {
        let req = AllocRequest::new(job, size);
        let a = indexed.allocate(&req, &machine);
        let b = rescan.allocate(&req, &machine);
        assert_eq!(a, b, "post-drift divergence at size {size}");
        if let Some(alloc) = a {
            machine.occupy(&alloc.nodes);
        }
    }
}

#[test]
fn discarded_grants_do_not_corrupt_the_index() {
    // Call allocate twice without committing the first grant (as a
    // backfill feasibility probe would); the second call must match what a
    // fresh rescan decides against the unchanged machine.
    let mesh = Mesh2D::paragon_16x22();
    let mut indexed = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut rescan =
        CurveAllocator::with_rescan(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut machine = MachineState::new(mesh);
    let seed = indexed
        .allocate(&AllocRequest::new(0, 30), &machine)
        .unwrap();
    machine.occupy(&seed.nodes);

    let probe = indexed.allocate(&AllocRequest::new(1, 50), &machine);
    assert!(probe.is_some());
    // Discard the probe; machine unchanged.
    let second = indexed.allocate(&AllocRequest::new(2, 50), &machine);
    let reference = rescan.allocate(&AllocRequest::new(2, 50), &machine);
    assert_eq!(second, reference);
}

#[test]
fn competing_allocators_with_discarded_grants_stay_equivalent() {
    // The hybrid-allocator pattern that once corrupted the index: two
    // indexed allocators probe the same machine each round, only one
    // grant is committed, and the sizes often coincide — so a
    // generation count alone cannot tell whose grant was applied.
    let mesh = Mesh2D::square_16x16();
    let mut rng = StdRng::seed_from_u64(42);
    let mut indexed_a = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut indexed_b = CurveAllocator::new(CurveKind::SCurve, mesh, SelectionStrategy::FirstFit);
    let mut rescan_a =
        CurveAllocator::with_rescan(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut rescan_b =
        CurveAllocator::with_rescan(CurveKind::SCurve, mesh, SelectionStrategy::FirstFit);
    let mut machine = MachineState::new(mesh);
    let mut live: Vec<commalloc_alloc::Allocation> = Vec::new();

    for job in 0..300u64 {
        if !live.is_empty() && rng.gen_bool(0.4) {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            machine.release(&victim.nodes);
            indexed_a.release(&victim, &machine);
            indexed_b.release(&victim, &machine);
            rescan_a.release(&victim, &machine);
            rescan_b.release(&victim, &machine);
            continue;
        }
        let size = rng.gen_range(1usize..=24);
        let req = AllocRequest::new(job, size);
        // Probe all four; each indexed decision must match its rescan twin.
        let got_a = indexed_a.allocate(&req, &machine);
        let got_b = indexed_b.allocate(&req, &machine);
        assert_eq!(
            got_a,
            rescan_a.allocate(&req, &machine),
            "A diverged at job {job}"
        );
        assert_eq!(
            got_b,
            rescan_b.allocate(&req, &machine),
            "B diverged at job {job}"
        );
        // Commit only one of the two grants (alternating), discarding the
        // other — sizes are equal, so only the node-level proof can tell
        // the committed grant apart.
        let committed = if job % 2 == 0 { got_a } else { got_b };
        if let Some(alloc) = committed {
            machine.occupy(&alloc.nodes);
            live.push(alloc);
        }
    }
}

#[test]
fn reused_allocator_across_machines_with_equal_generations_resyncs() {
    // Two distinct machines whose generation counters coincide: the
    // allocator's cached index is valid for neither once machines swap,
    // and the (state_id, generation) key must force a rebuild.
    let mesh = Mesh2D::square_16x16();
    let mut indexed = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut rescan =
        CurveAllocator::with_rescan(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);

    let mut machine_a = MachineState::new(mesh);
    let first = indexed
        .allocate(&AllocRequest::new(0, 12), &machine_a)
        .unwrap();
    machine_a.occupy(&first.nodes); // generation 1, first 12 curve ranks busy

    let mut machine_b = MachineState::new(mesh);
    let elsewhere: Vec<commalloc_mesh::NodeId> =
        machine_b.free_nodes().skip(100).take(12).collect();
    machine_b.occupy(&elsewhere); // also generation 1, different occupancy

    let req = AllocRequest::new(1, 12);
    let got = indexed.allocate(&req, &machine_b);
    let reference = rescan.allocate(&req, &machine_b);
    assert_eq!(
        got, reference,
        "allocator must resync when the machine changes"
    );
    // The grant must be committable: every node free on machine B.
    machine_b.occupy(&got.unwrap().nodes);
}

#[test]
fn diverged_clones_with_equal_generations_resync() {
    // A clone shares occupancy at clone time but gets a fresh identity;
    // after both diverge by one mutation their generations match again,
    // and only the identity distinguishes them.
    let mesh = Mesh2D::square_16x16();
    let mut indexed = CurveAllocator::new(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);
    let mut rescan =
        CurveAllocator::with_rescan(CurveKind::Hilbert, mesh, SelectionStrategy::BestFit);

    let mut original = MachineState::new(mesh);
    let grant = indexed
        .allocate(&AllocRequest::new(0, 20), &original)
        .unwrap();
    original.occupy(&grant.nodes);

    let mut clone = original.clone();
    let extra: Vec<commalloc_mesh::NodeId> = clone.free_nodes().take(30).collect();
    clone.occupy(&extra); // clone at generation 2
    original.release(&grant.nodes); // original also at generation 2
    indexed.release(&grant, &original);

    let req = AllocRequest::new(1, 25);
    assert_eq!(
        indexed.allocate(&req, &clone),
        rescan.allocate(&req, &clone),
        "diverged clone must not reuse the original's index"
    );
}
