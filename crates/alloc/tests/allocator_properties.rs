//! Property-based tests over all allocator configurations.

use commalloc_alloc::{AllocRequest, AllocatorKind, MachineState};
use commalloc_mesh::{Mesh2D, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn arb_kind() -> impl Strategy<Value = AllocatorKind> {
    proptest::sample::select(AllocatorKind::all())
}

/// Occupies `busy` random processors of a fresh machine, deterministically
/// derived from `seed`.
fn machine_with_random_busy(mesh: Mesh2D, busy: usize, seed: u64) -> MachineState {
    let mut machine = MachineState::new(mesh);
    let mut nodes: Vec<NodeId> = mesh.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    nodes.truncate(busy);
    machine.occupy(&nodes);
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every allocator returns exactly the requested number of distinct free
    /// processors whenever enough processors are free, and declines requests
    /// that exceed the free count.
    #[test]
    fn allocation_soundness(
        kind in arb_kind(),
        busy in 0usize..200,
        size in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::square_16x16();
        let busy = busy.min(mesh.num_nodes() - 1);
        let machine = machine_with_random_busy(mesh, busy, seed);
        let mut alloc = kind.build(mesh);
        let result = alloc.allocate(&AllocRequest::new(1, size), &machine);
        if size <= machine.num_free() {
            // The contiguous-only strategies are allowed to refuse a request
            // when no free rectangle/block exists (the job then waits); every
            // other allocator must succeed.
            if !kind.may_refuse_with_free_processors() {
                prop_assert!(
                    result.is_some(),
                    "{} must allocate when enough processors are free",
                    kind
                );
            }
            if let Some(a) = &result {
                prop_assert_eq!(a.nodes.len(), size);
                let unique: std::collections::HashSet<_> = a.nodes.iter().collect();
                prop_assert_eq!(unique.len(), size);
                for &n in &a.nodes {
                    prop_assert!(machine.is_free(n), "{} allocated busy node {}", kind, n);
                }
            }
        } else {
            prop_assert!(result.is_none());
        }
    }

    /// Allocators are deterministic: the same request against the same
    /// machine state yields the same allocation (the random baseline is
    /// deterministic per freshly-built allocator because its seed is fixed).
    #[test]
    fn allocation_determinism(
        kind in arb_kind(),
        busy in 0usize..128,
        size in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::paragon_16x22();
        let machine = machine_with_random_busy(mesh, busy, seed);
        let req = AllocRequest::new(9, size);
        let a1 = kind.build(mesh).allocate(&req, &machine);
        let a2 = kind.build(mesh).allocate(&req, &machine);
        prop_assert_eq!(a1, a2);
    }

    /// On an *empty* machine every locality-seeking allocator produces an
    /// allocation that is no more dispersed than the random baseline's
    /// expected dispersion (a loose but meaningful sanity bound).
    #[test]
    fn locality_allocators_beat_random_on_empty_machine(
        kind in proptest::sample::select(AllocatorKind::figure11_set().to_vec()),
        size in 4usize..40,
    ) {
        let mesh = Mesh2D::square_16x16();
        let machine = MachineState::new(mesh);
        let mut alloc = kind.build(mesh);
        let a = alloc.allocate(&AllocRequest::new(1, size), &machine).unwrap();
        let dispersion = mesh.avg_pairwise_distance(&a.nodes);
        // The expected average pairwise distance of uniformly random nodes on
        // a 16x16 mesh is 2 * (16^2 - 1) / (3 * 16) = 10.625; locality
        // allocators on an empty machine should do far better. Free-list
        // variants follow the curve from rank 0, which is still compact.
        prop_assert!(
            dispersion < 10.0,
            "{} produced dispersion {} for size {}",
            kind, dispersion, size
        );
    }
}
