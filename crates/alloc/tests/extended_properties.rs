//! Property-based tests for the extension allocators: contiguous submesh
//! allocation, the 2-D buddy system, MBS and the hybrid meta-allocator.

use commalloc_alloc::buddy::BuddyAllocator;
use commalloc_alloc::contiguous::ContiguousAllocator;
use commalloc_alloc::mbs::MbsAllocator;
use commalloc_alloc::metrics::dispersion;
use commalloc_alloc::{AllocRequest, Allocator, AllocatorKind, MachineState};
use commalloc_mesh::{Mesh2D, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn machine_with_random_busy(mesh: Mesh2D, busy: usize, seed: u64) -> MachineState {
    let mut machine = MachineState::new(mesh);
    let mut nodes: Vec<NodeId> = mesh.nodes().collect();
    nodes.shuffle(&mut StdRng::seed_from_u64(seed));
    nodes.truncate(busy.min(mesh.num_nodes() - 1));
    machine.occupy(&nodes);
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever a contiguous allocator grants is a single rectilinear
    /// component made of free processors, of exactly the requested size.
    #[test]
    fn contiguous_grants_are_single_components(
        busy in 0usize..180,
        size in 1usize..40,
        seed in any::<u64>(),
        best_fit in any::<bool>(),
    ) {
        let mesh = Mesh2D::square_16x16();
        let machine = machine_with_random_busy(mesh, busy, seed);
        let mut alloc = if best_fit {
            ContiguousAllocator::best_fit()
        } else {
            ContiguousAllocator::first_fit()
        };
        if let Some(a) = alloc.allocate(&AllocRequest::new(1, size), &machine) {
            prop_assert_eq!(a.nodes.len(), size);
            prop_assert_eq!(mesh.components(&a.nodes), 1);
            prop_assert!(a.nodes.iter().all(|&n| machine.is_free(n)));
            // A contiguous grant taken from a rectangle never spans a
            // bounding box larger than the candidate shapes allow.
            let d = dispersion(mesh, &a.nodes);
            prop_assert!(d.bbox_width as usize * d.bbox_height as usize <= size.max(4) * 2);
        }
    }

    /// The buddy system only ever grants aligned square blocks: the bounding
    /// box of a grant fits inside one `2^order` square whose origin is a
    /// multiple of the block side.
    #[test]
    fn buddy_grants_are_aligned_blocks(
        busy in 0usize..150,
        size in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::square_16x16();
        let machine = machine_with_random_busy(mesh, busy, seed);
        let mut alloc = BuddyAllocator::new();
        if let Some(a) = alloc.allocate(&AllocRequest::new(1, size), &machine) {
            prop_assert_eq!(a.nodes.len(), size);
            let side = 1u16 << BuddyAllocator::order_for(size);
            let coords: Vec<_> = a.nodes.iter().map(|&n| mesh.coord_of(n)).collect();
            let min_x = coords.iter().map(|c| c.x).min().unwrap();
            let min_y = coords.iter().map(|c| c.y).min().unwrap();
            let max_x = coords.iter().map(|c| c.x).max().unwrap();
            let max_y = coords.iter().map(|c| c.y).max().unwrap();
            // All inside one aligned block.
            let block_x = (min_x / side) * side;
            let block_y = (min_y / side) * side;
            prop_assert!(max_x < block_x + side, "grant crosses block boundary in x");
            prop_assert!(max_y < block_y + side, "grant crosses block boundary in y");
        }
    }

    /// MBS always succeeds when enough processors are free and never hands
    /// out a busy or duplicate processor.
    #[test]
    fn mbs_always_succeeds_with_enough_free_processors(
        busy in 0usize..220,
        size in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::square_16x16();
        let machine = machine_with_random_busy(mesh, busy, seed);
        let mut alloc = MbsAllocator::new();
        let result = alloc.allocate(&AllocRequest::new(1, size), &machine);
        if size <= machine.num_free() {
            let a = result.expect("MBS must not refuse");
            prop_assert_eq!(a.nodes.len(), size);
            let unique: std::collections::HashSet<_> = a.nodes.iter().collect();
            prop_assert_eq!(unique.len(), size);
            prop_assert!(a.nodes.iter().all(|&n| machine.is_free(n)));
        } else {
            prop_assert!(result.is_none());
        }
    }

    /// On the non-square 16 × 22 machine the extension allocators obey the
    /// same soundness rules as on the square machine.
    #[test]
    fn extension_allocators_are_sound_on_the_paragon_mesh(
        kind in prop::sample::select(vec![
            AllocatorKind::Mbs,
            AllocatorKind::Hybrid,
            AllocatorKind::MortonBestFit,
            AllocatorKind::PeanoBestFit,
        ]),
        busy in 0usize..250,
        size in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::paragon_16x22();
        let machine = machine_with_random_busy(mesh, busy, seed);
        let mut alloc = kind.build(mesh);
        let result = alloc.allocate(&AllocRequest::new(1, size), &machine);
        if size <= machine.num_free() {
            let a = result.expect("non-contiguous extension allocators must not refuse");
            prop_assert_eq!(a.nodes.len(), size);
            prop_assert!(a.nodes.iter().all(|&n| machine.is_free(n)));
        } else {
            prop_assert!(result.is_none());
        }
    }

    /// Dispersal metrics are internally consistent for any allocation any
    /// extension allocator produces.
    #[test]
    fn dispersal_metrics_are_consistent(
        kind in prop::sample::select(AllocatorKind::extended_set().to_vec()),
        busy in 0usize..120,
        size in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::square_16x16();
        let machine = machine_with_random_busy(mesh, busy, seed);
        let mut alloc = kind.build(mesh);
        if let Some(a) = alloc.allocate(&AllocRequest::new(1, size), &machine) {
            let d = dispersion(mesh, &a.nodes);
            prop_assert_eq!(d.size, size);
            prop_assert!(d.avg_pairwise_distance <= d.max_pairwise_distance as f64 + 1e-12);
            prop_assert!(d.max_pairwise_distance <= d.bbox_semiperimeter());
            prop_assert!(d.bbox_utilization > 0.0 && d.bbox_utilization <= 1.0 + 1e-12);
            prop_assert!(d.bbox_width as usize * d.bbox_height as usize >= size);
        }
    }
}
