//! The cost of insisting on contiguous allocations.
//!
//! ```text
//! cargo run --release --example contiguous_vs_noncontiguous
//! ```
//!
//! Section 2 of the paper explains why CPlant abandoned convex-only
//! allocation: "requiring that jobs be allocated to convex sets of processors
//! reduces system utilization to levels unacceptable for any
//! government-audited system". This example puts numbers on that sentence by
//! running the same workload under (a) the submesh-only contiguous
//! baselines, (b) the block-structured buddy/MBS strategies, and (c) the
//! paper's Hilbert + Best Fit, and comparing response time, achieved
//! utilization and contiguity.

use commalloc::prelude::*;

fn main() {
    let mesh = Mesh2D::square_16x16();
    let trace = ParagonTraceModel::scaled(250)
        .generate(7)
        .filter_fitting(mesh.num_nodes())
        .with_load_factor(0.6);
    let pattern = CommPattern::AllToAll;

    println!(
        "workload: {} jobs on a 16x16 mesh, {} traffic, load factor 0.6\n",
        trace.len(),
        pattern
    );
    println!(
        "{:<16} {:>14} {:>12} {:>13} {:>12}",
        "allocator", "mean resp (s)", "mean wait", "% contiguous", "mean util"
    );

    let allocators = [
        AllocatorKind::ContiguousFirstFit,
        AllocatorKind::ContiguousBestFit,
        AllocatorKind::Buddy2D,
        AllocatorKind::Mbs,
        AllocatorKind::HilbertBestFit,
        AllocatorKind::Mc,
    ];

    let mut rows = Vec::new();
    for allocator in allocators {
        let config = SimConfig::new(mesh, pattern, allocator);
        let result = simulate(&trace, &config);
        let profile = UtilizationProfile::from_records(&result.records, mesh.num_nodes());
        rows.push((
            allocator,
            result.summary.mean_response_time,
            result.summary.mean_wait_time,
            result.summary.percent_contiguous,
            profile.mean_utilization(),
        ));
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (allocator, resp, wait, contig, util) in &rows {
        println!(
            "{:<16} {:>14.0} {:>12.0} {:>12.1}% {:>11.1}%",
            allocator.name(),
            resp,
            wait,
            contig,
            100.0 * util
        );
    }

    println!();
    println!("What to look for:");
    println!("  * the contiguous strategies allocate (nearly) every job into one rectangle,");
    println!("    so their contiguity column is ~100%;");
    println!("  * they pay for it with queueing: jobs wait for a free rectangle even when");
    println!("    plenty of scattered processors are idle, so their mean wait and response");
    println!("    times are the largest of the table — the utilization argument that led to");
    println!("    non-contiguous allocators like Paging, MBS and MC in the first place.");
}
