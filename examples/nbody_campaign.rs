//! Domain scenario: an n-body simulation campaign on a CPlant-like machine.
//!
//! ```text
//! cargo run --release --example nbody_campaign
//! ```
//!
//! The paper motivates the n-body pattern with a concrete parallel algorithm:
//! each processor owns a set of particles, migrating copies travel around a
//! virtual ring during `⌊p/2⌋` ring subphases, and one chordal subphase
//! accumulates the forces back at the owning processor (Figure 5). This
//! example models a site running a *campaign* of such n-body jobs — a steady
//! stream of 32-, 64- and 128-processor simulations — and asks the question a
//! CPlant operator would ask: which allocator keeps campaign turnaround low?
//!
//! It also demonstrates the per-job flit-level microsimulation: one ring +
//! chordal iteration of the largest job is replayed at flit level on its
//! actual allocation to show the latency difference between a compact and a
//! fragmented placement.

use commalloc::prelude::*;
use commalloc_net::flit::{FlitMessage, FlitNetwork};
use commalloc_workload::Job;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the campaign trace: a Poisson-ish stream of power-of-two n-body
/// jobs with runtimes from 30 minutes to 4 hours.
fn campaign_trace(jobs: usize, seed: u64) -> Trace {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [32usize, 32, 64, 64, 64, 128];
    let mut t = 0.0;
    let mut out = Vec::with_capacity(jobs);
    for id in 0..jobs {
        t += rng.gen_range(300.0..2400.0);
        let size = sizes[rng.gen_range(0..sizes.len())];
        let runtime = rng.gen_range(1800.0..14400.0);
        out.push(Job::new(id as u64, t, size, runtime));
    }
    Trace::new(out)
}

fn main() {
    let mesh = Mesh2D::paragon_16x22();
    let trace = campaign_trace(250, 2024);
    println!(
        "n-body campaign: {} jobs on the {}x{} CPlant-like mesh\n",
        trace.len(),
        mesh.width(),
        mesh.height()
    );

    // Which allocator keeps turnaround low for this workload?
    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "allocator", "mean response", "mean running", "contiguous"
    );
    let mut best: Option<(AllocatorKind, f64)> = None;
    for allocator in AllocatorKind::paper_set() {
        let config = SimConfig::new(mesh, CommPattern::NBody, allocator);
        let result = simulate(&trace, &config);
        println!(
            "{:<16} {:>12.0} s {:>12.0} s {:>11.1}%",
            allocator.name(),
            result.summary.mean_response_time,
            result.summary.mean_running_time,
            result.summary.percent_contiguous
        );
        if best.is_none() || result.summary.mean_response_time < best.unwrap().1 {
            best = Some((allocator, result.summary.mean_response_time));
        }
    }
    let (best_alloc, best_rt) = best.expect("at least one allocator ran");
    println!(
        "\nbest allocator for this campaign: {} ({:.0} s mean response)\n",
        best_alloc.name(),
        best_rt
    );

    // Flit-level close-up: one n-body iteration of a 64-rank job on a compact
    // Hilbert/Best Fit allocation vs. a deliberately fragmented machine.
    let p = 64usize;
    let flit_net = FlitNetwork::new(mesh);
    let compact = {
        let machine = MachineState::new(mesh);
        AllocatorKind::HilbertBestFit
            .build(mesh)
            .allocate(&commalloc_alloc::AllocRequest::new(0, p), &machine)
            .expect("empty machine")
    };
    let fragmented = {
        let mut machine = MachineState::new(mesh);
        // Checkerboard half the machine to force a scattered allocation.
        let busy: Vec<_> = mesh
            .nodes()
            .filter(|n| (mesh.coord_of(*n).x + mesh.coord_of(*n).y).is_multiple_of(2))
            .collect();
        machine.occupy(&busy);
        AllocatorKind::HilbertBestFit
            .build(mesh)
            .allocate(&commalloc_alloc::AllocRequest::new(0, p), &machine)
            .expect("half the machine is still free")
    };

    let mut rng = StdRng::seed_from_u64(1);
    for (label, alloc) in [("compact", &compact), ("fragmented", &fragmented)] {
        let messages: Vec<FlitMessage> = CommPattern::NBody
            .iteration_messages(p, &mut rng)
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| FlitMessage {
                id: i as u64,
                src: alloc.nodes[src],
                dst: alloc.nodes[dst],
                inject_at: 0,
                flits: 32,
            })
            .collect();
        let report = flit_net.simulate(&messages);
        println!(
            "flit-level n-body iteration on {label:<10} allocation: {} messages, makespan {} cycles, mean latency {:.1} cycles",
            messages.len(),
            report.makespan,
            report.mean_latency()
        );
    }
}
