//! Does the choice of scheduler change the paper's conclusions?
//!
//! ```text
//! cargo run --release --example scheduler_study
//! ```
//!
//! The paper deliberately fixes First-Come-First-Serve scheduling so that the
//! only varying factor is the allocator. This example re-runs a small version
//! of the paper's comparison under FCFS, aggressive first-fit backfilling and
//! EASY backfilling, and reports (a) how much backfilling helps each
//! allocator and (b) whether the allocator ranking itself changes.

use commalloc::prelude::*;
use commalloc::sensitivity::ranking_correlation;

fn main() {
    let mesh = Mesh2D::square_16x16();
    let trace = ParagonTraceModel::scaled(200)
        .generate(11)
        .filter_fitting(mesh.num_nodes())
        .with_load_factor(0.6);
    let pattern = CommPattern::NBody;
    let allocators = [
        AllocatorKind::HilbertBestFit,
        AllocatorKind::SCurveBestFit,
        AllocatorKind::HilbertFreeList,
        AllocatorKind::Mc,
        AllocatorKind::Mc1x1,
        AllocatorKind::GenAlg,
    ];

    println!(
        "workload: {} jobs, {pattern} traffic, 16x16 mesh, load factor 0.6\n",
        trace.len()
    );

    let mut rankings: Vec<(SchedulerKind, Vec<(AllocatorKind, f64)>)> = Vec::new();
    for scheduler in SchedulerKind::all() {
        let mut rows: Vec<(AllocatorKind, f64)> = allocators
            .iter()
            .map(|&allocator| {
                let config = SimConfig::new(mesh, pattern, allocator).with_scheduler(scheduler);
                let result = simulate(&trace, &config);
                (allocator, result.summary.mean_response_time)
            })
            .collect();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        println!("{} ranking:", scheduler.name());
        for (i, (allocator, rt)) in rows.iter().enumerate() {
            println!("  {}. {:<16} {:>12.0} s", i + 1, allocator.name(), rt);
        }
        println!();
        rankings.push((scheduler, rows));
    }

    let fcfs = &rankings[0].1;
    for (scheduler, rows) in rankings.iter().skip(1) {
        let tau = ranking_correlation(fcfs, rows);
        let fcfs_best = fcfs.first().expect("non-empty ranking").1;
        let this_best = rows.first().expect("non-empty ranking").1;
        println!(
            "{:<22} Kendall tau vs FCFS = {:.2}; best allocator improves from {:.0} s to {:.0} s",
            scheduler.name(),
            tau,
            fcfs_best,
            this_best
        );
    }
    println!();
    println!("A tau near 1.0 says the paper's allocator ordering is robust to the scheduler;");
    println!("the response-time drop under backfilling shows how much of the response time is");
    println!("queueing delay rather than communication slowdown at this load.");
}
