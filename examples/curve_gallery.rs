//! Render the space-filling curves the allocators are built on.
//!
//! ```text
//! cargo run --example curve_gallery
//! ```
//!
//! Prints the rank of every processor under each curve ordering on an 8 x 8
//! mesh (the shapes of the paper's Figure 2), the truncated curves on the
//! 16 x 22 CPlant-like mesh (Figure 6), and a locality comparison table that
//! quantifies why the choice of curve matters more than the packing
//! heuristic (the paper's Section 5 observation).

use commalloc::prelude::*;
use commalloc_mesh::locality::window_locality;

fn main() {
    let small = Mesh2D::new(8, 8);
    println!("=== Figure 2: curve shapes on an 8 x 8 mesh ===\n");
    for kind in [CurveKind::SCurve, CurveKind::Hilbert, CurveKind::HIndexing] {
        let curve = CurveOrder::build(kind, small);
        println!(
            "{kind} (gaps: {}):\n{}",
            curve.discontinuities(),
            curve.render_ascii()
        );
    }

    println!("=== Figure 6: truncated curves on the 16 x 22 mesh (top rows) ===\n");
    let paragon = Mesh2D::paragon_16x22();
    for kind in [CurveKind::Hilbert, CurveKind::HIndexing] {
        let curve = CurveOrder::build(kind, paragon);
        let art = curve.render_ascii();
        // Show only the top 6 rows, as the paper's figure does.
        let top: Vec<&str> = art.lines().take(6).collect();
        println!(
            "{kind} truncated to 16x22 — {} gaps along the curve:\n{}\n",
            curve.discontinuities(),
            top.join("\n")
        );
    }

    println!("=== locality of rank windows (lower is better) ===\n");
    println!(
        "{:<26} {:>10} {:>14} {:>16}",
        "curve", "window", "avg pair dist", "% windows contig"
    );
    let mesh = Mesh2D::square_16x16();
    for kind in CurveKind::all() {
        let curve = CurveOrder::build(kind, mesh);
        for window in [16usize, 64] {
            let l = window_locality(&curve, window);
            println!(
                "{:<26} {:>10} {:>14.2} {:>15.1}%",
                kind.name(),
                window,
                l.mean_pairwise_distance,
                100.0 * l.contiguous_fraction
            );
        }
    }
}
