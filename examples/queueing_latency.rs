//! Cross-checking the contention model with an analytic queueing argument.
//!
//! ```text
//! cargo run --release --example queueing_latency
//! ```
//!
//! The paper's Figure 10 shows running time tracking *average message
//! distance*. The fluid model reproduces that through per-hop overhead and
//! link sharing; this example checks the same relationship from a third,
//! independent angle — an M/M/1-per-link latency estimate — by placing two
//! jobs with the same size but very different dispersion on a busy mesh and
//! comparing (a) their expected per-message latency from the queueing
//! estimator and (b) their simulated running times.

use commalloc::prelude::*;
use commalloc_alloc::AllocRequest;
use commalloc_net::latency::LatencyEstimator;
use commalloc_net::traffic::{JobTraffic, RankTraffic};
use commalloc_net::LinkTable;
use commalloc_workload::Job;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn job_traffic(
    mesh: Mesh2D,
    links: &LinkTable,
    id: u64,
    nodes: &[commalloc_mesh::NodeId],
) -> JobTraffic {
    let mut rng = StdRng::seed_from_u64(id);
    let traffic: Vec<RankTraffic> = CommPattern::AllToAll
        .traffic(nodes.len(), 1000, &mut rng)
        .into_iter()
        .map(|e| RankTraffic {
            src: e.src,
            dst: e.dst,
            weight: e.weight,
        })
        .collect();
    JobTraffic::new(mesh, links, id, nodes, &traffic, 1.0)
}

fn main() {
    let mesh = Mesh2D::square_16x16();
    let links = LinkTable::new(mesh);

    // A compact 16-processor allocation (Hilbert + Best Fit on an empty
    // machine) and a deliberately scattered one (random allocator).
    let machine = MachineState::new(mesh);
    let compact = AllocatorKind::HilbertBestFit
        .build(mesh)
        .allocate(&AllocRequest::new(1, 16), &machine)
        .expect("empty machine");
    let scattered = AllocatorKind::Random
        .build(mesh)
        .allocate(&AllocRequest::new(2, 16), &machine)
        .expect("empty machine");

    let compact_traffic = job_traffic(mesh, &links, 1, &compact.nodes);
    let scattered_traffic = job_traffic(mesh, &links, 2, &scattered.nodes);

    println!("static view (all-to-all over 16 processors):");
    println!(
        "  compact   allocation: avg message distance {:.2} hops",
        compact_traffic.avg_message_distance
    );
    println!(
        "  scattered allocation: avg message distance {:.2} hops",
        scattered_traffic.avg_message_distance
    );

    // Analytic per-message latency when both jobs run simultaneously at one
    // message per second each.
    let estimator = LatencyEstimator::new(links.num_slots(), 4.0);
    let jobs = [&compact_traffic, &scattered_traffic];
    let latencies = estimator.per_job_latency(&jobs, &[1.0, 1.0]);
    println!("\nqueueing estimate (M/M/1 per link, both jobs active):");
    for l in &latencies {
        println!(
            "  job {}: expected {:.2} s per message ({:.2}x over the idle network)",
            l.job_id,
            l.expected_latency,
            l.slowdown()
        );
    }

    // Dynamic view: simulate the same two jobs arriving together and compare
    // running times under the fluid engine.
    let trace = Trace::new(vec![
        Job::new(0, 0.0, 16, 2000.0),
        Job::new(1, 0.0, 16, 2000.0),
    ]);
    println!("\nsimulated running times (fluid engine, both jobs co-resident):");
    for allocator in [AllocatorKind::HilbertBestFit, AllocatorKind::Random] {
        let config = SimConfig::new(mesh, CommPattern::AllToAll, allocator);
        let result = simulate(&trace, &config);
        println!(
            "  {:<14} mean running time {:>8.0} s | mean message distance {:.2} hops",
            allocator.name(),
            result.summary.mean_running_time,
            result.summary.mean_message_distance
        );
    }

    println!("\nBoth the analytic estimate and the simulation point the same way: the");
    println!("allocation with the larger average message distance pays more per message,");
    println!("which is exactly the Figure 10 relationship the paper reports.");
}
