//! Searching for a locality-preserving ordering instead of constructing one.
//!
//! ```text
//! cargo run --release --example curve_optimizer_demo
//! ```
//!
//! For machines that are not regular meshes, Leung et al. used an integer
//! program to find orderings with good locality (Section 2.1 of the paper).
//! This reproduction substitutes a randomised local-search optimiser (see
//! DESIGN.md). The example demonstrates it twice:
//!
//! 1. on the full 8 × 8 mesh, starting from row-major order, and comparing
//!    the optimised ordering's locality against the hand-constructed curves;
//! 2. on an *irregular* machine — the same mesh with a faulted block removed
//!    — where no closed-form curve exists, which is the case the integer
//!    program was built for.

use commalloc::prelude::*;
use commalloc_alloc::curve_alloc::{CurveAllocator, SelectionStrategy};
use commalloc_alloc::{AllocRequest, Allocator, MachineState};
use commalloc_mesh::curve::optimizer::{optimize_full_mesh, optimize_order, OptimizerConfig};
use commalloc_mesh::locality::window_locality;
use commalloc_mesh::{Coord, NodeId};

fn main() {
    let mesh = Mesh2D::new(8, 8);
    let config = OptimizerConfig {
        iterations: 30_000,
        ..OptimizerConfig::default()
    };

    // --- Part 1: full mesh -------------------------------------------------
    println!("Part 1: optimising a full 8x8 ordering (30k local-search moves)\n");
    let (optimized, result) = optimize_full_mesh(mesh, CurveKind::RowMajor, &config);
    println!(
        "objective: {:.3} -> {:.3} ({:.0}% better, {} accepted moves)",
        result.initial_cost,
        result.final_cost,
        100.0 * result.improvement(),
        result.accepted_moves
    );

    println!("\nwindowed locality (mean pairwise distance of 9-rank windows):");
    println!(
        "{:<22} {:>10} {:>14}",
        "ordering", "window-9", "discontinuities"
    );
    for kind in [CurveKind::RowMajor, CurveKind::SCurve, CurveKind::Hilbert] {
        let curve = CurveOrder::build(kind, mesh);
        let l = window_locality(&curve, 9);
        println!(
            "{:<22} {:>10.2} {:>14}",
            kind.name(),
            l.mean_pairwise_distance,
            curve.discontinuities()
        );
    }
    let l = window_locality(&optimized, 9);
    println!(
        "{:<22} {:>10.2} {:>14}",
        "local-search result",
        l.mean_pairwise_distance,
        optimized.discontinuities()
    );

    // --- Part 2: a machine with faulted processors -------------------------
    println!("\nPart 2: ordering an irregular machine (8x8 with a faulted 3x3 block)\n");
    let faulted: Vec<NodeId> = mesh
        .submesh(Coord::new(3, 3), 3, 3)
        .into_iter()
        .map(|c| mesh.id_of(c))
        .collect();
    let alive: Vec<NodeId> = mesh.nodes().filter(|n| !faulted.contains(n)).collect();
    println!("{} of {} processors alive", alive.len(), mesh.num_nodes());

    let optimized_alive = optimize_order(mesh, &alive, &config);
    println!(
        "objective over the alive set: {:.3} -> {:.3}",
        optimized_alive.initial_cost, optimized_alive.final_cost
    );

    // Use the optimised ordering as a drop-in curve for the one-dimensional
    // allocator: the faulted block is marked busy so no job can land on it.
    let full_order: Vec<Coord> = optimized_alive
        .order
        .iter()
        .chain(faulted.iter())
        .map(|&n| mesh.coord_of(n))
        .collect();
    let curve = CurveOrder::from_coords(CurveKind::RowMajor, mesh, &full_order);
    let mut machine = MachineState::new(mesh);
    machine.occupy(&faulted);
    let mut allocator = CurveAllocator::with_curve(curve, SelectionStrategy::BestFit);
    let alloc = allocator
        .allocate(&AllocRequest::new(1, 12), &machine)
        .expect("12 processors fit the alive set");
    println!(
        "12-processor allocation on the degraded machine: {} components, avg pairwise distance {:.2}",
        mesh.components(&alloc.nodes),
        mesh.avg_pairwise_distance(&alloc.nodes)
    );
    println!("\n(The allocator never sees the faulted block: it is simply marked busy, and the");
    println!("optimised ordering keeps the remaining processors in locality-preserving order.)");
}
