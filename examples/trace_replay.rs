//! Replay a real Standard Workload Format trace (or the synthetic fallback).
//!
//! ```text
//! cargo run --release --example trace_replay -- /path/to/SDSC-Par-1996.swf
//! cargo run --release --example trace_replay            # synthetic fallback
//! ```
//!
//! The paper's simulations replay the SDSC Intel Paragon trace
//! (October–December 1996). If you have that trace in Standard Workload
//! Format (e.g. from the Parallel Workloads Archive), pass its path and this
//! example will reproduce the paper's exact workload; otherwise it falls back
//! to the calibrated synthetic generator and tells you so.

use commalloc::prelude::*;
use commalloc_workload::swf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (trace, source) = match args.get(1) {
        Some(path) => match swf::parse_file(path) {
            Ok(t) => (t, format!("SWF file {path}")),
            Err(e) => {
                eprintln!("could not read {path}: {e}; falling back to the synthetic trace");
                (
                    ParagonTraceModel::default().generate(1996),
                    "synthetic Paragon model".to_string(),
                )
            }
        },
        None => (
            // Keep the default replay quick: a 1200-job prefix. Pass an SWF
            // path or edit this to `ParagonTraceModel::default()` for the
            // full 6087-job workload.
            ParagonTraceModel::scaled(1200).generate(1996),
            "synthetic Paragon model (1200-job prefix)".to_string(),
        ),
    };

    let s = trace.summary();
    println!("workload source: {source}");
    println!(
        "  {} jobs | mean interarrival {:.0} s (cv {:.2}) | mean size {:.1} (cv {:.2}) | mean runtime {:.0} s (cv {:.2})",
        s.jobs, s.mean_interarrival, s.cv_interarrival, s.mean_size, s.cv_size, s.mean_runtime, s.cv_runtime
    );
    println!(
        "  {:.0}% of jobs request a power-of-two number of processors\n",
        100.0 * s.power_of_two_fraction
    );

    // Replay on the machine that matches the trace (16 x 22 = 352 nodes), at
    // the paper's heaviest load, under the two allocators CPlant actually
    // switched between (the 1-D scheme and MC1x1) plus the paper's overall
    // winner.
    let mesh = Mesh2D::paragon_16x22();
    let loaded = trace.with_load_factor(0.6);
    for pattern in [CommPattern::AllToAll, CommPattern::NBody] {
        println!("pattern {pattern}:");
        for allocator in [
            AllocatorKind::SCurveFreeList,
            AllocatorKind::Mc1x1,
            AllocatorKind::HilbertBestFit,
        ] {
            let result = simulate(&loaded, &SimConfig::new(mesh, pattern, allocator));
            println!(
                "  {:<14} mean response {:>12.0} s | mean wait {:>12.0} s | makespan {:>12.0} s",
                allocator.name(),
                result.summary.mean_response_time,
                result.summary.mean_wait_time,
                result.summary.makespan
            );
        }
        println!();
    }
}
