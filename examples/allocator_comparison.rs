//! Compare every allocator the paper evaluates on one communication pattern.
//!
//! ```text
//! cargo run --release --example allocator_comparison -- [pattern] [jobs]
//! ```
//!
//! `pattern` is one of `all-to-all`, `n-body`, `random` (default
//! `all-to-all`); `jobs` is the number of synthetic trace jobs (default 400).
//! The output is a response-time table across the paper's five load factors —
//! the same series as one panel of Figure 7/8 — plus the Figure 11 contiguity
//! columns at load 1.0.

use commalloc::experiment::{LoadSweep, PAPER_LOAD_FACTORS};
use commalloc::prelude::*;
use commalloc::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pattern = args
        .get(1)
        .and_then(|s| CommPattern::parse(s))
        .unwrap_or(CommPattern::AllToAll);
    let jobs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);

    let mesh = Mesh2D::square_16x16();
    let trace = ParagonTraceModel::scaled(jobs).generate(7);
    println!(
        "comparing {} allocators on {}x{} mesh, pattern {}, {} jobs\n",
        AllocatorKind::figure11_set().len(),
        mesh.width(),
        mesh.height(),
        pattern,
        jobs
    );

    let sweep = LoadSweep {
        mesh,
        patterns: vec![pattern],
        allocators: AllocatorKind::figure11_set().to_vec(),
        load_factors: PAPER_LOAD_FACTORS.to_vec(),
        ..LoadSweep::paper_figure(mesh)
    };
    let result = sweep.run(&trace);

    println!("{}", report::response_time_table(&result, pattern));
    println!(
        "contiguity at load 1.0 (Figure 11 columns):\n{}",
        report::contiguity_table(&result, pattern, 1.0)
    );

    println!("ranking by mean response time across loads (best first):");
    for (i, (allocator, mean)) in result.ranking(pattern).iter().enumerate() {
        println!("  {:>2}. {:<16} {:>12.0} s", i + 1, allocator.name(), mean);
    }
}
