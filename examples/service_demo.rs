//! Demonstrates the online allocation daemon: starts a server on an
//! ephemeral port, registers the paper's two machines plus a 3-D cube,
//! drives them over TCP, and prints occupancy snapshots and counters.
//!
//! Run with: `cargo run --example service_demo`

use commalloc_service::{AllocationService, ClientAllocOutcome, Server, ServiceClient};
use serde::Value;

fn main() {
    let service = AllocationService::new();
    let handle = Server::bind("127.0.0.1:0", service, 4)
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the server");
    println!("daemon listening on {}", handle.addr());

    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // The paper's machines, served by its best allocator, plus the 3-D
    // generalisation the service adds.
    client
        .register("square", "16x16", Some("Hilbert w/BF"), None, None)
        .unwrap();
    client
        .register("cplant", "16x22", Some("MC1x1"), None, None)
        .unwrap();
    client
        .register("cube", "8x8x8", Some("Hilbert-3d"), Some("BF"), None)
        .unwrap();
    println!("registered machines: {:?}", client.list().unwrap());

    // A short arrival/departure history on the square machine.
    let sizes = [17usize, 8, 30, 4, 64, 12];
    for (job, &size) in sizes.iter().enumerate() {
        match client.alloc("square", job as u64, size, true).unwrap() {
            ClientAllocOutcome::Granted(nodes) => {
                println!(
                    "job {job}: granted {size} processors (first node {})",
                    nodes[0]
                )
            }
            ClientAllocOutcome::Queued(pos) => {
                println!("job {job}: queued at position {pos}")
            }
            ClientAllocOutcome::Rejected(reason) => {
                println!("job {job}: rejected ({reason})")
            }
        }
    }
    // Finish two jobs; queued work (if any) is admitted FCFS.
    for job in [0u64, 2] {
        let granted = client.release("square", job).unwrap();
        for (id, nodes) in granted {
            println!(
                "release of job {job} admitted queued job {id} ({} nodes)",
                nodes.len()
            );
        }
    }

    // A 3-D allocation for contrast.
    if let ClientAllocOutcome::Granted(nodes) = client.alloc("cube", 100, 32, false).unwrap() {
        println!("cube: granted 32 processors, e.g. node {}", nodes[0]);
    }

    for machine in ["square", "cplant", "cube"] {
        let snap = client.query(machine).unwrap();
        println!(
            "{machine}: {} busy / {} nodes ({:.0}% utilised), {} live jobs, queue {}",
            snap.get("busy").and_then(Value::as_u64).unwrap_or(0),
            snap.get("nodes").and_then(Value::as_u64).unwrap_or(0),
            100.0
                * snap
                    .get("utilization")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            snap.get("live_jobs").and_then(Value::as_u64).unwrap_or(0),
            snap.get("queue_len").and_then(Value::as_u64).unwrap_or(0),
        );
    }

    let stats = client.stats("square").unwrap();
    println!(
        "square counters: {}",
        serde_json::to_string(stats.get("counters").unwrap()).unwrap()
    );

    drop(client);
    handle.shutdown().expect("clean shutdown");
    println!("daemon stopped");
}
