//! A tour of the communication patterns and how allocation interacts with
//! each of them.
//!
//! ```text
//! cargo run --release --example pattern_gallery
//! ```
//!
//! The paper's central observation is that the *relative* performance of
//! allocators "varies considerably with communication pattern". This example
//! runs a small workload under every implemented pattern — the paper's three
//! (all-to-all, n-body, random), the CPlant test-suite components, and the
//! extension patterns (stencil, butterfly, broadcast tree) — and prints which
//! of two very different allocators (Hilbert + Best Fit vs MC) wins for each.

use commalloc::prelude::*;

fn main() {
    let mesh = Mesh2D::square_16x16();
    let trace = ParagonTraceModel::scaled(150)
        .generate(3)
        .filter_fitting(mesh.num_nodes())
        .with_load_factor(0.6);

    println!(
        "workload: {} jobs, 16x16 mesh, load factor 0.6; comparing {} vs {}\n",
        trace.len(),
        AllocatorKind::HilbertBestFit.name(),
        AllocatorKind::Mc.name()
    );
    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "pattern", "Hilbert w/BF (s)", "MC (s)", "winner"
    );

    for pattern in CommPattern::all() {
        let run = |allocator: AllocatorKind| {
            let config = SimConfig::new(mesh, pattern, allocator);
            simulate(&trace, &config).summary.mean_response_time
        };
        let hilbert = run(AllocatorKind::HilbertBestFit);
        let mc = run(AllocatorKind::Mc);
        let winner = if hilbert <= mc { "Hilbert" } else { "MC" };
        println!(
            "{:<16} {:>16.0} {:>16.0} {:>10}",
            pattern.name(),
            hilbert,
            mc,
            winner
        );
    }

    println!();
    println!("The paper's three patterns are the first three rows; the rest are extensions.");
    println!("Expect MC to be strongest for all-to-all-like traffic (compactness dominates)");
    println!("and the curve strategy to be strongest for ring-structured traffic like n-body,");
    println!("where consecutive ranks — adjacent along the curve — do most of the talking.");
}
