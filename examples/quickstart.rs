//! Quickstart: simulate a small trace with two allocators and compare them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks through the full pipeline of the paper in miniature: generate
//! an SDSC-Paragon-like trace, pick a machine and a communication pattern,
//! run the trace-driven simulation under two allocation strategies, and look
//! at mean response time and allocation contiguity.

use commalloc::prelude::*;

fn main() {
    // 1. A workload: 300 synthetic jobs with the statistics the paper reports
    //    for the SDSC Paragon trace (mean size 14.5 processors, mean runtime
    //    3.04 h, bursty arrivals).
    let trace = ParagonTraceModel::scaled(300).generate(42);
    let summary = trace.summary();
    println!(
        "trace: {} jobs, mean size {:.1}, mean runtime {:.0} s, mean interarrival {:.0} s",
        summary.jobs, summary.mean_size, summary.mean_runtime, summary.mean_interarrival
    );

    // 2. A machine: the paper's square 16 x 16 mesh, and a heavier load
    //    (interarrival times contracted by 0.4, i.e. 2.5x the offered load).
    let mesh = Mesh2D::square_16x16();
    let loaded = trace.with_load_factor(0.4);

    // 3. Two allocators on the same workload and pattern.
    println!("\nall-to-all communication, load factor 0.4:");
    for allocator in [AllocatorKind::HilbertBestFit, AllocatorKind::SCurveFreeList] {
        let config = SimConfig::new(mesh, CommPattern::AllToAll, allocator);
        let result = simulate(&loaded, &config);
        println!(
            "  {:<14} mean response {:>10.0} s | mean running {:>9.0} s | {:>5.1}% contiguous | {:.2} components/job",
            allocator.name(),
            result.summary.mean_response_time,
            result.summary.mean_running_time,
            result.summary.percent_contiguous,
            result.summary.avg_components,
        );
    }

    // 4. The same comparison under the n-body pattern — the paper's point is
    //    that the ranking of allocators depends on the communication pattern.
    println!("\nn-body communication, load factor 0.4:");
    for allocator in [AllocatorKind::HilbertBestFit, AllocatorKind::Mc] {
        let config = SimConfig::new(mesh, CommPattern::NBody, allocator);
        let result = simulate(&loaded, &config);
        println!(
            "  {:<14} mean response {:>10.0} s | mean running {:>9.0} s",
            allocator.name(),
            result.summary.mean_response_time,
            result.summary.mean_running_time,
        );
    }
}
